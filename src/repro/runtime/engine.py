"""Deprecated: the PR 1 engine API, now a shim over :mod:`repro.pods`.

:class:`MultiSessionEngine` keeps the original bare-int surface alive
for existing callers, but every call is translated into the typed
:class:`~repro.pods.service.PodService` API -- one
:class:`~repro.pods.api.StepRequest` per step, all through the
service's single ``submit()`` path.  New code should construct a
:class:`~repro.pods.service.PodService` (or
:class:`~repro.pods.service.ShardedPodService`) directly.

The shim emits a :class:`DeprecationWarning` exactly once per process,
on the first engine construction.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Mapping, Sequence

from repro.core.transducer import InputLike, RelationalTransducer
from repro.errors import SessionError
from repro.pods.api import SessionHandle, StepRequest
from repro.pods.metrics import RuntimeMetrics
from repro.pods.service import PodService
from repro.pods.session import Session, SessionLog
from repro.relalg.instance import Instance

_deprecation_warned = False


def _warn_once() -> None:
    global _deprecation_warned
    if _deprecation_warned:
        return
    _deprecation_warned = True
    warnings.warn(
        "MultiSessionEngine is deprecated; use repro.pods.PodService "
        "(or ShardedPodService) instead",
        DeprecationWarning,
        stacklevel=3,
    )


class MultiSessionEngine:
    """Deprecated int-addressed facade over :class:`PodService`.

    Engine session ids are ints; internally they map to zero-padded
    string ids so the service's id-ordered traversals (``drive``,
    ``logs``) visit sessions in the original numeric order.  Logs
    returned by :meth:`close_session` and :meth:`logs` carry the int
    ids, as in PR 1; only :meth:`session` exposes the service-side
    :class:`Session` object, whose ``session_id`` is the mapped string.
    """

    def __init__(
        self,
        transducer: RelationalTransducer,
        database: InputLike,
        keep_logs: bool = True,
    ) -> None:
        _warn_once()
        self._service = PodService(
            transducer, database, keep_logs=keep_logs, id_prefix="legacy"
        )
        self._handles: dict[int, SessionHandle] = {}
        self._next_id = 0

    # -- session lifecycle -----------------------------------------------------

    @property
    def database(self) -> Instance:
        return self._service.database

    @property
    def metrics(self) -> RuntimeMetrics:
        return self._service.metrics

    @property
    def service(self) -> PodService:
        """The backing service (migration escape hatch)."""
        return self._service

    def create_session(self) -> int:
        """Open a new session; returns its id."""
        session_id = self._next_id
        self._next_id += 1
        self._handles[session_id] = self._service.create_session(
            f"{session_id:08d}"
        )
        return session_id

    def create_sessions(self, count: int) -> list[int]:
        return [self.create_session() for _ in range(count)]

    def _handle(self, session_id: int) -> SessionHandle:
        try:
            return self._handles[session_id]
        except KeyError:
            raise SessionError(f"no such session: {session_id}") from None

    def session(self, session_id: int) -> Session:
        return self._service.session(self._handle(session_id))

    def session_ids(self) -> list[int]:
        return sorted(self._handles)

    @staticmethod
    def _int_id_log(log: SessionLog) -> SessionLog:
        # PR 1 logs carried the engine's int ids; undo the zero-padding.
        return SessionLog(int(str(log.session_id)), log.entries)

    def close_session(self, session_id: int) -> SessionLog:
        """Retire a session; returns its final log."""
        log = self._service.close_session(self._handle(session_id))
        del self._handles[session_id]
        return self._int_id_log(log)

    # -- stepping --------------------------------------------------------------

    def step(self, session_id: int, inputs: InputLike) -> Instance:
        """Advance one session by one input instance; return its output."""
        return self._service.submit(
            StepRequest(self._handle(session_id), inputs)
        ).output

    def step_batch(
        self, batch: Iterable[tuple[int, InputLike]]
    ) -> list[tuple[int, Instance]]:
        """Advance many sessions; returns (session_id, output) pairs."""
        return [
            (session_id, self.step(session_id, inputs))
            for session_id, inputs in batch
        ]

    def run_session(
        self, session_id: int, input_sequence: Sequence[InputLike]
    ) -> list[Instance]:
        """Drive one session through a whole input sequence."""
        return [
            result.output
            for result in self._service.run_session(
                self._handle(session_id), input_sequence
            )
        ]

    def drive(
        self,
        workload: Mapping[int, Sequence[InputLike]],
        round_robin: bool = True,
    ) -> None:
        """Consume per-session input sequences, interleaved or not."""
        self._service.drive(
            {
                self._handle(session_id): sequence
                for session_id, sequence in workload.items()
            },
            round_robin=round_robin,
        )

    def logs(self) -> list[SessionLog]:
        """Logs of all open sessions, ordered by session id."""
        return [
            self._int_id_log(self._service.session(handle).log())
            for _sid, handle in sorted(self._handles.items())
        ]
