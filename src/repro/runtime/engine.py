"""The multi-session execution engine.

:class:`MultiSessionEngine` runs N independent sessions of one
transducer over one shared database.  The database is coerced and
indexed exactly once (via the transducer's
:meth:`~repro.core.transducer.RelationalTransducer.database_store`
cache); every session's every evaluation layers its small input/state
facts over those shared indexes.  This is the byoda-style "many user
pods, one catalog" shape from PAPERS.md, scaled down to a single
process: sessions are logically concurrent (any interleaving of
``step`` calls is valid) even though execution is sequential.
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping, Sequence

from repro.core.transducer import InputLike, RelationalTransducer
from repro.errors import SchemaError
from repro.relalg.instance import Instance
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.session import Session, SessionLog


class MultiSessionEngine:
    """Create, step, and retire sessions over a shared database.

    ``keep_logs=False`` turns off per-session log retention for
    load-generation scenarios where only throughput matters.
    """

    def __init__(
        self,
        transducer: RelationalTransducer,
        database: InputLike,
        keep_logs: bool = True,
    ) -> None:
        self._transducer = transducer
        self._database = transducer.coerce_database(database)
        # Warm the shared index cache so the first session does not pay
        # for it inside a latency measurement.
        transducer.database_store(self._database)
        self._keep_logs = keep_logs
        self._sessions: dict[int, Session] = {}
        self._next_id = 0
        self.metrics = RuntimeMetrics()

    # -- session lifecycle -----------------------------------------------------

    @property
    def database(self) -> Instance:
        return self._database

    def create_session(self) -> int:
        """Open a new session; returns its id."""
        session_id = self._next_id
        self._next_id += 1
        self._sessions[session_id] = Session(
            session_id,
            self._transducer,
            self._database,
            keep_log=self._keep_logs,
        )
        self.metrics.record_session()
        return session_id

    def create_sessions(self, count: int) -> list[int]:
        return [self.create_session() for _ in range(count)]

    def session(self, session_id: int) -> Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SchemaError(f"no such session: {session_id}") from None

    def session_ids(self) -> list[int]:
        return sorted(self._sessions)

    def close_session(self, session_id: int) -> SessionLog:
        """Retire a session; returns its final log."""
        session = self.session(session_id)
        del self._sessions[session_id]
        self.metrics.record_close()
        return session.log()

    # -- stepping --------------------------------------------------------------

    def step(self, session_id: int, inputs: InputLike) -> Instance:
        """Advance one session by one input instance; return its output."""
        session = self.session(session_id)
        started = time.perf_counter()
        output = session.step(inputs)
        self.metrics.record_step(time.perf_counter() - started)
        return output

    def step_batch(
        self, batch: Iterable[tuple[int, InputLike]]
    ) -> list[tuple[int, Instance]]:
        """Advance many sessions; returns (session_id, output) pairs.

        The batch is executed in the given order; sessions may appear
        multiple times.  Because sessions share nothing but the
        read-only database, any batching/interleaving produces the same
        per-session results.
        """
        return [
            (session_id, self.step(session_id, inputs))
            for session_id, inputs in batch
        ]

    def run_session(
        self, session_id: int, input_sequence: Sequence[InputLike]
    ) -> list[Instance]:
        """Drive one session through a whole input sequence."""
        return [self.step(session_id, inputs) for inputs in input_sequence]

    def drive(
        self,
        workload: Mapping[int, Sequence[InputLike]],
        round_robin: bool = True,
    ) -> None:
        """Consume per-session input sequences, interleaved or not.

        ``round_robin=True`` alternates between sessions step by step
        (the concurrent-traffic shape); ``False`` drains each session in
        turn.
        """
        if not round_robin:
            for session_id in sorted(workload):
                self.run_session(session_id, workload[session_id])
            return
        cursors = {sid: 0 for sid in sorted(workload) if workload[sid]}
        while cursors:
            exhausted = []
            for session_id, position in cursors.items():
                sequence = workload[session_id]
                self.step(session_id, sequence[position])
                if position + 1 >= len(sequence):
                    exhausted.append(session_id)
                else:
                    cursors[session_id] = position + 1
            for session_id in exhausted:
                del cursors[session_id]

    def logs(self) -> list[SessionLog]:
        """Logs of all open sessions, ordered by session id."""
        return [
            self._sessions[sid].log() for sid in sorted(self._sessions)
        ]
