"""Compatibility re-export: the implementation moved to
:mod:`repro.pods.metrics` when the runtime grew its service layer.
Import :class:`RuntimeMetrics` from there in new code.
"""

from repro.pods.metrics import RuntimeMetrics

__all__ = ["RuntimeMetrics"]
