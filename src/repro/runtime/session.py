"""Compatibility re-export: the implementation moved to
:mod:`repro.pods.session` when the runtime grew its service layer.
Import :class:`Session` and :class:`SessionLog` from there in new code.
"""

from repro.pods.session import Session, SessionLog

__all__ = ["Session", "SessionLog"]
