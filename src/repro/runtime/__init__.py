"""Deprecated multi-session runtime surface (PR 1).

This package is now a compatibility layer over :mod:`repro.pods`, the
typed, sharded, persistence-ready service API:

* :class:`MultiSessionEngine` is a shim that translates the original
  bare-int calls into :class:`~repro.pods.service.PodService` traffic
  (it emits a :class:`DeprecationWarning` once per process);
* :class:`Session`, :class:`SessionLog`, and :class:`RuntimeMetrics`
  are re-exports of the moved implementations.

New code should use :class:`repro.pods.PodService` /
:class:`repro.pods.ShardedPodService` and address sessions with
:class:`~repro.pods.api.SessionHandle`.
"""

from repro.runtime.engine import MultiSessionEngine
from repro.pods.metrics import RuntimeMetrics
from repro.pods.session import Session, SessionLog

__all__ = [
    "MultiSessionEngine",
    "RuntimeMetrics",
    "Session",
    "SessionLog",
]
