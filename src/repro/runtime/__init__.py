"""Multi-session transducer runtime.

The paper's transducers model *one* conversation between a customer and
a store.  A deployed store -- the "electronic commerce" setting of
Section 1, or the per-user data pods of the byoda architecture -- runs
many such conversations at once against one shared catalog database.
This subsystem provides exactly that execution model:

* a :class:`~repro.runtime.session.Session` is one independent run in
  progress: its own cumulative state, step counter, and log, advanced
  one input instance at a time;
* a :class:`~repro.runtime.engine.MultiSessionEngine` owns the shared
  database and a single transducer, creates and steps sessions (singly
  or in batches), and keeps the catalog's hash indexes warm so every
  session's evaluation reuses them;
* :class:`~repro.runtime.metrics.RuntimeMetrics` aggregates throughput
  (sessions/s, steps/s) and per-step latency over the engine's lifetime.

Sessions are isolated by construction: the only shared mutable object
is the engine's metrics.  The state of each session is an immutable
:class:`~repro.relalg.instance.Instance`, so stepping different
sessions in any interleaving gives the same per-session runs as running
them back to back (the run semantics of Section 2.2 is a fold over the
session's own inputs).
"""

from repro.runtime.engine import MultiSessionEngine
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.session import Session, SessionLog

__all__ = [
    "MultiSessionEngine",
    "RuntimeMetrics",
    "Session",
    "SessionLog",
]
