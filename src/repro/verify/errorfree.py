"""Verification over error-free runs (Theorems 4.4 and 4.6).

Whether every error-free run of a Spocus transducer satisfies a Tsdi
sentence is undecidable in general (Theorem 4.3: error rules can make a
transducer simulate a Turing machine, see
:mod:`repro.automata.tm_compiler`).  It becomes decidable when no
*negative state literal* occurs in the rules defining ``error``
(Theorem 4.4): then dropping steps from an error-free run keeps it
error-free, so a violation, if any, already occurs on a run of length
k+1 where k is the number of positive state literals in the violated
conjunct.  The bounded run is encoded over k+1 copies of the input
schema and decided as a BSR sentence.

Theorem 4.6 applies the same small-run argument to containment of
error-free runs (same schema, full log, positive-state error rules in
both transducers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.spocus import SpocusTransducer
from repro.datalog.ast import NegatedAtom, PositiveAtom, Rule
from repro.errors import UndecidableError, VerificationError
from repro.logic.bsr import GroundingStats, decide_bsr
from repro.logic.fol import Formula, Not, Rel, conjoin
from repro.logic.fol import exists as fol_exists
from repro.logic.fol import forall as fol_forall
from repro.relalg.instance import Instance
from repro.verify.deprecation import warn_legacy
from repro.verify.encoder import (
    RunEncoder,
    decode_database,
    decode_input_sequence,
)
from repro.verify.tsdi import TsdiConjunct, TsdiSentence, _cnf_clauses

ERROR_RELATION = "error"


def _check_positive_state_errors(
    transducer: SpocusTransducer, error_relation: str = ERROR_RELATION
) -> None:
    """Raise unless error rules avoid negative state literals (Thm 4.4)."""
    state_names = set(transducer.schema.state.names)
    for rule in transducer.rules_for(error_relation):
        for atom in rule.negated_atoms():
            if atom.predicate in state_names:
                raise UndecidableError(
                    f"error rule {rule} negates state relation "
                    f"{atom.predicate!r}; Theorem 4.3 makes this "
                    "verification problem undecidable.  Theorem 4.4 "
                    "requires positive state literals only."
                )


def _count_positive_state_literals(
    transducer: SpocusTransducer, literals
) -> int:
    state_names = set(transducer.schema.state.names)
    return sum(
        1
        for literal in literals
        if isinstance(literal, PositiveAtom)
        and literal.atom.predicate in state_names
    )


@dataclass
class ErrorFreeVerdict:
    """Outcome of :func:`holds_on_error_free_runs`."""

    holds: bool
    counterexample_inputs: list[Instance] | None = None
    violated_conjunct: TsdiConjunct | None = None
    stats: GroundingStats = field(default_factory=GroundingStats)
    counterexample_database: Instance | None = None


def holds_on_error_free_runs(
    transducer: SpocusTransducer,
    sentence: TsdiSentence,
    database: dict | Instance | None = None,
    error_relation: str = ERROR_RELATION,
) -> ErrorFreeVerdict:
    """Deprecated entry point; see :func:`check_error_free_property`."""
    warn_legacy("holds_on_error_free_runs", "ErrorFreeness")
    return check_error_free_property(
        transducer, sentence, database, error_relation=error_relation
    )


def check_error_free_property(
    transducer: SpocusTransducer,
    sentence: TsdiSentence,
    database: dict | Instance | None = None,
    error_relation: str = ERROR_RELATION,
) -> ErrorFreeVerdict:
    """Theorem 4.4: does every error-free run satisfy ``sentence``?

    Requires the transducer's error rules to use only positive state
    literals; otherwise :class:`UndecidableError` is raised.

    This is the engine behind the :class:`repro.verify.api.ErrorFreeness`
    spec; prefer checking specs through a
    :class:`~repro.verify.api.Verifier`.
    """
    _check_positive_state_errors(transducer, error_relation)
    db_instance: Instance | None = None
    if database is not None:
        db_instance = transducer.coerce_database(database)

    for conjunct in sentence.conjuncts:
        for clause in _cnf_clauses(conjunct.consequent):
            verdict = _check_conjunct_clause(
                transducer, conjunct, clause, db_instance, error_relation
            )
            if verdict is not None:
                return verdict
    return ErrorFreeVerdict(True)


def _check_conjunct_clause(
    transducer: SpocusTransducer,
    conjunct: TsdiConjunct,
    clause,
    db_instance: Instance | None,
    error_relation: str,
) -> ErrorFreeVerdict | None:
    """SAT-check the violation of one CNF clause of one conjunct.

    The violation %: ∃x̄ (φ ∧ ¬L₁ ∧ … ∧ ¬Lₙ) at the last step of an
    error-free run of length k+1, k = positive state literals of φ.
    Returns a failing verdict or None when this clause cannot be
    violated.
    """
    k = _count_positive_state_literals(transducer, conjunct.antecedent)
    steps = k + 1
    encoder = RunEncoder(transducer, steps)

    last = steps
    violation_parts: list[Formula] = [
        encoder.visible_literal(literal, last)
        for literal in conjunct.antecedent
    ]
    for atom_formula in clause:
        negated = NegatedAtom(
            _rel_to_atom(atom_formula)
        )
        violation_parts.append(encoder.visible_literal(negated, last))
    free_vars = sorted(
        conjoin(violation_parts).free_variables(), key=str
    )
    violation = fol_exists(free_vars, conjoin(violation_parts))

    conjuncts: list[Formula] = [
        violation,
        encoder.error_free_axioms(error_relation),
    ]
    if db_instance is not None:
        conjuncts.append(encoder.database_axioms(db_instance))
    sentence_fo = conjoin(conjuncts)
    extra = encoder.constants(database=db_instance)
    result = decide_bsr(sentence_fo, extra_constants=tuple(sorted(extra, key=repr)))
    if not result.satisfiable:
        return None
    assert result.model is not None
    witness = decode_input_sequence(transducer, steps, result.model)
    return ErrorFreeVerdict(
        False,
        counterexample_inputs=witness,
        violated_conjunct=conjunct,
        stats=result.stats,
        counterexample_database=(
            decode_database(transducer, result.model)
            if db_instance is None
            else None
        ),
    )


def _rel_to_atom(formula: Rel):
    from repro.datalog.ast import Atom

    return Atom(formula.predicate, formula.terms)


@dataclass
class ErrorFreeContainment:
    """Outcome of :func:`errorfree_contains`."""

    contained: bool
    separating_inputs: list[Instance] | None = None
    firing_rule: Rule | None = None
    stats: GroundingStats = field(default_factory=GroundingStats)


def errorfree_contains(
    first: SpocusTransducer,
    second: SpocusTransducer,
    database: dict | Instance | None = None,
    error_relation: str = ERROR_RELATION,
) -> ErrorFreeContainment:
    """Deprecated entry point; see :func:`check_error_free_containment`."""
    warn_legacy("errorfree_contains", "Verifier.check_containment")
    return check_error_free_containment(
        first, second, database, error_relation=error_relation
    )


def check_error_free_containment(
    first: SpocusTransducer,
    second: SpocusTransducer,
    database: dict | Instance | None = None,
    error_relation: str = ERROR_RELATION,
) -> ErrorFreeContainment:
    """Theorem 4.6: is every error-free run of ``first`` error-free for
    ``second``?

    Both transducers must share the input schema and use only positive
    state literals in error rules.  The procedure looks, for each error
    rule ρ of ``second``, for a run error-free for both up to the last
    step at which ρ fires for ``second`` while ``first`` stays
    error-free; the run length is bounded by ρ's positive state literal
    count plus one.
    """
    if set(first.schema.inputs.names) != set(second.schema.inputs.names):
        raise VerificationError(
            "Theorem 4.6 requires identical input schemas"
        )
    _check_positive_state_errors(first, error_relation)
    _check_positive_state_errors(second, error_relation)
    db_instance: Instance | None = None
    if database is not None:
        db_instance = first.coerce_database(database)

    for rule in second.rules_for(error_relation):
        k = _count_positive_state_literals(second, rule.body)
        steps = k + 1
        encoder_one = RunEncoder(first, steps)
        encoder_two = RunEncoder(second, steps)

        body = encoder_two.body_formula(rule, steps)
        fires = fol_exists(sorted(body.free_variables(), key=str), body)

        # Error-freeness of ``second`` on steps 1..k only (the violation
        # happens at the last step); ``first`` stays clean throughout.
        prefix_clean: list[Formula] = []
        for step in range(1, steps):
            for err_rule in second.rules_for(error_relation):
                rule_body = encoder_two.body_formula(err_rule, step)
                variables = sorted(rule_body.free_variables(), key=str)
                prefix_clean.append(fol_forall(variables, Not(rule_body)))

        conjuncts = [
            fires,
            conjoin(prefix_clean),
            encoder_one.error_free_axioms(error_relation),
        ]
        if db_instance is not None:
            conjuncts.append(encoder_one.database_axioms(db_instance))
        sentence = conjoin(conjuncts)
        extra = encoder_one.constants(database=db_instance)
        extra |= encoder_two.constants()
        result = decide_bsr(sentence, extra_constants=tuple(sorted(extra, key=repr)))
        if result.satisfiable:
            assert result.model is not None
            witness = decode_input_sequence(second, steps, result.model)
            return ErrorFreeContainment(
                False,
                separating_inputs=witness,
                firing_rule=rule,
                stats=result.stats,
            )
    return ErrorFreeContainment(True)
