"""The typed verification API.

The paper's decision procedures, redesigned as one surface (PR 4 of the
ROADMAP's typed-surfaces arc, after ``PodService`` and ``QueryPlan``):

* :mod:`repro.verify.api.specs` -- the :class:`PropertySpec` hierarchy
  (:class:`LogValidity`, :class:`GoalReachability`,
  :class:`TemporalProperty`, :class:`ErrorFreeness`, plus the
  :class:`AllOf` / :class:`AnyOf` combinators);
* :mod:`repro.verify.api.verifier` -- the :class:`Verifier` facade
  compiling specs against a transducer into typed :class:`Verdict`
  objects (offline all-runs checks *and* concrete-run checks);
* :mod:`repro.verify.api.trace` -- :class:`CounterexampleTrace`:
  machine-checkable evidence that replays deterministically through a
  fresh :class:`~repro.pods.service.PodService`;
* :mod:`repro.verify.api.monitor` -- per-step monitors compiling
  property violations into delta-capable query plans;
* :mod:`repro.verify.api.auditor` -- :class:`OnlineAuditor`, attaching
  specs to live pods so every ``submit()`` is checked incrementally.

The seed-era module-level functions (``is_valid_log`` & co.) remain as
deprecation-warned wrappers over the same engines.
"""

from repro.verify.api.auditor import AuditFinding, AuditOutcome, OnlineAuditor
from repro.verify.api.monitor import (
    StageView,
    StepMonitor,
    build_monitor,
    compile_temporal_violation,
)
from repro.verify.api.specs import (
    AllOf,
    AnyOf,
    ErrorFreeness,
    GoalReachability,
    LogValidity,
    PropertySpec,
    TemporalProperty,
)
from repro.verify.api.trace import (
    KIND_COUNTEREXAMPLE,
    KIND_WITNESS,
    CounterexampleTrace,
    trace_from_run,
)
from repro.verify.api.verifier import Verdict, Verifier

__all__ = [
    "PropertySpec",
    "LogValidity",
    "GoalReachability",
    "TemporalProperty",
    "ErrorFreeness",
    "AllOf",
    "AnyOf",
    "Verifier",
    "Verdict",
    "CounterexampleTrace",
    "trace_from_run",
    "KIND_COUNTEREXAMPLE",
    "KIND_WITNESS",
    "OnlineAuditor",
    "AuditFinding",
    "AuditOutcome",
    "StageView",
    "StepMonitor",
    "build_monitor",
    "compile_temporal_violation",
]
