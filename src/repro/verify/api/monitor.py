"""Per-step property monitors: specs compiled for stage-wise checking.

Offline verification (the BSR reductions) answers "can *any* run
violate the property?".  A monitor answers the operational question for
*this* run, one stage at a time -- the paper's audit notion.  Where the
seed-era operational checkers scanned (``check_run_satisfies``
enumerates every binding of the property's variables over the whole
active domain, per stage), monitors compile the property's *violation*
into a datalog program and evaluate it with the indexed, cost-ordered
join machinery of :mod:`repro.datalog.plan`:

* a :class:`TemporalProperty` formula ∀x̄ φ becomes one rule
  ``__violation :- L₁, ..., Lₙ`` per disjunct of the DNF of ¬φ, run
  over (stage output, cumulative state, database);
* an :class:`ErrorFreeness` Tsdi sentence becomes its Theorem 4.1 error
  rules, run over (stage input, prior state, database).

Both programs are flat, their state atoms are monotone, and the
database is static -- exactly the contract of
:class:`~repro.datalog.plan.physical.IncrementalExecutor` -- so each
session's monitor steps via ``execute_delta``: state-only violation
rules extend cached results from the step's new state rows, database-
only rules are cached for the session's life, and only output/input-
touching rules re-join (against tiny per-stage relations).
Formulas outside the compilable fragment (nested quantifiers, unsafe
disjuncts) fall back to the naive structure evaluation, so every
T_past-input sentence remains checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.spocus import stage_store
from repro.datalog.ast import (
    Atom,
    Constant,
    Inequality,
    NegatedAtom,
    PositiveAtom,
    Program,
    Rule,
    Variable,
)
from repro.datalog.plan import EvalCounters, compile_program, incremental_executor_for
from repro.datalog.safety import check_rule_safety
from repro.errors import SafetyError, SpecError
from repro.logic.fol import (
    And,
    Bottom,
    Eq,
    Formula,
    Not,
    Or,
    Rel,
    Top,
)
from repro.logic.prenex import to_nnf
from repro.logic.structures import Structure
from repro.verify.logvalidity import check_log_validity
from repro.verify.reachability import check_goal_reachability
from repro.verify.tsdi import compile_tsdi

if TYPE_CHECKING:
    from repro.core.spocus import SpocusTransducer
    from repro.relalg.instance import Instance
    from repro.verify.api.specs import PropertySpec

VIOLATION_HEAD = "__violation"


@dataclass(frozen=True)
class StageView:
    """Everything a monitor may read about one completed step.

    ``step`` is 1-based; ``state_before``/``state_after`` bracket the
    transition; ``inputs_so_far``/``log_so_far`` include the current
    step (their last elements are ``inputs`` and ``log_entry``).
    """

    step: int
    inputs: "Instance"
    output: "Instance"
    state_before: "Instance"
    state_after: "Instance"
    log_entry: "Instance | None"
    inputs_so_far: tuple = ()
    log_so_far: tuple = ()


class StepMonitor:
    """Base class: observe stages, report violation descriptions."""

    #: Does observe() read the O(step)-sized ``inputs_so_far`` /
    #: ``log_so_far`` views?  The auditor only materializes them for
    #: monitors that do, keeping single-stage monitors O(1) per step.
    needs_history = False

    #: May the auditor's ``check_every=k`` skip this monitor on
    #: off-cycle steps?  Only sound for monitors re-deciding a
    #: *permanent* property of the whole prefix (they latch): skipping
    #: delays detection to the next multiple of k, never loses it.
    #: Per-step monitors (temporal safety, disciplines) must stay False.
    amortizable = False

    def __init__(self, spec: "PropertySpec") -> None:
        self.spec = spec
        # Monitors of *permanent* violations (invalid log prefix, lost
        # goal) latch here after reporting once: observe() stays quiet
        # to avoid repeating the finding every step, but combinators
        # must still count the spec as violated (see AnyOfMonitor).
        self.latched: str | None = None

    def observe(self, stage: StageView) -> list[str]:
        """Violation descriptions for this stage (empty when clean)."""
        raise NotImplementedError

    def eval_counters(self) -> EvalCounters:
        """Cumulative plan/evaluation counters (zeros when plan-free)."""
        return EvalCounters()


# -- temporal-property compilation --------------------------------------------


def _strip_exists(formula: Formula) -> Formula:
    from repro.logic.fol import Exists

    while isinstance(formula, Exists):
        formula = formula.body
    return formula


def _dnf(formula: Formula) -> "list[list[Formula]] | None":
    """DNF of an NNF, quantifier-free formula as literal lists.

    Returns None when an unsupported node (nested quantifier) appears;
    ``[]`` means ⊥, a ``[]`` member means ⊤.
    """
    if isinstance(formula, Top):
        return [[]]
    if isinstance(formula, Bottom):
        return []
    if isinstance(formula, (Rel, Eq)):
        return [[formula]]
    if isinstance(formula, Not) and isinstance(formula.operand, (Rel, Eq)):
        return [[formula]]
    if isinstance(formula, Or):
        out: list[list[Formula]] = []
        for operand in formula.operands:
            part = _dnf(operand)
            if part is None:
                return None
            out.extend(part)
        return out
    if isinstance(formula, And):
        out = [[]]
        for operand in formula.operands:
            part = _dnf(operand)
            if part is None:
                return None
            out = [left + right for left in out for right in part]
        return out
    return None


def _resolve_equalities(literals: list[Formula]) -> "list[Formula] | None":
    """Eliminate positive equalities by substitution.

    Returns the simplified literal list, or None when the conjunct is
    unsatisfiable (two distinct constants equated).
    """
    work = list(literals)
    changed = True
    while changed:
        changed = False
        for i, literal in enumerate(work):
            if not isinstance(literal, Eq):
                continue
            left, right = literal.left, literal.right
            if isinstance(left, Constant) and isinstance(right, Constant):
                if left.value != right.value:
                    return None
                work.pop(i)
            elif isinstance(left, Variable):
                work.pop(i)
                binding = {left: right}
                work = [f.substitute(binding) for f in work]
            elif isinstance(right, Variable):
                work.pop(i)
                binding = {right: left}
                work = [f.substitute(binding) for f in work]
            else:  # pragma: no cover - terms are variables or constants
                return None
            changed = True
            break
    return work


def compile_temporal_violation(
    transducer: "SpocusTransducer", formula: Formula
) -> "Program | None":
    """The violation program of a T_past-input sentence, or None.

    Produces one safe rule ``__violation :- ...`` per satisfiable DNF
    disjunct of ¬formula, over the transducer's output, state, and
    database relations (state atoms read the post-stage state, matching
    Theorem 3.3's inclusive "sometime past").  Returns None when the
    formula falls outside the compilable fragment, in which case the
    caller uses the naive structure evaluation.
    """
    schema = transducer.schema
    known = (
        set(schema.outputs.names)
        | set(schema.state.names)
        | set(schema.database.names)
    )
    body = _strip_exists(to_nnf(Not(formula)))
    disjuncts = _dnf(body)
    if disjuncts is None:
        return None
    rules: list[Rule] = []
    head = Atom(VIOLATION_HEAD, ())
    for disjunct in disjuncts:
        resolved = _resolve_equalities(disjunct)
        if resolved is None:
            continue  # unsatisfiable conjunct
        literals = []
        for literal in resolved:
            if isinstance(literal, Rel):
                if literal.predicate not in known:
                    raise SpecError(
                        f"temporal property literal over unknown relation "
                        f"{literal.predicate!r} (allowed: output, state, "
                        "database)"
                    )
                literals.append(PositiveAtom(Atom(literal.predicate, literal.terms)))
            elif isinstance(literal, Not) and isinstance(literal.operand, Rel):
                inner = literal.operand
                if inner.predicate not in known:
                    raise SpecError(
                        f"temporal property literal over unknown relation "
                        f"{inner.predicate!r} (allowed: output, state, "
                        "database)"
                    )
                literals.append(NegatedAtom(Atom(inner.predicate, inner.terms)))
            elif isinstance(literal, Not) and isinstance(literal.operand, Eq):
                eq = literal.operand
                literals.append(Inequality(eq.left, eq.right))
            else:  # pragma: no cover - _dnf only yields these shapes
                return None
        rule = Rule(head, tuple(literals))
        try:
            check_rule_safety(rule)
        except SafetyError:
            return None  # unsafe disjunct: fall back to naive evaluation
        rules.append(rule)
    return Program(tuple(rules))


def _stage_structure(
    transducer: "SpocusTransducer",
    database: "Instance",
    stage: StageView,
    extra_constants,
) -> Structure:
    """The naive one-stage structure (Theorem 3.3 evaluation context)."""
    relations: dict[str, set[tuple]] = {}
    for rel in transducer.schema.database:
        relations[rel.name] = set(database[rel.name])
    for rel in transducer.schema.outputs:
        relations[rel.name] = set(stage.output[rel.name])
    for name in transducer.schema.state.names:
        relations[name] = set(stage.state_after[name])
    domain: set = set()
    for rows in relations.values():
        for row in rows:
            domain.update(row)
    domain |= set(extra_constants)
    if not domain:
        domain = {"@default"}
    return Structure.of(domain, relations)


class TemporalMonitor(StepMonitor):
    """Stage-wise checking of a T_past-input sentence.

    Plan-backed when the violation compiles (the common case); the
    executor steps the violation program incrementally, treating
    outputs as volatile and cumulative state as monotone.
    """

    def __init__(self, spec, transducer, database: "Instance") -> None:
        super().__init__(spec)
        self._transducer = transducer
        self._database = database
        self._program = compile_temporal_violation(transducer, spec.formula)
        self._nnf = to_nnf(spec.formula)
        self._constants = set(spec.formula.constants())
        self._executor = None
        if self._program is not None and len(self._program) > 0:
            self._executor = incremental_executor_for(
                self._program,
                volatile=transducer.schema.outputs.names,
                monotone=transducer.schema.state.names,
            )

    @property
    def plan_backed(self) -> bool:
        return self._program is not None

    def eval_counters(self) -> EvalCounters:
        if self._executor is None:
            return EvalCounters()
        return self._executor.counters.copy()

    def observe(self, stage: StageView) -> list[str]:
        if self._program is not None and len(self._program) == 0:
            return []  # the negation simplified to ⊥: a tautology
        if self._program is None:
            structure = _stage_structure(
                self._transducer, self._database, stage, self._constants
            )
            if structure.evaluate(self._nnf):
                return []
        else:
            store = stage_store(
                self._transducer, self._database, stage.output, stage.state_after
            )
            monotone = {
                name: stage.state_after[name]
                for name in self._transducer.schema.state.names
            }
            if self._executor is not None:
                derived = self._executor.step(store, monotone)
            else:  # pragma: no cover - flat programs always get an executor
                derived = compile_program(self._program).execute(store)
            if not derived.get(VIOLATION_HEAD):
                return []
        return [f"stage {stage.step} violates: {self.spec.describe()}"]


# -- error-freeness -----------------------------------------------------------


class ErrorFreenessMonitor(StepMonitor):
    """Watch for ``error`` outputs, or enforce a Tsdi discipline.

    With a sentence, the Theorem 4.1 error rules are evaluated against
    each stage's input and prior state (inputs volatile, state
    monotone, database static), again via the incremental executor.
    """

    def __init__(self, spec, transducer, database: "Instance") -> None:
        super().__init__(spec)
        self._transducer = transducer
        self._database = database
        self._executor = None
        if spec.sentence is None:
            if spec.error_relation not in transducer.schema.outputs:
                raise SpecError(
                    f"ErrorFreeness: {spec.error_relation!r} is not an "
                    "output relation of the transducer"
                )
        else:
            head = Atom(VIOLATION_HEAD, ())
            rules = tuple(
                Rule(head, rule.body) for rule in compile_tsdi(spec.sentence)
            )
            self._program = Program(rules)
            for rule in rules:
                for atom in rule.positive_atoms() + rule.negated_atoms():
                    if atom.predicate not in transducer.schema.visible_schema():
                        raise SpecError(
                            f"Tsdi literal over unknown relation "
                            f"{atom.predicate!r}"
                        )
            self._executor = incremental_executor_for(
                self._program,
                volatile=transducer.schema.inputs.names,
                monotone=transducer.schema.state.names,
            )

    def eval_counters(self) -> EvalCounters:
        if self._executor is None:
            return EvalCounters()
        return self._executor.counters.copy()

    def observe(self, stage: StageView) -> list[str]:
        spec = self.spec
        if spec.sentence is None:
            rows = stage.output[spec.error_relation]
            if rows:
                return [
                    f"stage {stage.step} output {spec.error_relation!r} is "
                    f"non-empty ({len(rows)} fact(s))"
                ]
            return []
        store = stage_store(
            self._transducer, self._database, stage.inputs, stage.state_before
        )
        monotone = {
            name: stage.state_before[name]
            for name in self._transducer.schema.state.names
        }
        if self._executor is not None:
            derived = self._executor.step(store, monotone)
        else:  # pragma: no cover - compiled Tsdi programs are flat
            derived = compile_program(self._program).execute(store)
        if derived.get(VIOLATION_HEAD):
            return [
                f"stage {stage.step} input violates the Tsdi discipline(s)"
            ]
        return []


# -- BSR-backed monitors ------------------------------------------------------


class LogValidityMonitor(StepMonitor):
    """Audit the session's growing log against a reference transducer.

    Each stage re-decides Theorem 3.1 on the log so far.  A produced
    log can only become invalid when the serving implementation
    diverges from the reference model (the audit scenario); since an
    invalid prefix never becomes valid again, the monitor latches on
    the first violation.
    """

    needs_history = True
    amortizable = True  # BSR re-decision over the prefix; latches

    def __init__(self, spec, reference, database: "Instance") -> None:
        super().__init__(spec)
        self._reference = reference
        self._database = database

    def observe(self, stage: StageView) -> list[str]:
        if self.latched:
            return []
        from repro.verify.api.specs import coerce_log_entries

        entries = coerce_log_entries(self._reference, stage.log_so_far)
        result = check_log_validity(
            self._reference, self._database, entries, replay=False
        )
        if result.valid:
            return []
        self.latched = (
            f"log through stage {stage.step} is not a valid log of the "
            "reference transducer"
        )
        return [self.latched]


class GoalReachabilityMonitor(StepMonitor):
    """Progress auditing: is the goal still attainable after each stage?

    Continuations only shrink as inputs accumulate, so unreachability
    is permanent and the monitor latches on the first violation.
    """

    needs_history = True
    amortizable = True  # BSR re-decision over the prefix; latches

    def __init__(self, spec, reference, database: "Instance") -> None:
        super().__init__(spec)
        self._reference = reference
        self._database = database

    def observe(self, stage: StageView) -> list[str]:
        if self.latched:
            return []
        result = check_goal_reachability(
            self._reference,
            self._database,
            self.spec.goal,
            prefix=stage.inputs_so_far,
            replay=False,
        )
        if result.reachable:
            return []
        self.latched = (
            f"goal no longer reachable after stage {stage.step}: "
            f"{self.spec.describe()}"
        )
        return [self.latched]


# -- combinators --------------------------------------------------------------


class AllOfMonitor(StepMonitor):
    def __init__(self, spec, monitors: Sequence[StepMonitor]) -> None:
        super().__init__(spec)
        self.monitors = list(monitors)
        self.needs_history = any(m.needs_history for m in self.monitors)

    def eval_counters(self) -> EvalCounters:
        return sum_counters(m.eval_counters() for m in self.monitors)

    def observe(self, stage: StageView) -> list[str]:
        out: list[str] = []
        for monitor in self.monitors:
            out.extend(monitor.observe(stage))
        return out


class AnyOfMonitor(StepMonitor):
    """A stage violates an AnyOf only when every child violates it.

    A child latched on a permanent violation (invalid log, lost goal)
    counts as violating even though it stopped repeating its finding --
    otherwise a tripped child would read as "holding" and mask the
    other children's ongoing violations.
    """

    def __init__(self, spec, monitors: Sequence[StepMonitor]) -> None:
        super().__init__(spec)
        self.monitors = list(monitors)
        self.needs_history = any(m.needs_history for m in self.monitors)

    def eval_counters(self) -> EvalCounters:
        return sum_counters(m.eval_counters() for m in self.monitors)

    def observe(self, stage: StageView) -> list[str]:
        if self.latched:
            return []
        all_violations: list[str] = []
        for monitor in self.monitors:
            violations = monitor.observe(stage)
            if not violations and monitor.latched:
                violations = [monitor.latched]
            if not violations:
                return []
            all_violations.extend(violations)
        combined = "every alternative is violated: " + "; ".join(all_violations)
        if all(monitor.latched for monitor in self.monitors):
            # Every alternative is permanently lost: report once.
            self.latched = combined
        return [combined]


def sum_counters(parts) -> EvalCounters:
    total = EvalCounters()
    for part in parts:
        for name, value in part.as_dict().items():
            setattr(total, name, getattr(total, name) + value)
    return total


def build_monitor(
    spec: "PropertySpec",
    transducer,
    database: "Instance",
    *,
    reference=None,
) -> StepMonitor:
    """Compile one spec into a per-session step monitor.

    ``transducer`` is the implementation actually serving the steps;
    ``reference`` (default: the same transducer) is the specification
    model log-validity and reachability audits are decided against.
    """
    from repro.verify.api import specs as s

    if reference is None:
        reference = transducer
    if isinstance(spec, s.TemporalProperty):
        return TemporalMonitor(spec, transducer, database)
    if isinstance(spec, s.ErrorFreeness):
        return ErrorFreenessMonitor(spec, transducer, database)
    if isinstance(spec, s.LogValidity):
        return LogValidityMonitor(spec, reference, database)
    if isinstance(spec, s.GoalReachability):
        return GoalReachabilityMonitor(spec, reference, database)
    if isinstance(spec, s.AllOf):
        return AllOfMonitor(
            spec,
            [
                build_monitor(child, transducer, database, reference=reference)
                for child in spec.specs
            ],
        )
    if isinstance(spec, s.AnyOf):
        return AnyOfMonitor(
            spec,
            [
                build_monitor(child, transducer, database, reference=reference)
                for child in spec.specs
            ],
        )
    raise SpecError(f"no monitor for spec type {type(spec).__name__}")
