"""Typed property specifications.

A :class:`PropertySpec` names *what* to verify about a transducer,
independent of *how*: the :class:`~repro.verify.api.verifier.Verifier`
compiles a spec against a transducer into the right decision procedure
(offline, over all runs or a given log), and the
:class:`~repro.verify.api.auditor.OnlineAuditor` compiles the same spec
into a per-step monitor over a live pod.  The leaves mirror the paper's
decidable questions:

* :class:`LogValidity` -- Theorem 3.1: the (given or observed) log is a
  valid log of the reference transducer;
* :class:`GoalReachability` -- Theorem 3.2 and the progress variant: the
  goal is (still) attainable;
* :class:`TemporalProperty` -- Theorem 3.3: a T_past-input sentence
  holds at every stage;
* :class:`ErrorFreeness` -- Theorems 4.1/4.4: no ``error`` output, or a
  Tsdi input discipline over error-free runs;

plus the boolean combinators :class:`AllOf` / :class:`AnyOf`, whose
verdicts aggregate their children's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import SpecError
from repro.logic.fol import Formula
from repro.verify.reachability import Goal
from repro.verify.tsdi import TsdiConjunct, TsdiSentence

if TYPE_CHECKING:
    from repro.relalg.instance import Instance


class PropertySpec:
    """Base class of all property specifications (pure data)."""

    def describe(self) -> str:
        raise NotImplementedError

    @property
    def children(self) -> tuple["PropertySpec", ...]:
        """Child specs of a combinator; empty for leaves."""
        return ()


@dataclass(frozen=True)
class LogValidity(PropertySpec):
    """The log is a valid log of the reference transducer (Thm 3.1).

    Offline, ``log`` is the sequence to validate (facts-dicts or
    :class:`~repro.relalg.instance.Instance` objects).  Online, leave
    ``log`` unset: the auditor validates the *session's own growing
    log* against the reference transducer -- the paper's audit notion,
    catching a deployed implementation whose observable behaviour
    drifts from the specification model.
    """

    log: tuple = ()
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "log", tuple(self.log))

    def describe(self) -> str:
        if self.name:
            return self.name
        if self.log:
            return f"log of {len(self.log)} step(s) is valid"
        return "session log is valid for the reference transducer"


@dataclass(frozen=True)
class GoalReachability(PropertySpec):
    """The goal is (still) reachable (Thm 3.2 / progress).

    Offline, reachability is decided after the optional ``prefix``.
    Online, the monitor re-decides after every step with the session's
    accumulated inputs as the prefix -- progress auditing; since
    continuations only shrink as inputs accumulate, a lost goal stays
    lost, so the monitor latches on the first violation.
    """

    goal: Goal
    prefix: tuple = ()
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.goal, Goal):
            raise SpecError(
                f"GoalReachability needs a Goal, got {type(self.goal).__name__}"
            )
        object.__setattr__(self, "prefix", tuple(self.prefix))

    def describe(self) -> str:
        if self.name:
            return self.name
        parts = [f"{name}{tuple(map(str, terms))}" for name, terms in self.goal.positive]
        parts += [f"not {name}{tuple(map(str, terms))}" for name, terms in self.goal.negative]
        suffix = f" after {len(self.prefix)}-step prefix" if self.prefix else ""
        return "goal reachable: " + ", ".join(parts) + suffix


@dataclass(frozen=True)
class TemporalProperty(PropertySpec):
    """A T_past-input sentence holds at every stage (Thm 3.3).

    ``formula`` is a universally quantified Boolean combination of
    literals over output, state (``past-R``), and database relations.
    Offline the check covers *all* runs (and, with ``database=None`` on
    the verifier, all databases); online the monitor checks the
    session's actual stages, compiled to a delta-capable violation plan
    when the formula admits one.
    """

    formula: Formula
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.formula, Formula):
            raise SpecError(
                "TemporalProperty needs a repro.logic.fol.Formula, got "
                f"{type(self.formula).__name__}"
            )

    def describe(self) -> str:
        return self.name or f"always: {self.formula}"


@dataclass(frozen=True)
class ErrorFreeness(PropertySpec):
    """Runs stay error-free, or a Tsdi discipline holds on them.

    Without a sentence: no run ever derives the ``error_relation`` --
    offline via the T_past-input reduction, online by watching each
    step's output.  With a :class:`~repro.verify.tsdi.TsdiSentence`:
    offline, Theorem 4.4 (every error-free run satisfies the sentence);
    online, the sentence is compiled to error rules (Theorem 4.1) and
    each step is checked against the session's input and prior state.
    """

    sentence: TsdiSentence | None = None
    error_relation: str = "error"
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.sentence is not None and not isinstance(
            self.sentence, TsdiSentence
        ):
            raise SpecError(
                "ErrorFreeness needs a TsdiSentence (or None), got "
                f"{type(self.sentence).__name__}"
            )

    @classmethod
    def of_disciplines(
        cls, *conjuncts: TsdiConjunct, error_relation: str = "error"
    ) -> "ErrorFreeness":
        """Convenience: wrap Tsdi conjuncts into a sentence spec."""
        return cls(TsdiSentence.of(*conjuncts), error_relation=error_relation)

    def describe(self) -> str:
        if self.name:
            return self.name
        if self.sentence is None:
            return f"no {self.error_relation!r} output on any step"
        return (
            f"{len(self.sentence.conjuncts)} Tsdi discipline(s) hold on "
            "error-free runs"
        )


@dataclass(frozen=True)
class _Combinator(PropertySpec):
    specs: tuple[PropertySpec, ...]
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.specs:
            raise SpecError(f"{type(self).__name__} needs at least one spec")
        for spec in self.specs:
            if not isinstance(spec, PropertySpec):
                raise SpecError(
                    f"{type(self).__name__} children must be PropertySpecs, "
                    f"got {type(spec).__name__}"
                )

    @property
    def children(self) -> tuple[PropertySpec, ...]:
        return self.specs

    @classmethod
    def of(cls, *specs: PropertySpec, name: str = ""):
        return cls(tuple(specs), name=name)


class AllOf(_Combinator):
    """Conjunction: holds iff every child spec holds."""

    def describe(self) -> str:
        return self.name or (
            "all of: " + "; ".join(s.describe() for s in self.specs)
        )


class AnyOf(_Combinator):
    """Disjunction: holds iff at least one child spec holds."""

    def describe(self) -> str:
        return self.name or (
            "any of: " + "; ".join(s.describe() for s in self.specs)
        )


def coerce_log_entries(
    transducer, log: Sequence
) -> list["Instance"]:
    """Coerce facts-dicts/instances onto the transducer's log schema."""
    from repro.relalg.instance import Instance

    schema = transducer.schema.log_schema
    entries: list[Instance] = []
    for entry in log:
        if isinstance(entry, Instance):
            if set(entry.schema.names) != set(schema.names):
                entry = entry.project_onto(schema)
            entries.append(entry)
        else:
            entries.append(Instance(schema, dict(entry)))
    return entries
