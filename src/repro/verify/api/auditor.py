"""Online auditing: property specs attached to live pods.

An :class:`OnlineAuditor` carries a set of :class:`PropertySpec`
objects into a :class:`~repro.pods.service.PodService`: the service
calls :meth:`observe_step` from inside ``submit()`` after every applied
step, each session gets its own compiled monitor set (shared physical
plans, per-session incremental executors -- the same sharing shape as
the runtime's own evaluation), and violations become
:class:`AuditFinding` records whose traces replay the audited session's
own observed inputs through a fresh service to reproduce the violating
log.

``reference`` is the specification model log-validity and reachability
audits are decided against; by default it is the serving transducer
itself (then a produced log can never be invalid and the audit checks
input disciplines / temporal invariants), and pointing it at a
different model is exactly the paper's audit scenario -- a deployed
implementation checked, step by step, against the transducer the
business rules were verified on.

In ``strict`` mode the owning service raises
:class:`~repro.errors.AuditViolation` after recording a violating step;
otherwise findings accumulate for later inspection.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.run import log_of_step
from repro.datalog.plan import EvalCounters
from repro.errors import SpecError
from repro.verify.api.monitor import (
    StageView,
    StepMonitor,
    build_monitor,
    sum_counters,
)
from repro.verify.api.specs import PropertySpec
from repro.verify.api.trace import KIND_COUNTEREXAMPLE, CounterexampleTrace

if TYPE_CHECKING:
    from repro.core.transducer import RelationalTransducer
    from repro.relalg.instance import Instance


@dataclass(frozen=True)
class AuditFinding:
    """One violation observed on one step of one audited session."""

    session_id: str
    step: int
    spec: PropertySpec = field(compare=False)
    violation: str = ""
    trace: CounterexampleTrace | None = field(default=None, compare=False)


@dataclass
class AuditOutcome:
    """What one audited step produced (consumed by RuntimeMetrics)."""

    findings: tuple[AuditFinding, ...] = ()
    checks: int = 0
    eval_delta: EvalCounters = field(default_factory=EvalCounters)


class _SessionAudit:
    """Per-session monitor set plus the observed history for traces."""

    __slots__ = ("monitors", "inputs", "log", "resume_steps", "resume_state",
                 "counters_seen", "needs_history", "seed_inputs")

    def __init__(
        self,
        monitors: list[StepMonitor],
        resume_steps: int,
        resume_state,
        seed_inputs: tuple = (),
    ) -> None:
        self.monitors = monitors
        self.inputs: list = []
        self.log: list = []
        # Resumed sessions joined mid-run: their pre-restart inputs are
        # unobservable, so traces carry the resume point (state + log
        # prefix) instead and replay by resuming from a snapshot.
        self.resume_steps = resume_steps
        self.resume_state = resume_state
        # For history-reading monitors: the pre-restart inputs,
        # reconstructed (up to union, which is all reachability needs)
        # from the cumulative Spocus state.  Not part of traces.
        self.seed_inputs = seed_inputs
        # Baseline for per-step counter deltas.  Starting from zero
        # (not from a first-observe snapshot) charges the monitors'
        # build-time plan compiles/cache hits to the first audited step.
        self.counters_seen = EvalCounters()
        # The O(step) so-far tuples are only materialized for monitors
        # that actually read history (log/reachability audits).
        self.needs_history = any(m.needs_history for m in monitors)


class OnlineAuditor:
    """Attach property specs to a pod service; check every step.

    Construct with the specs, pass as ``PodService(...,
    auditor=auditor)``; the service binds it to its transducer and
    database and drives it.  One auditor belongs to one service (a
    :class:`~repro.pods.service.ShardedPodService` takes an
    ``auditor_factory`` and gives every shard its own).
    """

    def __init__(
        self,
        specs: Iterable[PropertySpec],
        *,
        reference: "RelationalTransducer | None" = None,
        strict: bool = False,
        check_every: int = 1,
        ledger=None,
    ) -> None:
        self.specs = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, PropertySpec):
                raise SpecError(
                    f"OnlineAuditor takes PropertySpecs, got "
                    f"{type(spec).__name__}"
                )
        if not isinstance(check_every, int) or check_every < 1:
            raise SpecError(
                f"check_every must be an integer >= 1, got {check_every!r}"
            )
        self.reference = reference
        self.strict = strict
        # Amortization: monitors that *latch* (LogValidity /
        # GoalReachability re-decide a permanent property of the whole
        # prefix, so a violation at step i is still a violation at every
        # j > i) are re-decided only every k-th step of a session.
        # Detection is delayed to the next multiple of k, never lost.
        # Per-step monitors (temporal safety, disciplines) always run.
        self.check_every = check_every
        self._transducer: "RelationalTransducer | None" = None
        self._database: "Instance | None" = None
        self._database_facts: dict | None = None
        self._sessions: dict[str, _SessionAudit] = {}
        self._findings: list[AuditFinding] = []
        # Guards the cross-session shared pieces (_sessions, _findings):
        # observe_step calls arrive concurrently from the workers of a
        # concurrent submit_batch -- one session per worker, so each
        # _SessionAudit stays single-threaded, but registration and the
        # findings ledger are shared and must not lose entries.
        self._lock = threading.Lock()
        # Optional persistent violations ledger: every finding is also
        # written through the SessionStore seam, and findings recorded
        # by a previous process over the same store are rehydrated here
        # (their traces intact, their specs reduced to LedgerSpec name
        # placeholders).
        if ledger is None:
            self._ledger = None
        else:
            from repro.shadow.ledger import AuditLedger

            self._ledger = (
                ledger if isinstance(ledger, AuditLedger) else AuditLedger(ledger)
            )
            self._findings.extend(
                record
                for record in self._ledger.all_records()
                if isinstance(record, AuditFinding)
            )

    # -- lifecycle (driven by the owning service) ------------------------------

    @property
    def bound(self) -> bool:
        return self._transducer is not None

    def bind(self, transducer, database: "Instance") -> None:
        """Called by the owning service; one auditor per service."""
        if self._transducer is not None and (
            self._transducer is not transducer or self._database is not database
        ):
            raise SpecError(
                "OnlineAuditor is already bound to a different service; "
                "construct one auditor per service"
            )
        from repro.verify.api.trace import facts_of_instance

        self._transducer = transducer
        self._database = database
        # One shared facts view, referenced by every finding's trace so
        # traces stay self-contained without copying the catalog.
        self._database_facts = facts_of_instance(database)
        # Fail fast on specs the serving schema cannot support.
        for spec in self.specs:
            build_monitor(
                spec, transducer, database, reference=self.reference
            )

    def is_registered(self, session_id: str) -> bool:
        """Whether a session is currently under audit.

        Registration survives hot-session eviction: the service's LRU
        cache drops only the in-memory :class:`Session` object, and the
        audit state lives here, keyed by id.  Only
        :meth:`forget_session` (session closed) ends an audit, so a
        rehydrated session keeps its monitors, history, and findings.
        """
        with self._lock:
            return session_id in self._sessions

    def register_session(
        self,
        session_id: str,
        *,
        steps: int = 0,
        log: Sequence = (),
        state=None,
    ) -> bool:
        """Start auditing a session (fresh, or resumed at ``steps``).

        For a resumed session the service supplies the restored step
        count, log, and cumulative ``state``: the log keeps feeding
        log-shaped audits, and the (steps, state, log) triple becomes
        the resume point of any finding's trace, so replays resume from
        a snapshot exactly as the service did.  A session resumed
        *without* its full log (recorded with ``keep_logs=False``)
        cannot yield replayable evidence for *any* spec -- the trace's
        resume prefix would be missing -- so that raises here instead
        of crashing (or producing non-reproducing traces) at the first
        violation.

        Registering an already-registered session is a no-op returning
        ``False`` (the existing audit, with its accumulated history,
        wins); ``True`` means this call started the audit.  The no-op
        path is what lets a service rehydrate an evicted session
        without resetting its audit mid-run.
        """
        if self._transducer is None or self._database is None:
            raise SpecError("OnlineAuditor.bind() must run before sessions")
        with self._lock:
            if session_id in self._sessions:
                return False
        if steps and len(log) != steps:
            raise SpecError(
                f"cannot audit session {session_id!r}: it resumed at step "
                f"{steps} with {len(log)} stored log entries (recorded "
                "with keep_logs=False?), so findings could not carry a "
                "replayable trace"
            )
        monitors = [
            build_monitor(
                spec, self._transducer, self._database,
                reference=self.reference,
            )
            for spec in self.specs
        ]
        seed_inputs: tuple = ()
        if steps and state is not None:
            # Spocus state is exactly the union of past inputs, so the
            # pre-restart input history is recoverable (up to union --
            # which is all that accumulated-prefix checks like goal
            # reachability read) as one synthetic input instance.
            synthetic = _inputs_from_state(self._transducer, state)
            if synthetic is not None:
                seed_inputs = (synthetic,)
            elif any(m.needs_history for m in monitors):
                raise SpecError(
                    f"cannot audit session {session_id!r}: it resumed "
                    "mid-run and the transducer's state does not "
                    "determine its past inputs, so history-reading "
                    "specs would silently miss pre-restart violations"
                )
        audit = _SessionAudit(
            monitors,
            resume_steps=steps,
            resume_state=state,
            seed_inputs=seed_inputs,
        )
        audit.log.extend(log)
        with self._lock:
            # setdefault so racing registrations of the same session id
            # agree on one audit object (first writer wins).
            return self._sessions.setdefault(session_id, audit) is audit

    def forget_session(self, session_id: str) -> None:
        """Stop auditing (session closed).

        Without a ledger, recorded findings are kept (the historical
        behaviour).  With one, a closed session's findings are *pruned*
        -- from memory and from the ledger -- mirroring how the session
        stores treat ``record_closed``: the ledger is the book of open
        pods' violations, and closing a pod retires its entry.
        """
        with self._lock:
            self._sessions.pop(session_id, None)
            if self._ledger is not None:
                self._findings = [
                    f for f in self._findings if f.session_id != session_id
                ]
        if self._ledger is not None:
            self._ledger.forget(session_id)

    # -- the per-step hook -----------------------------------------------------

    def observe_step(
        self,
        session_id: str,
        *,
        step: int,
        inputs: "Instance",
        output: "Instance",
        state_before: "Instance",
        state_after: "Instance",
        log_entry: "Instance | None",
    ) -> AuditOutcome:
        """Check one applied step; returns findings and counter deltas.

        Safe to call concurrently for *different* sessions (the shared
        findings ledger is locked); one session's steps must be
        observed sequentially, which the owning service guarantees by
        stepping each session on a single worker.
        """
        with self._lock:
            audit = self._sessions.get(session_id)
        if audit is None:
            return AuditOutcome()
        audit.inputs.append(inputs)
        if log_entry is None:
            # The service runs with keep_logs=False; the audit computes
            # the entry itself so log-shaped specs (and trace evidence)
            # keep working instead of silently checking nothing.
            log_entry = log_of_step(
                inputs, output, self._transducer.schema.log_schema
            )
        audit.log.append(log_entry)
        stage = StageView(
            step=step,
            inputs=inputs,
            output=output,
            state_before=state_before,
            state_after=state_after,
            log_entry=log_entry,
            inputs_so_far=(
                audit.seed_inputs + tuple(audit.inputs)
                if audit.needs_history
                else ()
            ),
            log_so_far=tuple(audit.log) if audit.needs_history else (),
        )
        findings: list[AuditFinding] = []
        checks = 0
        for monitor in audit.monitors:
            if (
                self.check_every > 1
                and getattr(monitor, "amortizable", False)
                and step % self.check_every != 0
            ):
                # Latching monitor on an off-cycle step: skip the
                # re-decision (history above still accumulated, so the
                # next on-cycle step sees the full prefix).
                continue
            checks += 1
            for violation in monitor.observe(stage):
                findings.append(
                    AuditFinding(
                        session_id=session_id,
                        step=step,
                        spec=monitor.spec,
                        violation=violation,
                        trace=self._trace_of(audit, step, violation, monitor),
                    )
                )
        current = sum_counters(m.eval_counters() for m in audit.monitors)
        delta = current - audit.counters_seen
        audit.counters_seen = current
        if findings:
            with self._lock:
                self._findings.extend(findings)
            if self._ledger is not None:
                for finding in findings:
                    self._ledger.append(finding.session_id, finding)
        return AuditOutcome(
            findings=tuple(findings),
            checks=checks,
            eval_delta=delta,
        )

    def _trace_of(
        self, audit: _SessionAudit, step: int, violation: str, monitor
    ) -> CounterexampleTrace:
        """The replayable evidence for one finding.

        Inputs are the observed steps; for resumed sessions the resume
        point (pre-restart state + log prefix) rides along so the
        replay seeds a snapshot first -- the full recorded log is then
        reproduced end to end either way.  The audited database rides
        along too (shared, not copied), keeping the trace self-
        contained: ``trace.reproduces(transducer)`` works in a process
        that never saw the service.
        """
        from repro.verify.api.trace import facts_of_instance, facts_sequence

        return CounterexampleTrace(
            kind=KIND_COUNTEREXAMPLE,
            inputs=facts_sequence(audit.inputs),
            log=facts_sequence(audit.log),
            database=self._database_facts,
            step=step,
            violation=violation,
            property_name=monitor.spec.describe(),
            resume_steps=audit.resume_steps,
            resume_state=(
                facts_of_instance(audit.resume_state)
                if audit.resume_state is not None
                else None
            ),
        )

    # -- reporting -------------------------------------------------------------

    @property
    def ledger(self):
        """The attached :class:`~repro.shadow.ledger.AuditLedger`, if any."""
        return self._ledger

    def findings(self, session_id: str | None = None) -> list[AuditFinding]:
        """All recorded findings, optionally for one session."""
        with self._lock:
            recorded = list(self._findings)
        if session_id is None:
            return recorded
        return [f for f in recorded if f.session_id == session_id]

    def violation_count(self) -> int:
        with self._lock:
            return len(self._findings)


def _inputs_from_state(transducer, state):
    """One input instance carrying a cumulative state's past inputs.

    Only possible when every input relation has its Spocus ``past-R``
    state relation (the cumulative discipline); returns None otherwise.
    """
    from repro.core.spocus import past
    from repro.relalg.instance import Instance

    schema = transducer.schema
    state_names = set(state.schema.names)
    data = {}
    for rel in schema.inputs:
        history = past(rel.name)
        if history not in state_names:
            return None
        data[rel.name] = state[history]
    return Instance(schema.inputs, data)
