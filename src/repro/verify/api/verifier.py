"""The Verifier facade: typed specs in, typed verdicts out.

One object, two modes:

* :meth:`Verifier.check` decides a :class:`PropertySpec` *offline* over
  all runs (the paper's BSR reductions, via the engine backends in
  ``repro.verify.*``);
* :meth:`Verifier.check_run` decides the same spec over one *concrete*
  input sequence, stage by stage, with the plan-backed monitors of
  :mod:`repro.verify.api.monitor` -- exactly what the
  :class:`~repro.verify.api.auditor.OnlineAuditor` does to a live pod,
  so offline-on-the-full-log and online-stepwise agree by construction.

Every failing :class:`Verdict` carries a
:class:`~repro.verify.api.trace.CounterexampleTrace` whose replay
through a fresh :class:`~repro.pods.service.PodService` reproduces the
recorded violating log; passing verdicts for existential questions
(valid log, reachable goal) carry the supporting witness trace instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import SpecError
from repro.logic.bsr import GroundingStats
from repro.logic.fol import Forall, Not, Rel
from repro.datalog.ast import Variable
from repro.verify.containment import (
    check_log_containment,
    check_pointwise_log_equality,
)
from repro.verify.errorfree import check_error_free_property
from repro.verify.logvalidity import check_log_validity
from repro.verify.reachability import check_goal_reachability
from repro.verify.temporal import check_temporal_property
from repro.verify.api.monitor import StageView, build_monitor
from repro.verify.api.specs import (
    AllOf,
    AnyOf,
    ErrorFreeness,
    GoalReachability,
    LogValidity,
    PropertySpec,
    TemporalProperty,
    coerce_log_entries,
)
from repro.verify.api.trace import (
    KIND_COUNTEREXAMPLE,
    KIND_WITNESS,
    CounterexampleTrace,
    trace_from_run,
)

if TYPE_CHECKING:
    from repro.core.spocus import SpocusTransducer
    from repro.relalg.instance import Instance


@dataclass(frozen=True)
class Verdict:
    """The typed outcome of checking one spec.

    ``trace`` is the counterexample when the spec fails, or the
    supporting witness for passing existential specs; ``children``
    carries the per-child verdicts of a combinator.  Truthiness follows
    ``holds``, so ``if verifier.check(spec): ...`` reads naturally.
    """

    spec: PropertySpec
    holds: bool
    trace: CounterexampleTrace | None = None
    backend: str = ""
    detail: str = ""
    stats: GroundingStats | None = field(default=None, compare=False)
    children: tuple["Verdict", ...] = ()

    def __bool__(self) -> bool:
        return self.holds

    @property
    def counterexample(self) -> CounterexampleTrace | None:
        """The trace, when it demonstrates a violation."""
        if self.trace is not None and self.trace.kind == KIND_COUNTEREXAMPLE:
            return self.trace
        return None


class Verifier:
    """Checks :class:`PropertySpec` objects against one transducer.

    ``database=None`` leaves the database uninterpreted, giving the
    stronger schema-level answers where the backends support it; the
    trace of a failing schema-level check then carries the decoded
    witness database so it still replays deterministically.
    """

    def __init__(
        self,
        transducer: "SpocusTransducer",
        database=None,
        *,
        replay: bool = True,
    ) -> None:
        self.transducer = transducer
        self.database: "Instance | None" = (
            transducer.coerce_database(database) if database is not None else None
        )
        self.replay = replay

    # -- offline (all-runs / given-log) checks ---------------------------------

    def check(self, spec: PropertySpec) -> Verdict:
        """Decide a spec with the paper's offline decision procedures."""
        if isinstance(spec, LogValidity):
            return self._check_log_validity(spec)
        if isinstance(spec, GoalReachability):
            return self._check_reachability(spec)
        if isinstance(spec, TemporalProperty):
            return self._check_temporal(spec, spec.formula)
        if isinstance(spec, ErrorFreeness):
            return self._check_error_freeness(spec)
        if isinstance(spec, AllOf):
            children = tuple(self.check(child) for child in spec.specs)
            failing = next((v for v in children if not v.holds), None)
            return Verdict(
                spec,
                failing is None,
                trace=failing.trace if failing is not None else None,
                backend="all_of",
                detail=failing.detail if failing is not None else "",
                children=children,
            )
        if isinstance(spec, AnyOf):
            children = tuple(self.check(child) for child in spec.specs)
            passing = next((v for v in children if v.holds), None)
            first = children[0]
            return Verdict(
                spec,
                passing is not None,
                trace=passing.trace if passing is not None else first.trace,
                backend="any_of",
                detail="" if passing is not None else first.detail,
                children=children,
            )
        raise SpecError(f"cannot check spec type {type(spec).__name__}")

    def check_all(self, *specs: PropertySpec) -> list[Verdict]:
        return [self.check(spec) for spec in specs]

    # -- per-spec backends -----------------------------------------------------

    def _check_log_validity(self, spec: LogValidity) -> Verdict:
        if not spec.log:
            raise SpecError(
                "offline LogValidity needs the log to validate; the log-less "
                "form is for online auditing of a session's own log"
            )
        transducer = self.transducer
        entries = coerce_log_entries(transducer, spec.log)
        result = check_log_validity(
            transducer, self.database, entries, replay=self.replay
        )
        if result.valid:
            trace = trace_from_run(
                KIND_WITNESS,
                result.witness_inputs or (),
                entries,
                database=result.witness_database,
                property_name=spec.describe(),
            )
            return Verdict(
                spec, True, trace=trace, backend="logvalidity",
                stats=result.stats,
            )
        # Locate the first unrealizable step: log prefixes of valid logs
        # are valid, so validity is downward closed and the first invalid
        # prefix pinpoints the violation.  The full log is already known
        # invalid, so only proper prefixes need deciding.
        witness: list = []
        witness_db = None
        first_bad = len(entries)
        for k in range(1, len(entries)):
            prefix_result = check_log_validity(
                transducer, self.database, entries[:k], replay=False
            )
            if not prefix_result.valid:
                first_bad = k
                break
            witness = prefix_result.witness_inputs or []
            witness_db = prefix_result.witness_database
        trace = trace_from_run(
            KIND_COUNTEREXAMPLE,
            witness,
            entries[: first_bad - 1],
            database=witness_db,
            step=first_bad,
            violation=(
                f"log step {first_bad} cannot extend any realization of "
                f"steps 1..{first_bad - 1}"
            ),
            property_name=spec.describe(),
        )
        return Verdict(
            spec, False, trace=trace, backend="logvalidity",
            detail=trace.violation, stats=result.stats,
        )

    def _require_database(self, what: str) -> "Instance":
        if self.database is None:
            raise SpecError(f"{what} needs a concrete database")
        return self.database

    def _check_reachability(self, spec: GoalReachability) -> Verdict:
        database = self._require_database("GoalReachability")
        transducer = self.transducer
        result = check_goal_reachability(
            transducer, database, spec.goal, prefix=spec.prefix,
            replay=self.replay,
        )
        if result.reachable:
            witness = result.witness_inputs or []
            run = transducer.run(database, witness)
            trace = trace_from_run(
                KIND_WITNESS, witness, run.logs,
                step=len(witness) or None,
                property_name=spec.describe(),
            )
            return Verdict(
                spec, True, trace=trace, backend="reachability",
                stats=result.stats,
            )
        prefix = [transducer.coerce_input(step) for step in spec.prefix]
        run = transducer.run(database, prefix)
        trace = trace_from_run(
            KIND_COUNTEREXAMPLE, prefix, run.logs,
            step=len(prefix) or None,
            violation="goal is unreachable from here: " + spec.describe(),
            property_name=spec.describe(),
        )
        return Verdict(
            spec, False, trace=trace, backend="reachability",
            detail=trace.violation, stats=result.stats,
        )

    def _violating_stage(self, spec, transducer, database, inputs) -> tuple:
        """(run, first violating 1-based stage or None) for a monitor."""
        run = transducer.run(database, inputs)
        monitor = build_monitor(spec, transducer, database)
        for index in range(len(run.inputs)):
            stage = self._stage_view(run, index)
            if monitor.observe(stage):
                return run, index + 1
        return run, None

    @staticmethod
    def _stage_view(run, index: int) -> StageView:
        return StageView(
            step=index + 1,
            inputs=run.inputs[index],
            output=run.outputs[index],
            state_before=(
                run.states[index - 1] if index > 0 else _initial_state_like(run)
            ),
            state_after=run.states[index],
            log_entry=run.logs[index],
            inputs_so_far=tuple(run.inputs[: index + 1]),
            log_so_far=tuple(run.logs[: index + 1]),
        )

    def _check_temporal(
        self, spec: PropertySpec, formula, backend: str = "temporal"
    ) -> Verdict:
        transducer = self.transducer
        result = check_temporal_property(
            transducer, formula, self.database, replay=self.replay
        )
        if result.holds:
            return Verdict(spec, True, backend=backend, stats=result.stats)
        witness = result.counterexample_inputs or []
        replay_db = (
            self.database
            if self.database is not None
            else result.counterexample_database
        )
        if replay_db is None:  # pragma: no cover - decoded above
            replay_db = transducer.coerce_database({})
        run, stage = self._violating_stage(
            spec if isinstance(spec, TemporalProperty) else TemporalProperty(formula),
            transducer, replay_db, witness,
        )
        trace = trace_from_run(
            KIND_COUNTEREXAMPLE, witness, run.logs,
            database=result.counterexample_database,
            step=stage,
            violation=(
                f"run violates {spec.describe()}"
                + (f" at stage {stage}" if stage else "")
            ),
            property_name=spec.describe(),
        )
        return Verdict(
            spec, False, trace=trace, backend=backend,
            detail=trace.violation, stats=result.stats,
        )

    def _check_error_freeness(self, spec: ErrorFreeness) -> Verdict:
        transducer = self.transducer
        if spec.sentence is None:
            if spec.error_relation not in transducer.schema.outputs:
                raise SpecError(
                    f"ErrorFreeness: {spec.error_relation!r} is not an "
                    "output relation of the transducer"
                )
            arity = transducer.schema.outputs.arity(spec.error_relation)
            variables = tuple(Variable(f"E{i}") for i in range(arity))
            formula = Not(Rel(spec.error_relation, variables))
            if variables:
                formula = Forall(variables, formula)
            return self._check_temporal(spec, formula, backend="errorfree")
        result = check_error_free_property(
            transducer, spec.sentence, self.database,
            error_relation=spec.error_relation,
        )
        if result.holds:
            return Verdict(spec, True, backend="errorfree", stats=result.stats)
        witness = result.counterexample_inputs or []
        replay_db = (
            self.database
            if self.database is not None
            else result.counterexample_database
        )
        if replay_db is None:  # pragma: no cover - decoded above
            replay_db = transducer.coerce_database({})
        run = transducer.run(replay_db, witness)
        trace = trace_from_run(
            KIND_COUNTEREXAMPLE, witness, run.logs,
            database=result.counterexample_database,
            step=len(witness) or None,
            violation=(
                "an error-free run violates the Tsdi discipline at its "
                f"last stage ({spec.describe()})"
            ),
            property_name=spec.describe(),
        )
        return Verdict(
            spec, False, trace=trace, backend="errorfree",
            detail=trace.violation, stats=result.stats,
        )

    # -- concrete-run checks (the audit view) ----------------------------------

    def check_run(
        self,
        spec: PropertySpec,
        inputs: Sequence,
        *,
        transducer: "SpocusTransducer | None" = None,
        database=None,
    ) -> Verdict:
        """Check a spec stage-by-stage over one concrete input sequence.

        ``transducer`` is the implementation that executes the run
        (default: this verifier's own); the verifier's transducer stays
        the *reference* model for log-validity and reachability audits.
        This is exactly the computation the online auditor performs on a
        live pod, so its verdicts match stepwise audit findings.
        """
        served = transducer if transducer is not None else self.transducer
        if database is not None:
            db = served.coerce_database(database)
        else:
            db = self._require_database("check_run")
        run = served.run(db, [served.coerce_input(step) for step in inputs])
        monitor = build_monitor(spec, served, db, reference=self.transducer)
        for index in range(len(run.inputs)):
            stage = self._stage_view(run, index)
            violations = monitor.observe(stage)
            if violations:
                step = index + 1
                trace = trace_from_run(
                    KIND_COUNTEREXAMPLE,
                    run.inputs[:step],
                    run.logs[:step],
                    step=step,
                    violation="; ".join(violations),
                    property_name=spec.describe(),
                )
                return Verdict(
                    spec, False, trace=trace, backend="monitor",
                    detail=trace.violation,
                )
        return Verdict(spec, True, backend="monitor")

    # -- containment (two-transducer questions) --------------------------------

    def check_containment(
        self, smaller: "SpocusTransducer", *, pointwise: bool = False
    ) -> Verdict:
        """Theorem 3.5 containment of ``smaller``'s logs in this model's.

        ``pointwise=True`` uses the partial-log sufficient criterion
        instead (the ``short``/``friendly`` comparison).  The verifier's
        transducer plays T₁ (the reference model); ``smaller`` the
        customization.  Containment has no single-transducer spec class:
        it stays a method because its counterexample separates *two*
        transducers, but the verdict and trace are the same shapes.
        """
        checker = (
            check_pointwise_log_equality if pointwise else check_log_containment
        )
        result = checker(self.transducer, smaller, self.database)
        if result.contained:
            return Verdict(
                _ContainmentSpec(pointwise), True, backend="containment",
                stats=result.stats,
            )
        trace = None
        if result.separating_inputs is not None and self.database is not None:
            db = smaller.coerce_database(self.database)
            run = smaller.run(db, result.separating_inputs)
            relation, step = result.difference or ("?", None)
            trace = trace_from_run(
                KIND_COUNTEREXAMPLE,
                result.separating_inputs,
                run.logs,
                step=step,
                violation=(
                    f"logs diverge on relation {relation!r} at step {step} "
                    "(trace replays the customization's log)"
                ),
            )
        return Verdict(
            _ContainmentSpec(pointwise), False, trace=trace,
            backend="containment",
            detail=trace.violation if trace else "logs diverge",
            stats=result.stats,
        )


@dataclass(frozen=True)
class _ContainmentSpec(PropertySpec):
    """Synthetic spec standing in for the two-transducer containment check."""

    pointwise: bool = False

    def describe(self) -> str:
        return (
            "pointwise log equality" if self.pointwise else "log containment"
        )


def _initial_state_like(run):
    """The empty state instance matching a run's state schema."""
    from repro.relalg.instance import Instance

    schema = run.states[0].schema
    return Instance(schema, {name: frozenset() for name in schema.names})
