"""Machine-checkable counterexample traces.

A :class:`CounterexampleTrace` is the evidence part of a
:class:`~repro.verify.api.verifier.Verdict`: a concrete input sequence
(plus, in unknown-database mode, a witness database) whose replay
through a fresh :class:`~repro.pods.service.PodService` deterministically
reproduces the recorded log.  Traces are pure data -- plain fact
dictionaries, no live objects -- so they can be logged, serialized, and
re-checked in a different process against a freshly constructed
transducer.

The determinism guarantee is the run semantics of Section 2.2: a
transducer step is a function of (input, state, database), so replaying
the same inputs over the same database always rebuilds the same log,
whether through :meth:`RelationalTransducer.run` or step by step through
``PodService.submit()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import SpecError

if TYPE_CHECKING:
    from repro.core.transducer import RelationalTransducer
    from repro.pods.session import SessionLog
    from repro.relalg.instance import Instance

Facts = Mapping[str, frozenset[tuple]]

KIND_COUNTEREXAMPLE = "counterexample"
KIND_WITNESS = "witness"


def facts_of_instance(instance: "Instance") -> dict[str, frozenset[tuple]]:
    """An instance's relations as a plain, order-independent dict."""
    from repro.pods.api import facts_of

    return facts_of(instance)


def facts_sequence(instances: Sequence["Instance"]) -> tuple[dict, ...]:
    return tuple(facts_of_instance(instance) for instance in instances)


@dataclass(frozen=True)
class CounterexampleTrace:
    """A replayable (counter)example run of a transducer.

    ``inputs`` holds one facts-dict per step; ``log`` is the log the
    replay of those inputs must reproduce -- for a failing verdict the
    violating log, for a passing one (e.g. a valid-log witness or a
    reachability witness) the supporting log.  ``database`` is only set
    when the check ran in unknown-database mode and the trace is only
    meaningful over that witness database.  ``step`` is the 1-based run
    position where the violation manifests (None when the violation is
    not tied to a single step), and ``violation`` says what went wrong
    in words.
    """

    kind: str
    inputs: tuple[Facts, ...]
    log: tuple[Facts, ...]
    database: Facts | None = None
    step: int | None = None
    violation: str = ""
    property_name: str = field(default="", compare=False)
    # A trace recorded from a *resumed* session cannot list the inputs
    # of its pre-restart steps; instead it carries the resume point:
    # the cumulative state after ``resume_steps`` steps plus those
    # steps' log entries (``log[:resume_steps]``).  ``replay`` then
    # seeds a store snapshot and resumes, exactly as the service did.
    resume_steps: int = 0
    resume_state: Facts | None = None

    def __len__(self) -> int:
        return len(self.inputs)

    def __post_init__(self) -> None:
        if self.resume_steps:
            if self.resume_state is None:
                raise SpecError(
                    "a resumed trace needs the resume-point state"
                )
            if len(self.log) < self.resume_steps:
                raise SpecError(
                    "a resumed trace must include the pre-resume log "
                    f"entries (have {len(self.log)}, resume at step "
                    f"{self.resume_steps + 1})"
                )

    # -- replay ----------------------------------------------------------------

    def _database_for(self, database) -> object:
        if database is not None:
            return database
        if self.database is not None:
            return {name: set(rows) for name, rows in self.database.items()}
        return {}

    def input_instances(
        self, transducer: "RelationalTransducer"
    ) -> list["Instance"]:
        """The trace's input sequence coerced against a transducer."""
        return [transducer.coerce_input(dict(step)) for step in self.inputs]

    def replay(
        self,
        transducer: "RelationalTransducer",
        database=None,
        *,
        session_id: str = "replay",
    ) -> "SessionLog":
        """Re-run the trace through a fresh :class:`PodService`.

        Every input is submitted as a
        :class:`~repro.pods.api.StepRequest` through the service's
        single ``submit()`` path -- the same choke point live traffic
        uses -- and the session's log is returned.  ``database``
        defaults to the trace's witness database (unknown-database
        checks) or the empty instance.
        """
        from repro.pods.api import SessionSnapshot, StepRequest
        from repro.pods.service import PodService
        from repro.pods.store import InMemoryStore

        store = InMemoryStore()
        if self.resume_steps:
            store.import_snapshot(
                SessionSnapshot(
                    session_id=session_id,
                    steps=self.resume_steps,
                    state_facts={
                        name: frozenset(rows)
                        for name, rows in (self.resume_state or {}).items()
                    },
                    log_facts=tuple(
                        {name: frozenset(rows) for name, rows in entry.items()}
                        for entry in self.log[: self.resume_steps]
                    ),
                )
            )
        service = PodService(
            transducer, self._database_for(database), store=store,
            keep_logs=True,
        )
        handle = session_id if self.resume_steps else (
            service.create_session(session_id)
        )
        for step_inputs in self.inputs:
            service.submit(StepRequest(handle, dict(step_inputs)))
        return service.session(handle).log()

    def reproduces(
        self, transducer: "RelationalTransducer", database=None
    ) -> bool:
        """Does the replay rebuild exactly the recorded log?"""
        replayed = self.replay(transducer, database)
        recorded = tuple(
            {name: frozenset(rows) for name, rows in entry.items()}
            for entry in self.log
        )
        return facts_sequence(replayed.entries) == recorded

    def require_reproduces(
        self, transducer: "RelationalTransducer", database=None
    ) -> None:
        """Raise :class:`SpecError` unless the replay matches the log."""
        if not self.reproduces(transducer, database):
            raise SpecError(
                "counterexample trace does not reproduce its recorded log "
                "(was it replayed against the right transducer/database?)"
            )


def trace_from_run(
    kind: str,
    inputs: Sequence["Instance"],
    log: Sequence["Instance"],
    *,
    database: "Instance | None" = None,
    step: int | None = None,
    violation: str = "",
    property_name: str = "",
) -> CounterexampleTrace:
    """Build a trace from live instances (normalizing to plain facts)."""
    return CounterexampleTrace(
        kind=kind,
        inputs=facts_sequence(inputs),
        log=facts_sequence(log),
        database=facts_of_instance(database) if database is not None else None,
        step=step,
        violation=violation,
        property_name=property_name,
    )
