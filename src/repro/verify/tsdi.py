"""The Tsdi property language and its compiler to error rules (Thm 4.1).

Tsdi sentences (Section 4.1) are conjunctions of implications

    ∀x̄ [ φ(state, db, in)(x̄) → ψ(state, db, in)(x̄) ]

where φ is a conjunction of literals with every variable occurring in a
positive literal, and ψ is a quantifier-free *positive* formula.  They
express input disciplines such as "pay(x,y) requires price(x,y) and a
prior order(x)".

Theorem 4.1: for every Tsdi sentence there is a Spocus transducer whose
error-free runs are exactly the input sequences satisfying it.  The
compilation is the proof's: put ψ in conjunctive normal form; for each
clause L₁ ∨ … ∨ L_m emit

    error :- φ, NOT L₁, ..., NOT L_m .

This module provides the sentence representation, the compiler, an
enforcement helper that grafts the rules onto an existing transducer,
and an operational satisfaction checker used to validate the theorem on
concrete runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spocus import PAST_PREFIX, SpocusTransducer
from repro.core.run import Run
from repro.datalog.ast import (
    Atom,
    Inequality,
    Literal,
    NegatedAtom,
    PositiveAtom,
    Rule,
    Variable,
)
from repro.datalog.parser import parse_program
from repro.errors import VerificationError
from repro.logic.fol import And, Bottom, Eq, Formula, Not, Or, Rel, Top, conjoin
from repro.logic.fol import forall as fol_forall
from repro.logic.structures import Structure
from repro.relalg.instance import Instance


@dataclass(frozen=True)
class TsdiConjunct:
    """One implication ∀x̄ (φ → ψ).

    ``antecedent`` is a tuple of datalog literals over state/db/input
    relations (φ); ``consequent`` is a positive quantifier-free formula
    over the same relations (ψ), built from :class:`Rel`, ``And`` and
    ``Or`` (``Top`` and ``Bottom`` allowed).
    """

    antecedent: tuple[Literal, ...]
    consequent: Formula

    def __post_init__(self) -> None:
        positive_vars: set[Variable] = set()
        for literal in self.antecedent:
            if isinstance(literal, PositiveAtom):
                positive_vars.update(literal.variables())
        all_vars: set[Variable] = set()
        for literal in self.antecedent:
            all_vars.update(literal.variables())
        unbound = all_vars - positive_vars
        if unbound:
            raise VerificationError(
                f"Tsdi antecedent variables not positively bound: "
                f"{sorted(v.name for v in unbound)}"
            )
        consequent_vars = self.consequent.free_variables()
        if not consequent_vars <= positive_vars:
            raise VerificationError(
                "Tsdi consequent variables must occur positively in the "
                f"antecedent; stray: "
                f"{sorted(v.name for v in consequent_vars - positive_vars)}"
            )
        _require_positive(self.consequent)

    @classmethod
    def parse(cls, antecedent: str, consequent: str) -> "TsdiConjunct":
        """Build a conjunct from rule-body syntax.

        ``antecedent`` is a comma-separated literal list; ``consequent``
        is a semicolon-free formula where ``,`` means AND and ``|``
        means OR over atoms, e.g. ``"pay(X,Y) | cancel(X)"``.
        """
        body_rule = parse_program(f"__head :- {antecedent}").rules[0]
        return cls(body_rule.body, _parse_positive(consequent))


def _parse_positive(text: str) -> Formula:
    """Parse a positive formula: atoms with ``,``=AND (binds loosest after
    ``|``=OR); no parentheses needed for the paper's examples."""
    disjunct_texts = [t.strip() for t in text.split("|")]
    disjuncts: list[Formula] = []
    for chunk in disjunct_texts:
        atom_rules = parse_program(f"__head :- {chunk}").rules[0]
        atoms: list[Formula] = []
        for literal in atom_rules.body:
            if not isinstance(literal, PositiveAtom):
                raise VerificationError(
                    f"Tsdi consequents are positive; bad literal {literal}"
                )
            atoms.append(Rel(literal.atom.predicate, literal.atom.terms))
        disjuncts.append(conjoin(atoms))
    from repro.logic.fol import disjoin

    return disjoin(disjuncts)


def _require_positive(formula: Formula) -> None:
    if isinstance(formula, (Rel, Top, Bottom)):
        return
    if isinstance(formula, (And, Or)):
        for f in formula.operands:
            _require_positive(f)
        return
    raise VerificationError(
        f"Tsdi consequent must be positive (Rel/And/Or): got {formula!r}"
    )


@dataclass(frozen=True)
class TsdiSentence:
    """A conjunction of Tsdi implications."""

    conjuncts: tuple[TsdiConjunct, ...]

    @classmethod
    def of(cls, *conjuncts: TsdiConjunct) -> "TsdiSentence":
        return cls(tuple(conjuncts))


def _cnf_clauses(formula: Formula) -> list[list[Rel]]:
    """CNF of a positive formula as a list of atom clauses.

    ``[]`` means ⊤ (no clauses); a clause ``[]`` inside means ⊥.
    Distribution can explode, but Tsdi consequents are tiny in practice.
    """
    if isinstance(formula, Top):
        return []
    if isinstance(formula, Bottom):
        return [[]]
    if isinstance(formula, Rel):
        return [[formula]]
    if isinstance(formula, And):
        clauses: list[list[Rel]] = []
        for operand in formula.operands:
            clauses.extend(_cnf_clauses(operand))
        return clauses
    if isinstance(formula, Or):
        parts = [_cnf_clauses(op) for op in formula.operands]
        result: list[list[Rel]] = [[]]
        for clause_set in parts:
            if not clause_set:  # ⊤ absorbs the disjunction
                return []
            result = [
                existing + new
                for existing in result
                for new in clause_set
            ]
        return result
    raise VerificationError(f"not a positive formula: {formula!r}")


def compile_tsdi(sentence: TsdiSentence) -> list[Rule]:
    """Compile a Tsdi sentence into Spocus ``error`` rules (Theorem 4.1)."""
    rules: list[Rule] = []
    error_head = Atom("error", ())
    for conjunct in sentence.conjuncts:
        for clause in _cnf_clauses(conjunct.consequent):
            body: list[Literal] = list(conjunct.antecedent)
            for atom_formula in clause:
                body.append(
                    NegatedAtom(
                        Atom(atom_formula.predicate, atom_formula.terms)
                    )
                )
            rules.append(Rule(error_head, tuple(body)))
    return rules


def enforce_tsdi(
    transducer: SpocusTransducer, sentence: TsdiSentence
) -> SpocusTransducer:
    """Return ``transducer`` extended with the compiled error rules.

    The result's error-free runs are exactly the runs of ``transducer``
    whose input sequences satisfy ``sentence`` (Theorem 4.1).
    """
    from repro.datalog.ast import Program

    rules = compile_tsdi(sentence)
    extra_outputs = (
        {} if "error" in transducer.schema.outputs else {"error": 0}
    )
    return transducer.with_extra_rules(
        Program(tuple(rules)), extra_outputs=extra_outputs
    )


def _literal_formula(literal: Literal) -> Formula:
    if isinstance(literal, PositiveAtom):
        return Rel(literal.atom.predicate, literal.atom.terms)
    if isinstance(literal, NegatedAtom):
        return Not(Rel(literal.atom.predicate, literal.atom.terms))
    if isinstance(literal, Inequality):
        return Not(Eq(literal.left, literal.right))
    raise VerificationError(f"unknown literal: {literal!r}")


def conjunct_formula(conjunct: TsdiConjunct) -> Formula:
    """The conjunct as a closed FO formula ∀x̄ (φ → ψ)."""
    antecedent = conjoin(_literal_formula(l) for l in conjunct.antecedent)
    from repro.logic.fol import Implies

    body = Implies(antecedent, conjunct.consequent)
    return fol_forall(sorted(body.free_variables(), key=str), body)


def satisfies_tsdi(
    transducer: SpocusTransducer,
    run: Run,
    sentence: TsdiSentence,
    database: dict | Instance,
) -> bool:
    """Operationally check a Tsdi sentence on a run.

    The sentence must hold at every transition, evaluated over the
    transition's input, the state *before* it, and the database --
    matching the evaluation context of the compiled error rules.
    """
    db = transducer.coerce_database(database)
    formulas = [conjunct_formula(c) for c in sentence.conjuncts]
    for index in range(len(run.inputs)):
        relations: dict[str, set[tuple]] = {}
        for rel in transducer.schema.database:
            relations[rel.name] = set(db[rel.name])
        for rel in transducer.schema.inputs:
            relations[rel.name] = set(run.inputs[index][rel.name])
            earlier: set[tuple] = set()
            for j in range(index):
                earlier |= set(run.inputs[j][rel.name])
            relations[PAST_PREFIX + rel.name] = earlier
        domain: set = set()
        for rows in relations.values():
            for row in rows:
                domain.update(row)
        for formula in formulas:
            domain |= set(formula.constants())
        if not domain:
            domain = {"@default"}
        structure = Structure.of(domain, relations)
        if not all(structure.evaluate(f) for f in formulas):
            return False
    return True
