"""Verification of relational transducers.

Every decidable question in the paper reduces to finite satisfiability
of a Bernays-Schoenfinkel sentence over a schema that replicates the
input relations once per run step.  :mod:`repro.verify.encoder` holds
that shared reduction; since PR 4 the public surface is the typed
:mod:`repro.verify.api` (``PropertySpec`` -> ``Verifier`` ->
``Verdict`` with replayable ``CounterexampleTrace`` evidence, plus the
``OnlineAuditor`` for live pods), and the sibling modules are its
engine backends:

* :mod:`repro.verify.logvalidity` -- Theorem 3.1 (log validation);
* :mod:`repro.verify.reachability` -- Theorem 3.2 (goal reachability
  and the partial-run variant / progress);
* :mod:`repro.verify.temporal` -- Theorem 3.3 (T_past-input properties);
* :mod:`repro.verify.containment` -- Theorem 3.5 and Corollary 3.6
  (customization containment and equivalence);
* :mod:`repro.verify.errorfree` -- Theorems 4.4 and 4.6 (properties and
  containment of error-free runs);
* :mod:`repro.verify.tsdi` -- Theorem 4.1 (compiling Tsdi input
  disciplines into error rules);
* :mod:`repro.verify.undecidable` -- the reductions of Proposition 3.1
  and Theorem 3.4 (executable undecidability constructions).

The seed-era module-level entry points (``is_valid_log``,
``is_goal_reachable``, ``holds_on_all_runs``, ``log_contains``,
``are_log_equivalent``, ``pointwise_log_equal``,
``holds_on_error_free_runs``, ``errorfree_contains``) keep working but
emit one :class:`DeprecationWarning` per process; new code should go
through :class:`repro.verify.api.Verifier`.
"""

from repro.verify.api import (
    AllOf,
    AnyOf,
    AuditFinding,
    CounterexampleTrace,
    ErrorFreeness,
    GoalReachability,
    LogValidity,
    OnlineAuditor,
    PropertySpec,
    TemporalProperty,
    Verdict,
    Verifier,
)
from repro.verify.encoder import RunEncoder, decode_input_sequence
from repro.verify.logvalidity import (
    LogValidityResult,
    check_log_validity,
    is_valid_log,
)
from repro.verify.reachability import (
    Goal,
    ReachabilityResult,
    check_goal_reachability,
    is_goal_reachable,
)
from repro.verify.temporal import (
    TemporalVerdict,
    check_temporal_property,
    holds_on_all_runs,
)
from repro.verify.containment import (
    ContainmentVerdict,
    are_log_equivalent,
    check_log_containment,
    check_log_equivalence,
    check_pointwise_log_equality,
    log_contains,
    pointwise_log_equal,
)
from repro.verify.errorfree import (
    check_error_free_containment,
    check_error_free_property,
    errorfree_contains,
    holds_on_error_free_runs,
)
from repro.verify.tsdi import TsdiConjunct, TsdiSentence, compile_tsdi, enforce_tsdi, satisfies_tsdi

__all__ = [
    # typed API (PR 4)
    "PropertySpec",
    "LogValidity",
    "GoalReachability",
    "TemporalProperty",
    "ErrorFreeness",
    "AllOf",
    "AnyOf",
    "Verifier",
    "Verdict",
    "CounterexampleTrace",
    "OnlineAuditor",
    "AuditFinding",
    # engine backends
    "check_log_validity",
    "check_goal_reachability",
    "check_temporal_property",
    "check_log_containment",
    "check_log_equivalence",
    "check_pointwise_log_equality",
    "check_error_free_property",
    "check_error_free_containment",
    # shared encoding
    "RunEncoder",
    "decode_input_sequence",
    # deprecated seed-era entry points
    "is_valid_log",
    "LogValidityResult",
    "Goal",
    "is_goal_reachable",
    "ReachabilityResult",
    "holds_on_all_runs",
    "TemporalVerdict",
    "log_contains",
    "are_log_equivalent",
    "pointwise_log_equal",
    "ContainmentVerdict",
    "holds_on_error_free_runs",
    "errorfree_contains",
    "TsdiConjunct",
    "TsdiSentence",
    "compile_tsdi",
    "enforce_tsdi",
    "satisfies_tsdi",
]
