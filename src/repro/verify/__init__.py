"""Verification of relational transducers.

Every decidable question in the paper reduces to finite satisfiability
of a Bernays-Schoenfinkel sentence over a schema that replicates the
input relations once per run step.  :mod:`repro.verify.encoder` holds
that shared reduction; the sibling modules implement the individual
decision procedures:

* :mod:`repro.verify.logvalidity` -- Theorem 3.1 (log validation);
* :mod:`repro.verify.reachability` -- Theorem 3.2 (goal reachability
  and the partial-run variant / progress);
* :mod:`repro.verify.temporal` -- Theorem 3.3 (T_past-input properties);
* :mod:`repro.verify.containment` -- Theorem 3.5 and Corollary 3.6
  (customization containment and equivalence);
* :mod:`repro.verify.errorfree` -- Theorems 4.4 and 4.6 (properties and
  containment of error-free runs);
* :mod:`repro.verify.tsdi` -- Theorem 4.1 (compiling Tsdi input
  disciplines into error rules);
* :mod:`repro.verify.undecidable` -- the reductions of Proposition 3.1
  and Theorem 3.4 (executable undecidability constructions).
"""

from repro.verify.encoder import RunEncoder, decode_input_sequence
from repro.verify.logvalidity import LogValidityResult, is_valid_log
from repro.verify.reachability import Goal, ReachabilityResult, is_goal_reachable
from repro.verify.temporal import TemporalVerdict, holds_on_all_runs
from repro.verify.containment import (
    ContainmentVerdict,
    are_log_equivalent,
    log_contains,
)
from repro.verify.errorfree import (
    errorfree_contains,
    holds_on_error_free_runs,
)
from repro.verify.tsdi import TsdiConjunct, TsdiSentence, compile_tsdi, enforce_tsdi, satisfies_tsdi

__all__ = [
    "RunEncoder",
    "decode_input_sequence",
    "is_valid_log",
    "LogValidityResult",
    "Goal",
    "is_goal_reachable",
    "ReachabilityResult",
    "holds_on_all_runs",
    "TemporalVerdict",
    "log_contains",
    "are_log_equivalent",
    "ContainmentVerdict",
    "holds_on_error_free_runs",
    "errorfree_contains",
    "TsdiConjunct",
    "TsdiSentence",
    "compile_tsdi",
    "enforce_tsdi",
    "satisfies_tsdi",
]
