"""Log validation (Theorem 3.1).

Given a Spocus transducer T, a database D, and a log sequence L, decide
whether some input sequence I produces exactly L.  The reduction
replicates the input schema once per log step, asserts the database
content, and asserts that each log relation at each step has exactly
the logged content -- input relations directly, output relations via
their defining formulas.  The conjunction prenexes to an ∃*∀*FO
sentence, which :func:`repro.logic.bsr.decide_bsr` decides.

When the answer is positive, the decoded witness input sequence is
*replayed* through the real transducer and the produced log compared to
L -- an end-to-end consistency check between the symbolic encoding and
the operational semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.spocus import SpocusTransducer
from repro.errors import VerificationError
from repro.logic.bsr import GroundingStats, decide_bsr
from repro.logic.fol import conjoin
from repro.relalg.instance import Instance
from repro.verify.deprecation import warn_legacy
from repro.verify.encoder import (
    RunEncoder,
    decode_database,
    decode_input_sequence,
)

LogLike = Sequence[Instance] | Sequence[dict]


@dataclass
class LogValidityResult:
    """Outcome of :func:`is_valid_log`.

    ``witness_inputs`` is a generating input sequence when the log is
    valid; ``witness_database`` is additionally populated in unknown-
    database mode.  ``stats`` carries grounding/solver statistics.
    """

    valid: bool
    witness_inputs: list[Instance] | None = None
    witness_database: Instance | None = None
    stats: GroundingStats = field(default_factory=GroundingStats)


def _coerce_log(
    transducer: SpocusTransducer, log: LogLike
) -> list[Instance]:
    schema = transducer.schema.log_schema
    coerced = []
    for entry in log:
        if isinstance(entry, Instance):
            if set(entry.schema.names) != set(schema.names):
                entry = entry.project_onto(schema)
            coerced.append(entry)
        else:
            coerced.append(Instance(schema, dict(entry)))
    return coerced


def is_valid_log(
    transducer: SpocusTransducer,
    database: dict | Instance | None,
    log: LogLike,
    replay: bool = True,
) -> LogValidityResult:
    """Deprecated seed-era entry point; see :func:`check_log_validity`."""
    warn_legacy("is_valid_log", "LogValidity")
    return check_log_validity(transducer, database, log, replay=replay)


def check_log_validity(
    transducer: SpocusTransducer,
    database: dict | Instance | None,
    log: LogLike,
    replay: bool = True,
) -> LogValidityResult:
    """Decide whether ``log`` is a valid log of ``transducer`` on ``database``.

    Pass ``database=None`` for the unknown-database variant mentioned
    after Theorem 3.1: decide whether *some* database makes the log
    valid (the witness database is then extracted from the model).

    This is the engine behind the :class:`repro.verify.api.LogValidity`
    spec; prefer checking specs through a
    :class:`~repro.verify.api.Verifier`, which adds typed verdicts and
    replayable counterexample traces.
    """
    entries = _coerce_log(transducer, log)
    if not entries:
        return LogValidityResult(valid=True, witness_inputs=[])
    encoder = RunEncoder(transducer, len(entries))
    conjuncts = [encoder.log_axioms(entries)]
    db_instance: Instance | None = None
    if database is not None:
        db_instance = transducer.coerce_database(database)
        conjuncts.append(encoder.database_axioms(db_instance))
    sentence = conjoin(conjuncts)
    extra = encoder.constants(database=db_instance, log=entries)
    result = decide_bsr(sentence, extra_constants=tuple(sorted(extra, key=repr)))
    if not result.satisfiable:
        return LogValidityResult(valid=False, stats=result.stats)

    assert result.model is not None
    witness = decode_input_sequence(transducer, len(entries), result.model)
    witness_db = db_instance
    if witness_db is None:
        witness_db = decode_database(transducer, result.model)
    if replay:
        run = transducer.run(witness_db, witness)
        if list(run.logs) != entries:
            raise VerificationError(
                "internal error: decoded witness does not reproduce the "
                "log (encoder/semantics mismatch)"
            )
    return LogValidityResult(
        valid=True,
        witness_inputs=witness,
        witness_database=witness_db if database is None else None,
        stats=result.stats,
    )
