"""Shared transducer-to-FO encoding.

All of the paper's decision procedures view an n-step run of a Spocus
transducer as a first-order structure over an *extended schema* that
replicates each input relation once per step (proof of Theorem 3.1):
``R`` becomes ``R@1 … R@n``, and the state relation ``past-R`` at step
``j`` expands to the disjunction ``R@1 ∨ … ∨ R@(j-1)``.  Output
relations are not part of the structure at all: an output atom is
*defined* by the disjunction of its rules' bodies, with non-head body
variables existentially quantified.

:class:`RunEncoder` produces these formulas; the individual procedures
assemble them into Bernays-Schoenfinkel sentences and call
:func:`repro.logic.bsr.decide_bsr`.  :func:`decode_input_sequence`
converts a satisfying model back into a concrete input sequence so the
procedures can *replay* their witnesses through the real transducer.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.core.spocus import PAST_PREFIX, SpocusTransducer
from repro.datalog.ast import (
    Atom,
    Constant,
    Inequality,
    NegatedAtom,
    PositiveAtom,
    Rule,
    Term,
    Variable,
)
from repro.errors import VerificationError
from repro.logic.fol import (
    BOTTOM,
    Eq,
    Formula,
    Implies,
    Not,
    Rel,
    conjoin,
    disjoin,
)
from repro.logic.fol import exists as fol_exists
from repro.logic.fol import forall as fol_forall
from repro.logic.structures import Structure
from repro.relalg.instance import Instance

STEP_SEPARATOR = "@"


def step_relation(name: str, step: int) -> str:
    """The replicated relation name for input ``name`` at 1-based ``step``."""
    return f"{name}{STEP_SEPARATOR}{step}"


def split_step_relation(name: str) -> tuple[str, int] | None:
    """Inverse of :func:`step_relation`; None if not a step relation."""
    if STEP_SEPARATOR not in name:
        return None
    base, _, suffix = name.rpartition(STEP_SEPARATOR)
    if not suffix.isdigit():
        return None
    return base, int(suffix)


class RunEncoder:
    """Encodes n-step runs of a Spocus transducer as FO formulas.

    Steps are 1-based, matching the paper.  The encoder is pure: it
    only builds formulas; deciding them is the caller's business.
    """

    def __init__(self, transducer: SpocusTransducer, steps: int) -> None:
        if steps < 1:
            raise VerificationError("a run must have at least one step")
        self._transducer = transducer
        self._steps = steps
        self._fresh_counter = itertools.count()

    @property
    def transducer(self) -> SpocusTransducer:
        return self._transducer

    @property
    def steps(self) -> int:
        return self._steps

    # -- fresh variables -----------------------------------------------------------

    def fresh_variable(self, base: str = "u") -> Variable:
        return Variable(f"{base}%{next(self._fresh_counter)}")

    def fresh_variables(self, count: int, base: str = "u") -> tuple[Variable, ...]:
        return tuple(self.fresh_variable(base) for _ in range(count))

    # -- literal translation ---------------------------------------------------------

    def input_atom(self, name: str, terms: Sequence[Term], step: int) -> Formula:
        self._check_step(step)
        return Rel(step_relation(name, step), tuple(terms))

    def past_formula(
        self,
        name: str,
        terms: Sequence[Term],
        step: int,
        inclusive: bool = False,
    ) -> Formula:
        """``past-R`` at ``step``: R was input at some earlier step.

        With ``inclusive=True`` the current step counts as well: that is
        the state *after* the transition (S_i), which is how
        T_past-input sentences are evaluated (Theorem 3.3), whereas rule
        bodies see the state *before* it (S_{i-1}).
        """
        self._check_step(step)
        limit = step + 1 if inclusive else step
        return disjoin(
            Rel(step_relation(name, i), tuple(terms)) for i in range(1, limit)
        )

    def database_atom(self, name: str, terms: Sequence[Term]) -> Formula:
        return Rel(name, tuple(terms))

    def visible_literal(self, literal, step: int) -> Formula:
        """Translate a rule-body literal at a given step.

        Handles positive/negated atoms over input, state (``past-``),
        and database relations, plus inequalities -- exactly the literal
        forms Spocus rule bodies admit.
        """
        if isinstance(literal, Inequality):
            return Not(Eq(literal.left, literal.right))
        if isinstance(literal, (PositiveAtom, NegatedAtom)):
            formula = self._atom_formula(literal.atom, step)
            if isinstance(literal, NegatedAtom):
                return Not(formula)
            return formula
        raise VerificationError(f"untranslatable literal: {literal!r}")

    def _atom_formula(self, atom: Atom, step: int) -> Formula:
        schema = self._transducer.schema
        name = atom.predicate
        if name in schema.inputs:
            return self.input_atom(name, atom.terms, step)
        if name in schema.state:
            base = name[len(PAST_PREFIX):]
            return self.past_formula(base, atom.terms, step)
        if name in schema.database:
            return self.database_atom(name, atom.terms)
        raise VerificationError(
            f"atom {atom} is not over input/state/database relations"
        )

    def body_formula(self, rule: Rule, step: int) -> Formula:
        """The conjunction of a rule body's literals at ``step``."""
        return conjoin(
            self.visible_literal(literal, step) for literal in rule.body
        )

    # -- output definitions ------------------------------------------------------------

    def output_formula(
        self, predicate: str, terms: Sequence[Term], step: int
    ) -> Formula:
        """The defining formula of output atom ``predicate(terms)`` at ``step``.

        The formula is the disjunction, over the rules for ``predicate``,
        of the rule body with head variables unified against ``terms``
        and remaining body variables existentially quantified (the
        formula φ in the proof of Theorem 3.1).
        """
        schema = self._transducer.schema
        if predicate not in schema.outputs:
            raise VerificationError(f"{predicate!r} is not an output relation")
        rules = self._transducer.rules_for(predicate)
        disjuncts = []
        for rule in rules:
            disjuncts.append(self._rule_instance(rule, tuple(terms), step))
        return disjoin(disjuncts)

    def _rule_instance(
        self, rule: Rule, terms: tuple[Term, ...], step: int
    ) -> Formula:
        # Rename all rule variables apart from the provided terms.
        renaming: dict[Variable, Variable] = {}
        for variable in sorted(
            rule.head_variables() | rule.body_variables(), key=str
        ):
            renaming[variable] = self.fresh_variable(variable.name.lower())

        def rename_term(term: Term) -> Term:
            if isinstance(term, Variable):
                return renaming[term]
            return term

        equalities: list[Formula] = []
        binding: dict[Variable, Term] = {}
        for head_term, provided in zip(rule.head.terms, terms):
            if isinstance(head_term, Variable):
                renamed = renaming[head_term]
                if renamed in binding:
                    equalities.append(Eq(binding[renamed], provided))
                else:
                    binding[renamed] = provided
            else:  # constant in the head
                equalities.append(Eq(head_term, provided))

        def substitute_literal(literal):
            if isinstance(literal, Inequality):
                return Inequality(
                    self._apply(rename_term(literal.left), binding),
                    self._apply(rename_term(literal.right), binding),
                )
            atom = literal.atom
            new_terms = tuple(
                self._apply(rename_term(t), binding) for t in atom.terms
            )
            new_atom = Atom(atom.predicate, new_terms)
            return (
                PositiveAtom(new_atom)
                if isinstance(literal, PositiveAtom)
                else NegatedAtom(new_atom)
            )

        new_body = tuple(substitute_literal(l) for l in rule.body)
        body = conjoin(
            [self.visible_literal(l, step) for l in new_body] + equalities
        )
        free = body.free_variables() - {
            t for t in terms if isinstance(t, Variable)
        }
        # Quantify only the renamed rule variables, not the caller's.
        rule_vars = set(renaming.values())
        return fol_exists(sorted(free & rule_vars, key=str), body)

    @staticmethod
    def _apply(term: Term, binding: dict[Variable, Term]) -> Term:
        if isinstance(term, Variable) and term in binding:
            return binding[term]
        return term

    # -- exact-content axioms -------------------------------------------------------------

    def exact_content(
        self,
        membership: "callable",
        arity: int,
        rows: Iterable[tuple],
    ) -> Formula:
        """Axioms forcing a defined relation to equal ``rows``.

        ``membership(terms)`` must return the formula asserting that the
        tuple ``terms`` belongs to the relation.  Produces the
        conjunction of one ∃*FO membership sentence per tuple and one
        ∀*FO inclusion sentence, as in the proof of Theorem 3.1.
        """
        rows = [tuple(r) for r in rows]
        conjuncts: list[Formula] = []
        for row in rows:
            conjuncts.append(
                membership(tuple(Constant(value) for value in row))
            )
        xs = self.fresh_variables(arity, "x")
        tuple_cases = disjoin(
            conjoin(Eq(x, Constant(value)) for x, value in zip(xs, row))
            for row in rows
        )
        inclusion = fol_forall(xs, Implies(membership(xs), tuple_cases))
        if arity == 0:
            # ∀ over zero variables: the implication itself.
            inclusion = Implies(membership(()), tuple_cases if rows else BOTTOM)
        conjuncts.append(inclusion)
        return conjoin(conjuncts)

    def input_content_axiom(
        self, name: str, step: int, rows: Iterable[tuple]
    ) -> Formula:
        """Force input relation ``name`` at ``step`` to equal ``rows``."""
        arity = self._transducer.schema.inputs.arity(name)
        return self.exact_content(
            lambda terms: self.input_atom(name, terms, step), arity, rows
        )

    def input_membership_axiom(
        self, name: str, step: int, rows: Iterable[tuple]
    ) -> Formula:
        """Force ``rows`` ⊆ input relation ``name`` at ``step`` (no upper bound)."""
        return conjoin(
            self.input_atom(
                name, tuple(Constant(v) for v in row), step
            )
            for row in rows
        )

    def output_content_axiom(
        self, name: str, step: int, rows: Iterable[tuple]
    ) -> Formula:
        """Force output relation ``name`` at ``step`` to equal ``rows``."""
        arity = self._transducer.schema.outputs.arity(name)
        return self.exact_content(
            lambda terms: self.output_formula(name, terms, step), arity, rows
        )

    def database_axioms(self, database: Instance) -> Formula:
        """Fix every database relation to its instance content."""
        conjuncts = []
        for rel in self._transducer.schema.database:
            conjuncts.append(
                self.exact_content(
                    lambda terms, name=rel.name: self.database_atom(name, terms),
                    rel.arity,
                    database[rel.name],
                )
            )
        return conjoin(conjuncts)

    # -- log axioms ---------------------------------------------------------------------

    def log_axioms(self, log: Sequence[Instance]) -> Formula:
        """The sentence "the run's log equals ``log``" (Theorem 3.1).

        ``log`` must have exactly ``self.steps`` entries over the
        transducer's log schema.
        """
        schema = self._transducer.schema
        if len(log) != self._steps:
            raise VerificationError(
                f"log has {len(log)} steps, encoder was built for "
                f"{self._steps}"
            )
        conjuncts: list[Formula] = []
        for index, entry in enumerate(log):
            step = index + 1
            for name in schema.log:
                rows = entry[name]
                if name in schema.inputs:
                    conjuncts.append(
                        self.input_content_axiom(name, step, rows)
                    )
                else:
                    conjuncts.append(
                        self.output_content_axiom(name, step, rows)
                    )
        return conjoin(conjuncts)

    # -- miscellany ---------------------------------------------------------------------

    def error_free_axioms(self, error_relation: str = "error") -> Formula:
        """No ``error`` output at any step (negations of rule bodies)."""
        schema = self._transducer.schema
        if error_relation not in schema.outputs:
            return conjoin(())
        conjuncts: list[Formula] = []
        for step in range(1, self._steps + 1):
            for rule in self._transducer.rules_for(error_relation):
                body = self.body_formula(rule, step)
                variables = sorted(body.free_variables(), key=str)
                conjuncts.append(fol_forall(variables, Not(body)))
        return conjoin(conjuncts)

    def constants(
        self,
        database: Instance | None = None,
        log: Sequence[Instance] | None = None,
    ) -> set:
        """The constants relevant to an encoding (program ∪ db ∪ log)."""
        values: set = set(self._transducer.output_program.constants())
        if database is not None:
            values |= database.active_domain()
        if log is not None:
            for entry in log:
                values |= entry.active_domain()
        return values

    def _check_step(self, step: int) -> None:
        if not 1 <= step <= self._steps:
            raise VerificationError(
                f"step {step} outside encoded range 1..{self._steps}"
            )


def decode_input_sequence(
    transducer: SpocusTransducer, steps: int, model: Structure
) -> list[Instance]:
    """Extract the witness input sequence from a BSR model.

    Relations named ``R@j`` in the model become the content of input
    ``R`` at step ``j``; absent relations are empty.
    """
    schema = transducer.schema
    sequence = []
    for step in range(1, steps + 1):
        data: dict[str, frozenset[tuple]] = {}
        for rel in schema.inputs:
            data[rel.name] = frozenset(
                model.tuples(step_relation(rel.name, step))
            )
        sequence.append(Instance(schema.inputs, data))
    return sequence


def decode_database(
    transducer: SpocusTransducer, model: Structure
) -> Instance:
    """Extract the database relations from a BSR model (unknown-db mode)."""
    schema = transducer.schema
    data = {
        rel.name: frozenset(model.tuples(rel.name))
        for rel in schema.database
    }
    return Instance(schema.database, data)
