"""Temporal properties of runs (Theorem 3.3).

The class T_past-input consists of sentences ∀x̄ φ(x̄) where φ is a
Boolean combination of literals over output, database, and state
relations.  A run satisfies the sentence if it holds at every stage,
with ``past-R(ū)`` reading "R(ū) was input at some earlier stage".

The canonical example (Section 2.1): "deliver(x) cannot be output
unless pay(x, y) has been previously input, where price(x, y) is in the
database"::

    ∀x ∀y [ (deliver(x) ∧ price(x, y)) → past-pay(x, y) ]

Verification reduces to unsatisfiability of the negation on two-step
runs: any reachable (state, input) pair of any run is realized at the
second step of some two-step run (same collapsing lemma as
Theorem 3.2), with the *violating stage's own input* being the second
step's input and the accumulated earlier inputs the first step's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.spocus import PAST_PREFIX, SpocusTransducer
from repro.errors import VerificationError
from repro.logic.bsr import GroundingStats, decide_bsr
from repro.logic.fol import (
    And,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Rel,
    Top,
    conjoin,
)
from repro.logic.prenex import to_nnf
from repro.relalg.instance import Instance
from repro.verify.deprecation import warn_legacy
from repro.verify.encoder import (
    RunEncoder,
    decode_database,
    decode_input_sequence,
)


def _translate(formula: Formula, encoder: RunEncoder, step: int) -> Formula:
    """Translate a T_past-input formula to the replicated-run schema.

    Output atoms become their defining formulas at ``step``; ``past-R``
    atoms become disjunctions over earlier steps; database atoms stay.
    Boolean structure and quantifiers are preserved.
    """
    schema = encoder.transducer.schema
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Eq):
        return formula
    if isinstance(formula, Rel):
        name = formula.predicate
        if name in schema.outputs:
            return encoder.output_formula(name, formula.terms, step)
        if name in schema.state:
            # T_past-input sentences see the state *after* the stage
            # (S_i), so the current input counts as "past" -- the
            # paper's "sometimepast" includes the present stage.
            return encoder.past_formula(
                name[len(PAST_PREFIX):], formula.terms, step, inclusive=True
            )
        if name in schema.database:
            return formula
        raise VerificationError(
            f"T_past-input literal over unknown relation {name!r} "
            "(allowed: output, state, database)"
        )
    if isinstance(formula, Not):
        return Not(_translate(formula.operand, encoder, step))
    if isinstance(formula, And):
        return conjoin(_translate(f, encoder, step) for f in formula.operands)
    if isinstance(formula, Or):
        from repro.logic.fol import disjoin

        return disjoin(_translate(f, encoder, step) for f in formula.operands)
    if isinstance(formula, Implies):
        return Implies(
            _translate(formula.antecedent, encoder, step),
            _translate(formula.consequent, encoder, step),
        )
    if isinstance(formula, Iff):
        return Iff(
            _translate(formula.left, encoder, step),
            _translate(formula.right, encoder, step),
        )
    if isinstance(formula, Forall):
        return Forall(
            formula.variables, _translate(formula.body, encoder, step)
        )
    if isinstance(formula, Exists):
        return Exists(
            formula.variables, _translate(formula.body, encoder, step)
        )
    raise VerificationError(f"untranslatable node: {formula!r}")


@dataclass
class TemporalVerdict:
    """Outcome of :func:`holds_on_all_runs`.

    When the property fails, ``counterexample_inputs`` is a two-step
    input sequence whose run violates it at the second stage.
    """

    holds: bool
    counterexample_inputs: list[Instance] | None = None
    stats: GroundingStats = field(default_factory=GroundingStats)
    counterexample_database: Instance | None = None


def holds_on_all_runs(
    transducer: SpocusTransducer,
    property_formula: Formula,
    database: dict | Instance | None = None,
    replay: bool = True,
) -> TemporalVerdict:
    """Deprecated seed-era entry point; see :func:`check_temporal_property`."""
    warn_legacy("holds_on_all_runs", "TemporalProperty")
    return check_temporal_property(
        transducer, property_formula, database, replay=replay
    )


def check_temporal_property(
    transducer: SpocusTransducer,
    property_formula: Formula,
    database: dict | Instance | None = None,
    replay: bool = True,
) -> TemporalVerdict:
    """Decide whether every run satisfies a T_past-input sentence.

    With ``database=None`` the property is checked over *all* databases
    (the relations are left uninterpreted), which is the stronger,
    schema-level guarantee; passing a concrete database restricts the
    claim to that instance.  On failure in unknown-database mode, the
    witness database making the counterexample run possible is decoded
    into ``counterexample_database``.

    This is the engine behind the
    :class:`repro.verify.api.TemporalProperty` spec; prefer checking
    specs through a :class:`~repro.verify.api.Verifier`.
    """
    encoder = RunEncoder(transducer, 2)
    violation = _translate(Not(property_formula), encoder, 2)
    conjuncts: list[Formula] = [violation]
    db_instance: Instance | None = None
    if database is not None:
        db_instance = transducer.coerce_database(database)
        conjuncts.append(encoder.database_axioms(db_instance))
    sentence = to_nnf(conjoin(conjuncts))
    extra = encoder.constants(database=db_instance)
    extra |= {v for v in property_formula.constants()}
    result = decide_bsr(sentence, extra_constants=tuple(sorted(extra, key=repr)))
    if not result.satisfiable:
        return TemporalVerdict(True, stats=result.stats)
    assert result.model is not None
    witness = decode_input_sequence(transducer, 2, result.model)
    witness_db = db_instance
    if witness_db is None:
        witness_db = decode_database(transducer, result.model)
    if replay and db_instance is not None:
        run = transducer.run(db_instance, witness)
        if check_run_satisfies(transducer, run, property_formula, db_instance):
            raise VerificationError(
                "internal error: decoded counterexample does not violate "
                "the property"
            )
    return TemporalVerdict(
        False,
        witness,
        stats=result.stats,
        counterexample_database=witness_db if db_instance is None else None,
    )


def check_run_satisfies(
    transducer: SpocusTransducer,
    run,
    property_formula: Formula,
    database: dict | Instance,
) -> bool:
    """Operationally check a T_past-input property on a concrete run.

    Used to validate counterexamples and in tests: evaluates the
    property at every stage with the stage's output, the database, and
    the state *before* the stage (``past-R`` = inputs strictly earlier).
    """
    db = transducer.coerce_database(database)
    from repro.logic.structures import Structure

    nnf = to_nnf(property_formula)
    for index in range(len(run.inputs)):
        relations: dict[str, set[tuple]] = {}
        for rel in transducer.schema.database:
            relations[rel.name] = set(db[rel.name])
        for rel in transducer.schema.outputs:
            relations[rel.name] = set(run.outputs[index][rel.name])
        for rel in transducer.schema.inputs:
            # State after the stage: inputs up to and including this one.
            earlier: set[tuple] = set()
            for j in range(index + 1):
                earlier |= set(run.inputs[j][rel.name])
            relations[PAST_PREFIX + rel.name] = earlier
        domain = set()
        for rows in relations.values():
            for row in rows:
                domain.update(row)
        domain |= {v for v in property_formula.constants()}
        if not domain:
            domain = {"@default"}
        structure = Structure.of(domain, relations)
        if not structure.evaluate(nnf):
            return False
    return True
