"""Executable undecidability constructions (Prop 3.1 and Theorem 3.4).

Undecidability proofs cannot be "run", but their *reductions* can.  This
module implements both reductions from the implication problem for
functional + inclusion dependencies (undecidable by Chandra-Vardi 1985
and Mitchell 1983):

* :func:`projection_reduction` -- Proposition 3.1: a transducer with
  projection state rules whose log ``(∅, {violG})`` is valid iff
  F ⊭ G;
* :func:`containment_reduction` -- Theorem 3.4: a pair (T_{F,G}, T) of
  genuine Spocus transducers with T_{F,G} ⊑ T iff F ⊨ G.

The experiment harness validates the reductions on instances where
implication is decidable by independent means (FD-only sets via
Armstrong closure, mixed sets with terminating chase).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.spocus import ExtendedStateTransducer, SpocusTransducer
from repro.datalog.ast import (
    Atom,
    Inequality,
    Literal,
    NegatedAtom,
    PositiveAtom,
    Program,
    Rule,
    Variable,
)
from repro.errors import VerificationError
from repro.relalg.dependencies import (
    Dependency,
    FunctionalDependency,
    InclusionDependency,
)
from repro.relalg.instance import Instance
from repro.relalg.schema import DatabaseSchema, RelationSchema

RELATION = "R"


def _vars(prefix: str, count: int) -> tuple[Variable, ...]:
    return tuple(Variable(f"{prefix.upper()}{i}") for i in range(count))


def _projection_name(positions: Sequence[int]) -> str:
    return RELATION + "".join(str(p + 1) for p in positions)


def _incd_projections(deps: Iterable[Dependency]) -> list[tuple[int, ...]]:
    """The distinct rhs position tuples of the IncDs in ``deps``."""
    seen: dict[tuple[int, ...], None] = {}
    for dep in deps:
        if isinstance(dep, InclusionDependency):
            if dep.relation != RELATION or dep.target != RELATION:
                raise VerificationError(
                    "the reductions use a single relation R"
                )
            seen.setdefault(tuple(dep.rhs))
    return list(seen)


def _violation_rules(
    head: str,
    deps: Sequence[Dependency],
    arity: int,
    past_projection: bool,
) -> list[Rule]:
    """Rules deriving ``head`` when some dependency in ``deps`` fails.

    ``past_projection`` selects the naming convention for the stored
    projections: Proposition 3.1 stores projections in state relations
    ``past-Rj…`` computed by projection rules, while Theorem 3.4 stores
    *input* relations ``Rj…`` whose cumulative state is ``past-Rj…``
    (same state name; the flag is kept for documentation value).
    """
    del past_projection
    rules: list[Rule] = []
    head_atom = Atom(head, ())
    xs = _vars("x", arity)
    ys = _vars("y", arity)
    for dep in deps:
        if isinstance(dep, FunctionalDependency):
            # Two past tuples agreeing on lhs, differing on rhs.  The
            # agreement is expressed by sharing variables.
            second = list(ys)
            for position in dep.lhs:
                second[position] = xs[position]
            body: list[Literal] = [
                PositiveAtom(Atom("past-" + RELATION, xs)),
                PositiveAtom(Atom("past-" + RELATION, tuple(second))),
                Inequality(xs[dep.rhs], second[dep.rhs]),
            ]
            rules.append(Rule(head_atom, tuple(body)))
        elif isinstance(dep, InclusionDependency):
            projection = "past-" + _projection_name(dep.rhs)
            body = [
                PositiveAtom(Atom("past-" + RELATION, xs)),
                NegatedAtom(
                    Atom(projection, tuple(xs[i] for i in dep.lhs))
                ),
            ]
            rules.append(Rule(head_atom, tuple(body)))
        else:
            raise VerificationError(f"unsupported dependency: {dep!r}")
    return rules


# ---------------------------------------------------------------------------
# Proposition 3.1: log validity with projection state rules
# ---------------------------------------------------------------------------


def projection_reduction(
    arity: int,
    f_deps: Sequence[Dependency],
    g_deps: Sequence[Dependency],
) -> ExtendedStateTransducer:
    """The Proposition 3.1 transducer for dependency sets F and G.

    Input ``R``; state ``past-R`` plus one projection relation per IncD
    right-hand side; outputs (and log) ``violF``/``violG``.  The log
    ``(∅, {violG})`` is valid iff F does not imply G.
    """
    projections = _incd_projections(list(f_deps) + list(g_deps))
    xs = _vars("x", arity)

    state_relations = [RelationSchema("past-" + RELATION, arity)]
    state_rules = [
        Rule(Atom("past-" + RELATION, xs), (PositiveAtom(Atom(RELATION, xs)),),
             cumulative=True)
    ]
    for positions in projections:
        name = "past-" + _projection_name(positions)
        state_relations.append(RelationSchema(name, len(positions)))
        state_rules.append(
            Rule(
                Atom(name, tuple(xs[j] for j in positions)),
                (PositiveAtom(Atom(RELATION, xs)),),
                cumulative=True,
            )
        )

    output_rules = _violation_rules("violF", f_deps, arity, True)
    output_rules += _violation_rules("violG", g_deps, arity, True)

    return ExtendedStateTransducer(
        inputs=DatabaseSchema([RelationSchema(RELATION, arity)]),
        state=DatabaseSchema(state_relations),
        outputs=DatabaseSchema.of(violF=0, violG=0),
        database=DatabaseSchema(()),
        state_program=Program(tuple(state_rules)),
        output_program=Program(tuple(output_rules)),
        log=("violF", "violG"),
    )


def proposition_31_log_valid(
    transducer: ExtendedStateTransducer,
    arity: int,
    domain_size: int = 3,
    max_tuples: int = 3,
) -> tuple[bool, list[tuple] | None]:
    """Bounded search: is the log ``(∅, {violG})`` valid?

    Enumerates instances of R over a bounded domain, runs the transducer
    on (I, ∅), and tests whether the produced log is exactly
    ``(∅, {violG})``.  Exact within the bounds; the general question is
    undecidable (that is the proposition's point).
    """
    domain = [f"a{i}" for i in range(domain_size)]
    pool = [tuple(v) for v in itertools.product(domain, repeat=arity)]
    for count in range(1, max_tuples + 1):
        for rows in itertools.combinations(pool, count):
            run = transducer.run({}, [{RELATION: set(rows)}, {}])
            logs = run.logs
            first_ok = all(not logs[0][n] for n in ("violF", "violG"))
            second_ok = (
                not logs[1]["violF"] and logs[1]["violG"] == frozenset({()})
            )
            if first_ok and second_ok:
                return True, list(rows)
    return False, None


# ---------------------------------------------------------------------------
# Theorem 3.4: containment of genuine Spocus transducers
# ---------------------------------------------------------------------------


@dataclass
class ContainmentReduction:
    """The two transducers of the Theorem 3.4 reduction."""

    t_fg: SpocusTransducer
    simulator: SpocusTransducer
    arity: int
    projections: list[tuple[int, ...]]


def containment_reduction(
    arity: int,
    f_deps: Sequence[Dependency],
    g_deps: Sequence[Dependency],
) -> ContainmentReduction:
    """Build (T_{F,G}, T) with T_{F,G} ⊑ T iff F ⊨ G (Theorem 3.4)."""
    projections = _incd_projections(list(f_deps) + list(g_deps))
    xs = _vars("x", arity)
    ys = _vars("y", arity)

    inputs = [RelationSchema(RELATION, arity)]
    for positions in projections:
        inputs.append(RelationSchema(_projection_name(positions), len(positions)))
    for i in range(arity):
        inputs.append(RelationSchema(f"A{i + 1}", 1))

    rules: list[Rule] = []
    rules += _violation_rules("violF", f_deps, arity, False)
    rules += _violation_rules("violG", g_deps, arity, False)

    error_head = Atom("error", ())
    # (1) each A_i holds at most one value per step
    for i in range(arity):
        rules.append(
            Rule(
                error_head,
                (
                    PositiveAtom(Atom(f"A{i + 1}", (xs[0],))),
                    PositiveAtom(Atom(f"A{i + 1}", (ys[0],))),
                    Inequality(xs[0], ys[0]),
                ),
            )
        )
    # (2) an R tuple's coordinates must be registered in the A_i
    for i in range(arity):
        rules.append(
            Rule(
                error_head,
                (
                    PositiveAtom(Atom(RELATION, xs)),
                    NegatedAtom(Atom(f"A{i + 1}", (xs[i],))),
                ),
            )
        )
    # (3) registered coordinates must form an input R tuple
    rules.append(
        Rule(
            error_head,
            tuple(
                PositiveAtom(Atom(f"A{i + 1}", (xs[i],)))
                for i in range(arity)
            )
            + (NegatedAtom(Atom(RELATION, xs)),),
        )
    )
    # (4) the projections of the R tuple must be input alongside it
    for positions in projections:
        rules.append(
            Rule(
                error_head,
                (
                    PositiveAtom(Atom(RELATION, xs)),
                    NegatedAtom(
                        Atom(
                            _projection_name(positions),
                            tuple(xs[j] for j in positions),
                        )
                    ),
                ),
            )
        )
    # (5) each projection relation holds at most one tuple per step
    for positions in projections:
        width = len(positions)
        us = _vars("u", width)
        vs = _vars("v", width)
        for k in range(width):
            rules.append(
                Rule(
                    error_head,
                    (
                        PositiveAtom(Atom(_projection_name(positions), us)),
                        PositiveAtom(Atom(_projection_name(positions), vs)),
                        Inequality(us[k], vs[k]),
                    ),
                )
            )
    # ok: every A_i non-empty this step
    rules.append(
        Rule(
            Atom("ok", ()),
            tuple(
                PositiveAtom(Atom(f"A{i + 1}", (xs[i],)))
                for i in range(arity)
            ),
        )
    )

    t_fg = SpocusTransducer(
        DatabaseSchema(inputs),
        DatabaseSchema.of(violF=0, violG=0, ok=0, error=0),
        DatabaseSchema(()),
        Program(tuple(rules)),
        log=("violF", "violG", "ok", "error"),
    )

    simulator = SpocusTransducer(
        DatabaseSchema.of(simF=0, simG=0, simGp=0, simerror=0, simnotok=0),
        DatabaseSchema.of(violF=0, violG=0, ok=0, error=0),
        DatabaseSchema(()),
        """
        violF :- simG;
        violG :- simG;
        violF :- simF;
        error :- simerror;
        violG :- past-simerror, simGp;
        ok :- NOT simnotok;
        violG :- past-simnotok, simGp;
        """,
        log=("violF", "violG", "ok", "error"),
    )
    return ContainmentReduction(t_fg, simulator, arity, projections)


def wellformed_sequence(
    reduction: ContainmentReduction, rows: Sequence[tuple]
) -> list[dict[str, set[tuple]]]:
    """The well-formed input sequence inserting ``rows`` one at a time.

    Each step inputs one R tuple together with its projections and its
    coordinates in the A_i registers; per the proof, well-formed runs
    are exactly those where T_{F,G} outputs ``ok`` at every step and
    never ``error``.  A final repeat of the last tuple is appended so
    the violation rules (which read only the accumulated past) observe
    the complete instance.
    """
    steps: list[dict[str, set[tuple]]] = []
    for row in list(rows) + [rows[-1]] if rows else []:
        step: dict[str, set[tuple]] = {RELATION: {tuple(row)}}
        for positions in reduction.projections:
            step[_projection_name(positions)] = {
                tuple(row[j] for j in positions)
            }
        for i, value in enumerate(row):
            step[f"A{i + 1}"] = {(value,)}
        steps.append(step)
    return steps


def mimic_inputs_for_log(
    logs: Sequence[Instance],
) -> list[dict[str, set[tuple]]]:
    """Inputs making the simulator T reproduce a well-formed T_{F,G} log.

    Valid only when every step contains ``ok``, no ``error``, and
    ``violG`` never appears without ``violF`` (the F ⊨ G pattern).
    """
    inputs: list[dict[str, set[tuple]]] = []
    for entry in logs:
        has_viol_f = bool(entry["violF"])
        has_viol_g = bool(entry["violG"])
        if not entry["ok"] or entry["error"]:
            raise VerificationError("log is not well-formed")
        if has_viol_g and not has_viol_f:
            raise VerificationError(
                "violG without violF: not mimicable on well-formed logs"
            )
        if has_viol_g:
            inputs.append({"simG": {()}})
        elif has_viol_f:
            inputs.append({"simF": {()}})
        else:
            inputs.append({})
    return inputs
