"""Goal reachability (Theorem 3.2) and the progress variant.

A *goal* is a sentence ∃x̄ (A₁ ∧ … ∧ A_k) where each Aᵢ is a positive or
negative literal over an output relation.  Reachability asks whether
some run of the transducer satisfies the goal in its *last* output.

The key lemma (proof of Theorem 3.2): since Spocus outputs depend only
on the current input, the database, and the accumulated past, the last
output of any run equals the last output of a two-step run whose first
input is the union of all earlier inputs.  So only runs of length two
need be considered, and the question reduces to a BSR sentence over two
copies of the input schema.

The partial-run variant ("is the goal still reachable after this
prefix?") encodes the prefix's accumulated inputs as a *lower bound* on
the first step -- the continuation may add arbitrary further inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.spocus import SpocusTransducer
from repro.datalog.ast import Constant, Variable
from repro.errors import VerificationError
from repro.logic.bsr import GroundingStats, decide_bsr
from repro.logic.fol import Formula, Not, conjoin
from repro.logic.fol import exists as fol_exists
from repro.relalg.instance import Instance
from repro.verify.deprecation import warn_legacy
from repro.verify.encoder import RunEncoder, decode_input_sequence


@dataclass(frozen=True)
class Goal:
    """A reachability goal: ∃x̄ of a conjunction of output literals.

    ``positive`` and ``negative`` are lists of (relation, terms) pairs;
    terms may mix :class:`Variable` and :class:`Constant`.  All
    variables are implicitly existentially quantified.
    """

    positive: tuple[tuple[str, tuple], ...] = ()
    negative: tuple[tuple[str, tuple], ...] = ()

    @classmethod
    def atoms(cls, **facts) -> "Goal":
        """Goal from keyword ground facts: ``Goal.atoms(deliver=('time',))``."""
        positive = []
        for name, row in facts.items():
            positive.append(
                (name, tuple(Constant(v) for v in row))
            )
        return cls(tuple(positive))

    def variables(self) -> list[Variable]:
        seen: dict[Variable, None] = {}
        for _name, terms in self.positive + self.negative:
            for term in terms:
                if isinstance(term, Variable):
                    seen.setdefault(term)
        return list(seen)

    def formula_at(self, encoder: RunEncoder, step: int) -> Formula:
        """The goal instantiated at a run step via output definitions."""
        literals: list[Formula] = []
        for name, terms in self.positive:
            literals.append(encoder.output_formula(name, terms, step))
        for name, terms in self.negative:
            literals.append(Not(encoder.output_formula(name, terms, step)))
        return fol_exists(self.variables(), conjoin(literals))


@dataclass
class ReachabilityResult:
    reachable: bool
    witness_inputs: list[Instance] | None = None
    stats: GroundingStats = field(default_factory=GroundingStats)


def is_goal_reachable(
    transducer: SpocusTransducer,
    database: dict | Instance,
    goal: Goal,
    prefix: Sequence[dict | Instance] = (),
    replay: bool = True,
) -> ReachabilityResult:
    """Deprecated seed-era entry point; see :func:`check_goal_reachability`."""
    warn_legacy("is_goal_reachable", "GoalReachability")
    return check_goal_reachability(
        transducer, database, goal, prefix=prefix, replay=replay
    )


def check_goal_reachability(
    transducer: SpocusTransducer,
    database: dict | Instance,
    goal: Goal,
    prefix: Sequence[dict | Instance] = (),
    replay: bool = True,
) -> ReachabilityResult:
    """Decide whether ``goal`` is reachable, optionally after ``prefix``.

    With a non-empty prefix this answers the paper's *progress*
    question: can the goal still be attained from the state the prefix
    has reached?

    This is the engine behind the
    :class:`repro.verify.api.GoalReachability` spec; prefer checking
    specs through a :class:`~repro.verify.api.Verifier`.
    """
    db = transducer.coerce_database(database)
    encoder = RunEncoder(transducer, 2)
    conjuncts: list[Formula] = [encoder.database_axioms(db)]

    accumulated: dict[str, set[tuple]] = {
        rel.name: set() for rel in transducer.schema.inputs
    }
    for raw in prefix:
        instance = transducer.coerce_input(raw)
        for rel in transducer.schema.inputs:
            accumulated[rel.name] |= set(instance[rel.name])
    for name, rows in accumulated.items():
        if rows:
            conjuncts.append(encoder.input_membership_axiom(name, 1, rows))

    conjuncts.append(goal.formula_at(encoder, 2))
    sentence = conjoin(conjuncts)
    extra = encoder.constants(database=db)
    for rows in accumulated.values():
        for row in rows:
            extra |= set(row)
    result = decide_bsr(sentence, extra_constants=tuple(sorted(extra, key=repr)))
    if not result.satisfiable:
        return ReachabilityResult(False, stats=result.stats)
    assert result.model is not None
    witness = decode_input_sequence(transducer, 2, result.model)
    if replay:
        run = transducer.run(db, witness)
        if not _goal_holds(goal, run.last_output):
            raise VerificationError(
                "internal error: decoded witness does not satisfy the goal"
            )
    return ReachabilityResult(True, witness, stats=result.stats)


def _goal_holds(goal: Goal, output: Instance) -> bool:
    """Evaluate a goal against a concrete output instance."""
    domain = set(output.active_domain())
    for _name, terms in goal.positive + goal.negative:
        for term in terms:
            if isinstance(term, Constant):
                domain.add(term.value)
    variables = goal.variables()

    def check(binding: dict[Variable, object]) -> bool:
        for name, terms in goal.positive:
            row = tuple(
                term.value if isinstance(term, Constant) else binding[term]
                for term in terms
            )
            if row not in output[name]:
                return False
        for name, terms in goal.negative:
            row = tuple(
                term.value if isinstance(term, Constant) else binding[term]
                for term in terms
            )
            if row in output[name]:
                return False
        return True

    if not variables:
        return check({})

    def search(index: int, binding: dict[Variable, object]) -> bool:
        if index == len(variables):
            return check(binding)
        for value in domain:
            binding[variables[index]] = value
            if search(index + 1, binding):
                return True
        del binding[variables[index]]
        return False

    return bool(domain) and search(0, {})
