"""Log containment and equivalence of Spocus transducers.

Containment is undecidable in general (Theorem 3.4; the construction
lives in :mod:`repro.verify.undecidable`), but decidable in the
customization setting of Theorem 3.5: T₁ and T₂ share a log schema,
in₁ ⊆ in₂, and the log is full for T₁ (in₁ ⊆ log).  Then T₁ ⊒ T₂ fails
iff some *two-step* input over in₂ makes the log of T₂ differ from the
log of T₁ on the same input restricted to in₁ -- which is a BSR
sentence over two copies of in₂.

The search for a difference is decomposed per log relation and step:
each candidate difference is a separate (small) BSR query instead of
one disjunction over all of them.  The decomposition is exact -- a
difference exists iff one exists for some relation at some step -- and
keeps the small-model domain proportional to a single difference's
existentials rather than their sum.

Corollary 3.6 (same schema, full log) and log *equivalence* follow by
symmetry.  :func:`pointwise_log_equal` additionally provides the
sufficient criterion the paper uses for the short/friendly example,
where the log is partial.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.spocus import SpocusTransducer
from repro.errors import VerificationError
from repro.logic.bsr import GroundingStats, decide_bsr
from repro.logic.fol import Formula, Not, conjoin, disjoin
from repro.logic.fol import exists as fol_exists
from repro.relalg.instance import Instance
from repro.verify.deprecation import warn_legacy
from repro.verify.encoder import RunEncoder, decode_input_sequence


def _check_customization_shape(
    bigger: SpocusTransducer, smaller: SpocusTransducer
) -> None:
    if tuple(bigger.schema.log) != tuple(smaller.schema.log):
        raise VerificationError("transducers must share the log declaration")


def _log_relation_difference(
    name: str,
    step: int,
    encoder_one: RunEncoder,
    encoder_two: RunEncoder,
) -> Formula:
    """∃x̄: the two transducers disagree on log relation ``name`` at ``step``.

    Each transducer contributes the relation's content: the input part
    when ``name`` is among its inputs (shared replicated relations make
    the input parts literally identical formulas) and the output part
    via its own rule definitions.
    """

    def content(encoder: RunEncoder, terms) -> Formula:
        schema = encoder.transducer.schema
        parts: list[Formula] = []
        if name in schema.inputs:
            parts.append(encoder.input_atom(name, terms, step))
        if name in schema.outputs:
            parts.append(encoder.output_formula(name, terms, step))
        if not parts:
            raise VerificationError(
                f"log relation {name!r} is neither input nor output of "
                f"one transducer"
            )
        return disjoin(parts)

    schema = encoder_two.transducer.schema
    arity = (
        schema.inputs.arity(name)
        if name in schema.inputs
        else schema.outputs.arity(name)
    )
    xs = encoder_two.fresh_variables(arity, "d")
    in_two = content(encoder_two, xs)
    in_one = content(encoder_one, xs)
    return fol_exists(
        xs,
        disjoin(
            [
                conjoin([in_two, Not(in_one)]),
                conjoin([in_one, Not(in_two)]),
            ]
        ),
    )


@dataclass
class ContainmentVerdict:
    """Outcome of the containment procedures.

    ``contained`` means every valid log of the second transducer is a
    valid log of the first.  When containment fails,
    ``separating_inputs`` is a two-step input sequence whose logs
    differ, and ``difference`` names the (relation, step) where.
    """

    contained: bool
    separating_inputs: list[Instance] | None = None
    difference: tuple[str, int] | None = None
    stats: GroundingStats = field(default_factory=GroundingStats)


def _find_pointwise_difference(
    one: SpocusTransducer,
    two: SpocusTransducer,
    database: dict | Instance | None,
) -> ContainmentVerdict:
    """Shared engine: search for a (relation, step) log difference.

    ``two`` is the transducer with the larger input schema; the
    replicated input relations are shared between both encodings.
    """
    db_instance: Instance | None = None
    if database is not None:
        db_instance = two.coerce_database(database)
    total = GroundingStats()
    for step in (1, 2):
        for name in two.schema.log:
            encoder_two = RunEncoder(two, 2)
            encoder_one = RunEncoder(one, 2)
            difference = _log_relation_difference(
                name, step, encoder_one, encoder_two
            )
            conjuncts: list[Formula] = [difference]
            if db_instance is not None:
                conjuncts.append(encoder_two.database_axioms(db_instance))
            sentence = conjoin(conjuncts)
            extra = encoder_two.constants(database=db_instance)
            extra |= encoder_one.constants()
            result = decide_bsr(sentence, extra_constants=tuple(sorted(extra, key=repr)))
            _accumulate(total, result.stats)
            if result.satisfiable:
                assert result.model is not None
                witness = decode_input_sequence(two, 2, result.model)
                return ContainmentVerdict(
                    False,
                    separating_inputs=witness,
                    difference=(name, step),
                    stats=total,
                )
    return ContainmentVerdict(True, stats=total)


def _accumulate(total: GroundingStats, stats: GroundingStats) -> None:
    total.domain_size = max(total.domain_size, stats.domain_size)
    total.existential_count = max(
        total.existential_count, stats.existential_count
    )
    total.universal_count = max(total.universal_count, stats.universal_count)
    total.universal_instantiations += stats.universal_instantiations
    total.cnf_variables += stats.cnf_variables
    total.cnf_clauses += stats.cnf_clauses
    total.sat_decisions += stats.sat_decisions
    total.sat_propagations += stats.sat_propagations
    total.sat_conflicts += stats.sat_conflicts


def log_contains(
    bigger: SpocusTransducer,
    smaller: SpocusTransducer,
    database: dict | Instance | None = None,
    replay: bool = True,
) -> ContainmentVerdict:
    """Deprecated seed-era entry point; see :func:`check_log_containment`."""
    warn_legacy("log_contains", "Verifier.check_containment")
    return check_log_containment(bigger, smaller, database, replay=replay)


def check_log_containment(
    bigger: SpocusTransducer,
    smaller: SpocusTransducer,
    database: dict | Instance | None = None,
    replay: bool = True,
) -> ContainmentVerdict:
    """Decide T₁ ⊒ T₂ under the Theorem 3.5 hypotheses.

    ``bigger`` plays T₁ (the original model), ``smaller`` plays T₂ (the
    customization): in₁ ⊆ in₂ and the log must be full for T₁.  Raises
    :class:`VerificationError` when the hypotheses fail -- the general
    problem is undecidable (Theorem 3.4), so the library refuses to
    guess.
    """
    _check_customization_shape(bigger, smaller)
    in_one = set(bigger.schema.inputs.names)
    in_two = set(smaller.schema.inputs.names)
    if not in_one <= in_two:
        raise VerificationError(
            "Theorem 3.5 requires in(T1) ⊆ in(T2); "
            f"extra T1 inputs: {sorted(in_one - in_two)}"
        )
    if not in_one <= set(bigger.schema.log):
        raise VerificationError(
            "Theorem 3.5 requires the log to be full for T1 "
            "(every T1 input logged); "
            f"unlogged: {sorted(in_one - set(bigger.schema.log))}"
        )
    verdict = _find_pointwise_difference(bigger, smaller, database)
    if (
        not verdict.contained
        and replay
        and database is not None
        and verdict.separating_inputs is not None
    ):
        _replay_difference(bigger, smaller, database, verdict)
    return verdict


def _replay_difference(
    bigger: SpocusTransducer,
    smaller: SpocusTransducer,
    database: dict | Instance,
    verdict: ContainmentVerdict,
) -> None:
    db_two = smaller.coerce_database(database)
    witness = verdict.separating_inputs
    assert witness is not None
    log_two = smaller.run(db_two, witness).logs
    restricted = [
        instance.project_onto(bigger.schema.inputs) for instance in witness
    ]
    db_one = db_two.project_onto(bigger.schema.database)
    log_one = bigger.run(db_one, restricted).logs
    if list(log_one) == list(log_two):
        raise VerificationError(
            "internal error: separating witness does not separate"
        )


def are_log_equivalent(
    first: SpocusTransducer,
    second: SpocusTransducer,
    database: dict | Instance | None = None,
) -> bool:
    """Deprecated seed-era entry point; see :func:`check_log_equivalence`."""
    warn_legacy("are_log_equivalent", "Verifier.check_containment")
    return check_log_equivalence(first, second, database)


def check_log_equivalence(
    first: SpocusTransducer,
    second: SpocusTransducer,
    database: dict | Instance | None = None,
) -> bool:
    """Corollary 3.6: log equivalence over the same schema with full log."""
    return (
        check_log_containment(first, second, database).contained
        and check_log_containment(second, first, database).contained
    )


def pointwise_log_equal(
    base: SpocusTransducer,
    extension: SpocusTransducer,
    database: dict | Instance | None = None,
) -> ContainmentVerdict:
    """Deprecated entry point; see :func:`check_pointwise_log_equality`."""
    warn_legacy("pointwise_log_equal", "Verifier.check_containment")
    return check_pointwise_log_equality(base, extension, database)


def check_pointwise_log_equality(
    base: SpocusTransducer,
    extension: SpocusTransducer,
    database: dict | Instance | None = None,
) -> ContainmentVerdict:
    """Decide whether logs coincide *pointwise* on shared inputs.

    Requires in(base) ⊆ in(extension) and a shared log declaration.
    Decides (over two-step runs, which suffice as in Theorem 3.5)
    whether for every input sequence I over the extension's inputs,
    ``log_extension(I) = log_base(I|in(base))``.

    Pointwise equality is a *sufficient* condition for log-set
    equivalence without any full-log hypothesis: every extension log is
    then a base log of the restricted input, and every base input embeds
    into the extension.  This is exactly how the paper argues that
    ``short`` and ``friendly`` "yield exactly the same set of valid
    logs" although ``short``'s log is partial (``order`` is unlogged).
    """
    _check_customization_shape(base, extension)
    in_base = set(base.schema.inputs.names)
    in_ext = set(extension.schema.inputs.names)
    if not in_base <= in_ext:
        raise VerificationError(
            "pointwise comparison requires in(base) ⊆ in(extension)"
        )
    return _find_pointwise_difference(base, extension, database)
