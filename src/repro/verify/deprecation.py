"""Shared deprecation shim for the seed-era verify entry points.

The PR 4 redesign moved verification behind the typed
:class:`~repro.verify.api.Verifier` facade; the original module-level
functions (``is_valid_log``, ``is_goal_reachable``, ``holds_on_all_runs``,
``log_contains``, ...) remain as thin wrappers over the same engines but
emit a :class:`DeprecationWarning` -- exactly once per process across
*all* of them, mirroring the :class:`~repro.runtime.MultiSessionEngine`
shim convention, so a long-running service is not spammed.
"""

from __future__ import annotations

import warnings

_deprecation_warned = False


def warn_legacy(entry_point: str, replacement: str) -> None:
    """Emit the one-per-process legacy-verify DeprecationWarning.

    ``entry_point`` is the legacy function the caller invoked;
    ``replacement`` names the :mod:`repro.verify.api` surface to use
    instead.  The first legacy call warns; later calls (to any legacy
    entry point) stay silent.
    """
    global _deprecation_warned
    if _deprecation_warned:
        return
    _deprecation_warned = True
    warnings.warn(
        f"{entry_point} is deprecated; use repro.verify.api.{replacement} "
        "(Verifier.check over typed PropertySpecs) instead",
        DeprecationWarning,
        stacklevel=3,
    )
