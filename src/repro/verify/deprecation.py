"""Shared deprecation shims: warn once per process, never spam.

The PR 4 redesign moved verification behind the typed
:class:`~repro.verify.api.Verifier` facade; the original module-level
functions (``is_valid_log``, ``is_goal_reachable``, ``holds_on_all_runs``,
``log_contains``, ...) remain as thin wrappers over the same engines but
emit a :class:`DeprecationWarning` -- exactly once per process across
*all* of them, mirroring the :class:`~repro.runtime.MultiSessionEngine`
shim convention, so a long-running service is not spammed.

:func:`warn_once` is the reusable core of that pattern: any layer that
keeps an old call shape alive (e.g. the storage API's legacy
``migrate_sessions`` return shape in :mod:`repro.pods.store`) registers
its own key and warns at most once per process for it.
"""

from __future__ import annotations

import warnings

_deprecation_warned = False
_warned_keys: set[str] = set()


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``message`` as a DeprecationWarning, once per process per key.

    Distinct ``key`` values warn independently; repeated calls with the
    same key stay silent.  All the repo's warn-once shims (legacy verify
    entry points, the engine shim, the storage-API compatibility shapes)
    funnel through here or follow the same flag-guarded shape.
    """
    if key in _warned_keys:
        return
    _warned_keys.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def warn_legacy(entry_point: str, replacement: str) -> None:
    """Emit the one-per-process legacy-verify DeprecationWarning.

    ``entry_point`` is the legacy function the caller invoked;
    ``replacement`` names the :mod:`repro.verify.api` surface to use
    instead.  The first legacy call warns; later calls (to any legacy
    entry point) stay silent.
    """
    global _deprecation_warned
    if _deprecation_warned:
        return
    _deprecation_warned = True
    warnings.warn(
        f"{entry_point} is deprecated; use repro.verify.api.{replacement} "
        "(Verifier.check over typed PropertySpecs) instead",
        DeprecationWarning,
        stacklevel=3,
    )
