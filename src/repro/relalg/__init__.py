"""Relational-model substrate.

This subpackage implements the classical relational model that the
paper's transducers operate over: value domains, relation schemas,
instances, the relational algebra, and dependency theory (functional and
inclusion dependencies plus the chase).  It is self-contained and has no
dependencies on the rest of the library.
"""

from repro.relalg.domain import LabeledNull, active_domain, fresh_null, is_null
from repro.relalg.schema import DatabaseSchema, RelationSchema
from repro.relalg.instance import Instance
from repro.relalg.indexes import FactStore, IndexStats
from repro.relalg.interning import (
    clear_intern_pools,
    intern_constant,
    intern_row,
    interned_constants,
)
from repro.relalg.algebra import (
    difference,
    intersection,
    natural_join,
    product,
    project,
    select,
    union,
)
from repro.relalg.expressions import (
    Difference,
    Expression,
    Join,
    Product,
    Projection,
    RelationRef,
    Selection,
    Union,
)
from repro.relalg.dependencies import (
    Dependency,
    FunctionalDependency,
    InclusionDependency,
    violations_fd,
    violations_ind,
)
from repro.relalg.chase import (
    ChaseResult,
    chase,
    fd_closure,
    implies_fd,
    implies_mixed,
)

__all__ = [
    "LabeledNull",
    "active_domain",
    "fresh_null",
    "is_null",
    "DatabaseSchema",
    "RelationSchema",
    "Instance",
    "FactStore",
    "IndexStats",
    "intern_constant",
    "intern_row",
    "interned_constants",
    "clear_intern_pools",
    "select",
    "project",
    "natural_join",
    "product",
    "union",
    "difference",
    "intersection",
    "Expression",
    "RelationRef",
    "Selection",
    "Projection",
    "Join",
    "Product",
    "Union",
    "Difference",
    "Dependency",
    "FunctionalDependency",
    "InclusionDependency",
    "violations_fd",
    "violations_ind",
    "ChaseResult",
    "chase",
    "fd_closure",
    "implies_fd",
    "implies_mixed",
]
