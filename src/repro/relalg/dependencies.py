"""Functional and inclusion dependencies.

These are the dependency classes used by the paper's undecidability
reductions (Proposition 3.1 and Theorem 3.4 reduce log validity and
transducer containment to the implication problem for FDs + IncDs, which
is undecidable by Chandra-Vardi / Mitchell).  Positions are 0-based here;
the paper writes them 1-based.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SchemaError
from repro.relalg.instance import Instance


class Dependency:
    """Marker base class for dependencies over a single relation schema."""

    relation: str

    def holds_in(self, instance: Instance) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class FunctionalDependency(Dependency):
    """An FD ``lhs -> rhs`` over relation ``relation`` (0-based positions).

    ``13 -> 2`` in the paper's 1-based notation is
    ``FunctionalDependency("R", (0, 2), 1)`` here.
    """

    relation: str
    lhs: tuple[int, ...]
    rhs: int

    def __post_init__(self) -> None:
        if len(set(self.lhs)) != len(self.lhs):
            raise SchemaError(f"FD lhs has duplicate positions: {self.lhs}")

    def __str__(self) -> str:
        lhs = "".join(str(p + 1) for p in self.lhs)
        return f"{self.relation}: {lhs} -> {self.rhs + 1}"

    def holds_in(self, instance: Instance) -> bool:
        return not violations_fd(instance[self.relation], self)


@dataclass(frozen=True)
class InclusionDependency(Dependency):
    """An IncD ``relation[lhs] ⊆ target[rhs]`` (0-based position sequences).

    The paper's single-relation form ``i1..im ⊆ j1..jm`` over R is
    ``InclusionDependency("R", (i...), "R", (j...))``; the two-relation
    general form is supported as well (used by the chase tests).
    """

    relation: str
    lhs: tuple[int, ...]
    target: str
    rhs: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lhs) != len(self.rhs):
            raise SchemaError(
                f"IncD sides have different widths: {self.lhs} vs {self.rhs}"
            )

    def __str__(self) -> str:
        lhs = "".join(str(p + 1) for p in self.lhs)
        rhs = "".join(str(p + 1) for p in self.rhs)
        if self.relation == self.target:
            return f"{self.relation}: {lhs} ⊆ {rhs}"
        return f"{self.relation}[{lhs}] ⊆ {self.target}[{rhs}]"

    def holds_in(self, instance: Instance) -> bool:
        return not violations_ind(
            instance[self.relation], instance[self.target], self
        )


def violations_fd(
    rows: Iterable[tuple], fd: FunctionalDependency
) -> list[tuple[tuple, tuple]]:
    """Return the pairs of tuples violating ``fd`` (empty when it holds)."""
    witness: dict[tuple, dict[object, tuple]] = {}
    violations: list[tuple[tuple, tuple]] = []
    for row in sorted(rows, key=repr):
        key = tuple(row[p] for p in fd.lhs)
        seen = witness.setdefault(key, {})
        for value, other in seen.items():
            if value != row[fd.rhs]:
                violations.append((other, row))
        seen.setdefault(row[fd.rhs], row)
    return violations


def violations_ind(
    rows: Iterable[tuple],
    target_rows: Iterable[tuple],
    ind: InclusionDependency,
) -> list[tuple]:
    """Return the tuples of ``rows`` violating ``ind`` (empty when it holds)."""
    available = {tuple(row[p] for p in ind.rhs) for row in target_rows}
    return [
        row
        for row in sorted(rows, key=repr)
        if tuple(row[p] for p in ind.lhs) not in available
    ]


def all_hold(instance: Instance, deps: Sequence[Dependency]) -> bool:
    """True if every dependency in ``deps`` holds in ``instance``."""
    return all(dep.holds_in(instance) for dep in deps)


def parse_fd(relation: str, text: str) -> FunctionalDependency:
    """Parse the paper's compact 1-based FD notation, e.g. ``"13->2"``."""
    if "->" not in text:
        raise SchemaError(f"not an FD: {text!r}")
    lhs_text, rhs_text = text.split("->", 1)
    lhs = tuple(int(ch) - 1 for ch in lhs_text.strip())
    rhs = int(rhs_text.strip()) - 1
    return FunctionalDependency(relation, lhs, rhs)


def parse_ind(relation: str, text: str) -> InclusionDependency:
    """Parse the paper's compact 1-based IncD notation, e.g. ``"1<=2"``."""
    if "<=" not in text:
        raise SchemaError(f"not an IncD: {text!r}")
    lhs_text, rhs_text = text.split("<=", 1)
    lhs = tuple(int(ch) - 1 for ch in lhs_text.strip())
    rhs = tuple(int(ch) - 1 for ch in rhs_text.strip())
    return InclusionDependency(relation, lhs, relation, rhs)
