"""Relation and database schemas.

A :class:`RelationSchema` is a relation name plus an arity (and optional
attribute names, used only for display).  A :class:`DatabaseSchema` is a
collection of relation schemas with unique names.  Transducer schemas
(Section 2.2 of the paper) are built from five database schemas; see
:mod:`repro.core.schema`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError, UnknownRelationError


@dataclass(frozen=True)
class RelationSchema:
    """A relation name with a fixed arity.

    Attribute names are optional; when provided their count must equal
    the arity.  Relations of arity 0 are allowed (propositional
    relations, used heavily in Sections 3.1 and 4).
    """

    name: str
    arity: int
    attributes: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        if self.arity < 0:
            raise SchemaError(f"relation {self.name!r}: arity must be >= 0")
        if self.attributes is not None and len(self.attributes) != self.arity:
            raise SchemaError(
                f"relation {self.name!r}: {len(self.attributes)} attribute "
                f"names given for arity {self.arity}"
            )

    def __str__(self) -> str:
        if self.attributes:
            return f"{self.name}({', '.join(self.attributes)})"
        return f"{self.name}/{self.arity}"


class DatabaseSchema:
    """An immutable set of relation schemas indexed by name."""

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        by_name: dict[str, RelationSchema] = {}
        for rel in relations:
            if rel.name in by_name:
                raise SchemaError(f"duplicate relation name {rel.name!r}")
            by_name[rel.name] = rel
        self._by_name: Mapping[str, RelationSchema] = by_name

    @classmethod
    def of(cls, **arities: int) -> "DatabaseSchema":
        """Build a schema from keyword arguments: ``of(price=2, order=1)``."""
        return cls(RelationSchema(name, arity) for name, arity in arities.items())

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return dict(self._by_name) == dict(other._by_name)

    def __repr__(self) -> str:
        rels = ", ".join(str(r) for r in self)
        return f"DatabaseSchema({rels})"

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._by_name)

    def relation(self, name: str) -> RelationSchema:
        """Return the schema of relation ``name`` or raise."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownRelationError(
                f"unknown relation {name!r}; known: {sorted(self._by_name)}"
            ) from None

    def arity(self, name: str) -> int:
        return self.relation(name).arity

    def restrict(self, names: Iterable[str]) -> "DatabaseSchema":
        """Return the sub-schema containing only ``names``."""
        wanted = set(names)
        missing = wanted - set(self._by_name)
        if missing:
            raise UnknownRelationError(f"unknown relations {sorted(missing)}")
        return DatabaseSchema(r for r in self if r.name in wanted)

    def merge(self, other: "DatabaseSchema") -> "DatabaseSchema":
        """Union of two schemas; shared names must agree on arity."""
        merged = dict(self._by_name)
        for rel in other:
            existing = merged.get(rel.name)
            if existing is not None and existing.arity != rel.arity:
                raise SchemaError(
                    f"relation {rel.name!r} declared with arities "
                    f"{existing.arity} and {rel.arity}"
                )
            merged.setdefault(rel.name, rel)
        return DatabaseSchema(merged.values())

    def disjoint_with(self, other: "DatabaseSchema") -> bool:
        """Return True if no relation name is shared with ``other``."""
        return not (set(self.names) & set(other.names))
