"""Value domains for the relational model.

Values in this library are plain hashable Python objects (typically
``str`` or ``int``), interpreted under the *unique-name assumption*:
distinct Python values denote distinct domain elements.  The chase
additionally needs *labeled nulls* -- placeholder values that may later be
identified with constants or with each other; these are represented by
the :class:`LabeledNull` class.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

Value = object  # any hashable Python object under the unique-name assumption

_null_counter = itertools.count(1)


@dataclass(frozen=True, eq=True)
class LabeledNull:
    """A labeled null (fresh placeholder value) used by the chase.

    Two labeled nulls are equal iff they carry the same label.  Labels are
    allocated by :func:`fresh_null` and never collide with constants.
    """

    label: int

    def __repr__(self) -> str:
        return f"_N{self.label}"


def fresh_null() -> LabeledNull:
    """Return a labeled null with a globally fresh label."""
    return LabeledNull(next(_null_counter))


def is_null(value: Value) -> bool:
    """Return True if ``value`` is a labeled null."""
    return isinstance(value, LabeledNull)


def active_domain(tuples: Iterable[tuple]) -> set:
    """Return the set of all values occurring in ``tuples``.

    This is the *active domain* in the database-theory sense: the values
    that actually appear in an instance, as opposed to the (possibly
    infinite) underlying domain.
    """
    domain: set = set()
    for row in tuples:
        domain.update(row)
    return domain


@dataclass
class FreshValueFactory:
    """Deterministic generator of fresh constants avoiding a given set.

    Useful in tests and in the BSR decision procedure, where we must
    extend the active domain by k fresh elements whose identity is
    reproducible across runs (unlike :func:`fresh_null`).
    """

    avoid: set = field(default_factory=set)
    prefix: str = "fresh"
    _next: int = 0

    def __call__(self) -> str:
        while True:
            candidate = f"{self.prefix}#{self._next}"
            self._next += 1
            if candidate not in self.avoid:
                self.avoid.add(candidate)
                return candidate

    def take(self, count: int) -> list[str]:
        """Return ``count`` fresh constants."""
        return [self() for _ in range(count)]


def enumerate_values(base: str = "v") -> Iterator[str]:
    """Yield an unbounded stream of distinct constants v0, v1, ..."""
    for i in itertools.count():
        yield f"{base}{i}"
