"""Database instances: finite relations over a schema.

An :class:`Instance` maps each relation name of a
:class:`~repro.relalg.schema.DatabaseSchema` to a finite set of tuples of
the right arity.  Instances are *value objects*: mutating operations
return new instances, which makes runs of transducers easy to reason
about and to test (the run semantics of Section 2.2 is a fold over
immutable instances).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import ArityError, SchemaError
from repro.relalg.domain import active_domain
from repro.relalg.schema import DatabaseSchema, RelationSchema


def _check_tuples(rel: RelationSchema, rows: Iterable[tuple]) -> frozenset[tuple]:
    checked = set()
    for row in rows:
        row = tuple(row)
        if len(row) != rel.arity:
            raise ArityError(
                f"relation {rel.name!r} has arity {rel.arity}, "
                f"got tuple of length {len(row)}: {row!r}"
            )
        checked.add(row)
    return frozenset(checked)


class Instance:
    """An immutable instance of a database schema.

    Relations not mentioned at construction time are empty.  Tuples are
    plain Python tuples of hashable values.
    """

    __slots__ = ("_schema", "_relations")

    def __init__(
        self,
        schema: DatabaseSchema,
        relations: Mapping[str, Iterable[tuple]] | None = None,
    ) -> None:
        self._schema = schema
        data: dict[str, frozenset[tuple]] = {}
        if relations:
            for name, rows in relations.items():
                rel = schema.relation(name)
                data[name] = _check_tuples(rel, rows)
        for rel in schema:
            data.setdefault(rel.name, frozenset())
        self._relations: Mapping[str, frozenset[tuple]] = data

    # -- construction helpers -------------------------------------------------

    @classmethod
    def empty(cls, schema: DatabaseSchema) -> "Instance":
        """The instance in which every relation is empty."""
        return cls(schema)

    def with_facts(self, name: str, rows: Iterable[tuple]) -> "Instance":
        """Return a new instance with ``rows`` added to relation ``name``."""
        rel = self._schema.relation(name)
        new_rows = self._relations[name] | _check_tuples(rel, rows)
        merged = dict(self._relations)
        merged[name] = new_rows
        return self._from_checked(self._schema, merged)

    def with_relation(self, name: str, rows: Iterable[tuple]) -> "Instance":
        """Return a new instance with relation ``name`` replaced by ``rows``."""
        rel = self._schema.relation(name)
        merged = dict(self._relations)
        merged[name] = _check_tuples(rel, rows)
        return self._from_checked(self._schema, merged)

    @classmethod
    def _from_checked(
        cls, schema: DatabaseSchema, data: dict[str, frozenset[tuple]]
    ) -> "Instance":
        inst = cls.__new__(cls)
        inst._schema = schema
        inst._relations = data
        return inst

    # -- accessors ------------------------------------------------------------

    @property
    def schema(self) -> DatabaseSchema:
        return self._schema

    def __getitem__(self, name: str) -> frozenset[tuple]:
        self._schema.relation(name)  # raise on unknown names
        return self._relations[name]

    def get(self, name: str) -> frozenset[tuple]:
        """Like ``inst[name]`` but returns empty for unknown relations."""
        return self._relations.get(name, frozenset())

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return (
            self._schema == other._schema
            and dict(self._relations) == dict(other._relations)
        )

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.items()))

    def __repr__(self) -> str:
        parts = []
        for name in sorted(self._schema.names):
            rows = self._relations[name]
            if rows:
                shown = sorted(map(repr, rows))
                parts.append(f"{name}={{{', '.join(shown)}}}")
        return f"Instance({'; '.join(parts) or 'empty'})"

    def is_empty(self) -> bool:
        """True if every relation is empty."""
        return all(not rows for rows in self._relations.values())

    def total_facts(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rows) for rows in self._relations.values())

    def facts(self) -> Iterator[tuple[str, tuple]]:
        """Yield (relation, tuple) pairs for all facts, sorted for determinism."""
        for name in sorted(self._schema.names):
            for row in sorted(self._relations[name], key=repr):
                yield name, row

    def active_domain(self) -> set:
        """All values occurring anywhere in the instance."""
        domain: set = set()
        for rows in self._relations.values():
            domain |= active_domain(rows)
        return domain

    # -- set operations over instances ----------------------------------------

    def union(self, other: "Instance") -> "Instance":
        """Relation-wise union; schemas must match."""
        self._require_same_schema(other)
        merged = {
            name: self._relations[name] | other._relations[name]
            for name in self._relations
        }
        return self._from_checked(self._schema, merged)

    def difference(self, other: "Instance") -> "Instance":
        """Relation-wise difference; schemas must match."""
        self._require_same_schema(other)
        merged = {
            name: self._relations[name] - other._relations[name]
            for name in self._relations
        }
        return self._from_checked(self._schema, merged)

    def restrict(self, names: Iterable[str]) -> "Instance":
        """Project the instance onto a sub-schema (the paper's log operation).

        ``(I ∪ O)|log`` in Section 2.2 is ``I.union(O).restrict(log_names)``
        modulo schema bookkeeping.
        """
        sub = self._schema.restrict(names)
        data = {rel.name: self._relations[rel.name] for rel in sub}
        return Instance._from_checked(sub, data)

    def project_onto(self, schema: DatabaseSchema) -> "Instance":
        """Re-host this instance's facts onto ``schema``.

        Relations present in both schemas keep their tuples (arities must
        agree); relations only in ``schema`` become empty; relations only
        in ``self`` are dropped.
        """
        data: dict[str, frozenset[tuple]] = {}
        for rel in schema:
            rows = self._relations.get(rel.name, frozenset())
            if rows and self._schema.arity(rel.name) != rel.arity:
                raise SchemaError(
                    f"cannot re-host {rel.name!r}: arity mismatch"
                )
            data[rel.name] = rows
        return Instance._from_checked(schema, data)

    def _require_same_schema(self, other: "Instance") -> None:
        if self._schema != other._schema:
            raise SchemaError("instances have different schemas")
