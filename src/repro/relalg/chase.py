"""The chase, attribute closures, and dependency implication.

Implication for FDs alone is decidable via Armstrong's axioms (attribute
closure).  Implication for FDs + inclusion dependencies is undecidable in
general (Chandra-Vardi 1985, Mitchell 1983) -- the very fact the paper's
Proposition 3.1 and Theorem 3.4 exploit.  We implement the standard chase
as a *semi-decision* procedure with a step budget: when the chase
terminates we have an exact answer; when the budget is exhausted we raise
:class:`~repro.errors.ChaseNonterminationError` so callers can fall back
to bounded search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.errors import ChaseNonterminationError, SchemaError
from repro.relalg.dependencies import (
    Dependency,
    FunctionalDependency,
    InclusionDependency,
    violations_fd,
    violations_ind,
)
from repro.relalg.domain import fresh_null, is_null


# ---------------------------------------------------------------------------
# FD reasoning (decidable, polynomial)
# ---------------------------------------------------------------------------


def fd_closure(
    positions: Iterable[int], fds: Sequence[FunctionalDependency]
) -> frozenset[int]:
    """Attribute closure of ``positions`` under ``fds`` (one relation).

    Standard linear-pass algorithm; all FDs must concern one relation.
    """
    relations = {fd.relation for fd in fds}
    if len(relations) > 1:
        raise SchemaError(f"fd_closure over multiple relations: {relations}")
    closure = set(positions)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if fd.rhs not in closure and set(fd.lhs) <= closure:
                closure.add(fd.rhs)
                changed = True
    return frozenset(closure)


def implies_fd(
    fds: Sequence[FunctionalDependency], candidate: FunctionalDependency
) -> bool:
    """Decide ``fds ⊨ candidate`` (FDs only) via attribute closure."""
    relevant = [fd for fd in fds if fd.relation == candidate.relation]
    return candidate.rhs in fd_closure(candidate.lhs, relevant) or (
        candidate.rhs in candidate.lhs
    )


# ---------------------------------------------------------------------------
# The chase (FDs + IncDs, semi-decision with budget)
# ---------------------------------------------------------------------------


@dataclass
class ChaseResult:
    """Outcome of a chase run.

    ``tables`` maps relation name to the chased set of tuples (over
    constants and labeled nulls).  ``failed`` is True when an FD step
    tried to equate two distinct constants (the chase "fails", meaning no
    instance containing the start tableau satisfies the dependencies).
    ``steps`` counts applied chase steps.
    """

    tables: dict[str, frozenset[tuple]]
    failed: bool
    steps: int


class _Substitution:
    """Union-find over values; constants are always representatives."""

    def __init__(self) -> None:
        self._parent: dict[object, object] = {}

    def find(self, value: object) -> object:
        path = []
        while value in self._parent:
            path.append(value)
            value = self._parent[value]
        for node in path:
            self._parent[node] = value
        return value

    def equate(self, a: object, b: object) -> bool:
        """Merge classes of a and b; return False on constant clash."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return True
        if not is_null(ra) and not is_null(rb):
            return False  # two distinct constants: chase failure
        if is_null(ra):
            self._parent[ra] = rb
        else:
            self._parent[rb] = ra
        return True

    def apply(self, row: tuple) -> tuple:
        return tuple(self.find(v) for v in row)


def chase(
    tables: Mapping[str, Iterable[tuple]],
    deps: Sequence[Dependency],
    max_steps: int = 10_000,
) -> ChaseResult:
    """Chase ``tables`` with ``deps`` until fixpoint, failure, or budget.

    FD steps equate values (nulls absorb into constants or other nulls;
    equating two distinct constants fails the chase).  IncD steps add a
    new tuple whose copied positions come from the violating tuple and
    whose remaining positions are fresh labeled nulls.
    """
    state: dict[str, set[tuple]] = {
        name: {tuple(r) for r in rows} for name, rows in tables.items()
    }
    subst = _Substitution()
    steps = 0
    while True:
        applied = False
        # FD steps first: they only shrink the instance, which keeps the
        # chase closer to termination.
        for dep in deps:
            if not isinstance(dep, FunctionalDependency):
                continue
            rows = state.setdefault(dep.relation, set())
            for left, right in violations_fd(rows, dep):
                if not subst.equate(left[dep.rhs], right[dep.rhs]):
                    return ChaseResult(
                        {n: frozenset(r) for n, r in state.items()}, True, steps
                    )
                applied = True
                steps += 1
            if applied:
                state = {
                    name: {subst.apply(row) for row in rows}
                    for name, rows in state.items()
                }
        for dep in deps:
            if not isinstance(dep, InclusionDependency):
                continue
            source = state.setdefault(dep.relation, set())
            target = state.setdefault(dep.target, set())
            missing = violations_ind(source, target, dep)
            if not missing:
                continue
            width = _relation_width(state, dep.target, dep.rhs)
            for row in missing:
                fresh = [fresh_null() for _ in range(width)]
                for src_pos, dst_pos in zip(dep.lhs, dep.rhs):
                    fresh[dst_pos] = row[src_pos]
                target.add(tuple(fresh))
                applied = True
                steps += 1
                if steps > max_steps:
                    raise ChaseNonterminationError(
                        f"chase exceeded {max_steps} steps; the dependency "
                        "set likely has a non-terminating chase"
                    )
        if not applied:
            return ChaseResult(
                {n: frozenset(r) for n, r in state.items()}, False, steps
            )
        if steps > max_steps:
            raise ChaseNonterminationError(
                f"chase exceeded {max_steps} steps; the dependency "
                "set likely has a non-terminating chase"
            )


def _relation_width(
    state: Mapping[str, set[tuple]], name: str, rhs: tuple[int, ...]
) -> int:
    rows = state.get(name)
    if rows:
        return len(next(iter(rows)))
    # Fall back to the widest position mentioned; enough for the
    # single-relation dependencies of the paper, where the source
    # relation fixes the width.
    return max(rhs) + 1


# ---------------------------------------------------------------------------
# Implication for mixed FD + IncD sets
# ---------------------------------------------------------------------------


@dataclass
class _Tableau:
    tables: dict[str, set[tuple]] = field(default_factory=dict)


def _fd_tableau(candidate: FunctionalDependency, arity: int) -> _Tableau:
    """Two tuples agreeing exactly on the FD's lhs, nulls elsewhere."""
    shared = {p: fresh_null() for p in candidate.lhs}
    row_a = tuple(shared.get(p, fresh_null()) for p in range(arity))
    row_b = tuple(shared.get(p, fresh_null()) for p in range(arity))
    return _Tableau({candidate.relation: {row_a, row_b}})


def _ind_tableau(candidate: InclusionDependency, arity: int) -> _Tableau:
    """One tuple of distinct nulls in the source relation."""
    row = tuple(fresh_null() for _ in range(arity))
    tableau = _Tableau({candidate.relation: {row}})
    tableau.tables.setdefault(candidate.target, set())
    return tableau


def implies_mixed(
    deps: Sequence[Dependency],
    candidate: Dependency,
    arity: int,
    max_steps: int = 10_000,
) -> bool:
    """Semi-decide ``deps ⊨ candidate`` for mixed FD+IncD sets via the chase.

    ``arity`` is the arity of the relation(s) involved.  Raises
    :class:`ChaseNonterminationError` when the chase does not terminate
    within the budget -- which is unavoidable in general, since the
    problem is undecidable (Chandra-Vardi 1985).
    """
    if isinstance(candidate, FunctionalDependency):
        tableau = _fd_tableau(candidate, arity)
    elif isinstance(candidate, InclusionDependency):
        tableau = _ind_tableau(candidate, arity)
    else:
        raise SchemaError(f"unsupported candidate dependency: {candidate!r}")
    start = {n: set(rows) for n, rows in tableau.tables.items()}
    result = chase(start, list(deps), max_steps=max_steps)
    if result.failed:
        return True  # the tableau admits no model of deps at all
    # Classical criterion (AHV, Ch. 8/10): when the chase terminates, the
    # chased tableau is a universal model of deps, and deps ⊨ candidate
    # iff candidate holds in that universal model.
    if isinstance(candidate, FunctionalDependency):
        return not violations_fd(
            result.tables.get(candidate.relation, frozenset()), candidate
        )
    return not violations_ind(
        result.tables.get(candidate.relation, frozenset()),
        result.tables.get(candidate.target, frozenset()),
        candidate,
    )
