"""Constant and row interning for the columnar fact storage.

The datalog hot path churns through millions of small tuples whose
values are drawn from a tiny active domain (product names, customer
ids, prices).  Interning canonicalizes them process-wide: equal
same-typed constants share one object and equal same-typed rows share
one tuple (pools are keyed by ``(type, value)``, so cross-type equal
values like ``True``/``1``/``1.0`` are never conflated), so

* equality checks inside joins hit CPython's identity fast path,
* the per-position columns of a :class:`~repro.relalg.indexes.FactStore`
  reference shared objects instead of per-row copies, and
* a session's cumulative state, the shared catalog store, and every
  per-step layer agree on object identity for equal facts.

Interning is *canonicalization only*: nothing is ever allowed to depend
on pool residency for correctness, so both pools are bounded and simply
cleared when they overflow (mirroring the plan cache's policy).  The
pools are process-wide and written from the worker threads of a
concurrent ``submit_batch``; all mutation happens under one lock, and
reads go through ``dict.setdefault``-free locked paths so one canonical
object wins every race.
"""

from __future__ import annotations

import threading

__all__ = [
    "intern_constant",
    "intern_row",
    "interned_constants",
    "clear_intern_pools",
]

_POOL_LIMIT = 1 << 20

_constants: dict = {}
_rows: dict[tuple, tuple] = {}
_lock = threading.Lock()


def intern_constant(value):
    """The canonical object equal to ``value`` (singletons/unhashables pass through).

    The first caller to intern a value donates its object; later equal
    values *of the same type* are swapped for the canonical one.  The
    pool is keyed by ``(type, value)``, never by bare value: ``True``,
    ``1``, and ``1.0`` compare equal across types, and keying by
    equality alone would silently rewrite one to another (pool-order
    dependent) on the way into a store.  ``None``/``True``/``False``
    are already process-wide singletons and skip the pool; values that
    cannot be hashed (never produced by the parsers, but FactStore
    accepts raw tuples) are returned untouched.
    """
    if value is None or value is True or value is False:
        return value
    key = (value.__class__, value)
    try:
        canonical = _constants.get(key)
    except TypeError:
        return value
    if canonical is not None:
        return canonical
    with _lock:
        canonical = _constants.get(key)
        if canonical is None:
            if len(_constants) >= _POOL_LIMIT:
                _constants.clear()
            _constants[key] = value
            canonical = value
    return canonical


def intern_row(row: tuple) -> tuple:
    """The canonical tuple equal to ``row``, with interned constants.

    The pool is keyed by the per-element ``(type, value)`` pairs, so a
    cached tuple is only returned when the element *types* match too --
    ``("widget", True)`` and ``("widget", 1)`` stay distinct tuples.
    Rows containing unhashable values are returned untouched (they can
    never be stored in a relation's row set anyway).
    """
    try:
        key = tuple((value.__class__, value) for value in row)
        canonical = _rows.get(key)
    except TypeError:
        return row
    if canonical is not None:
        return canonical
    # Intern the constants before taking the lock (the lock is not
    # reentrant, and intern_constant takes it on a pool miss).
    interned = tuple(intern_constant(value) for value in row)
    with _lock:
        canonical = _rows.get(key)
        if canonical is None:
            if len(_rows) >= _POOL_LIMIT:
                _rows.clear()
            _rows[key] = interned
            canonical = interned
    return canonical


def interned_constants() -> int:
    """Current size of the constant pool (a gauge, for metrics)."""
    return len(_constants)


def clear_intern_pools() -> None:
    """Drop both pools (tests and benchmarks)."""
    with _lock:
        _constants.clear()
        _rows.clear()
