"""Relational algebra expression trees.

A small composable expression language over
:class:`~repro.relalg.instance.Instance`.  This gives the library a
query-plan layer: the datalog evaluator compiles rule bodies into these
expressions, and tests can assert algebraic identities on them
(property-based tests exercise e.g. join commutativity up to column
permutation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import EvaluationError
from repro.relalg import algebra
from repro.relalg.instance import Instance


class Expression:
    """Base class for algebra expressions.

    Subclasses implement :meth:`evaluate` (to a frozenset of tuples) and
    :meth:`arity` (the width of result tuples, or ``None`` when it cannot
    be determined statically, e.g. raw selections over unknowns).
    """

    def evaluate(self, instance: Instance) -> frozenset[tuple]:
        raise NotImplementedError

    def arity(self) -> int | None:
        raise NotImplementedError

    # Convenience combinators ------------------------------------------------

    def where(self, predicate: Callable[[tuple], bool]) -> "Selection":
        return Selection(self, predicate)

    def project(self, positions: Sequence[int]) -> "Projection":
        return Projection(self, tuple(positions))

    def join(self, other: "Expression", pairs: Sequence[tuple[int, int]]) -> "Join":
        return Join(self, other, tuple(pairs))

    def union(self, other: "Expression") -> "Union":
        return Union(self, other)

    def difference(self, other: "Expression") -> "Difference":
        return Difference(self, other)

    def product(self, other: "Expression") -> "Product":
        return Product(self, other)


@dataclass(frozen=True)
class RelationRef(Expression):
    """A reference to a named relation of the instance."""

    name: str

    def evaluate(self, instance: Instance) -> frozenset[tuple]:
        return instance[self.name]

    def arity(self) -> int | None:
        return None  # depends on the instance's schema

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expression):
    """A constant relation (inline set of tuples)."""

    rows: frozenset[tuple]
    width: int

    @classmethod
    def of(cls, rows: Sequence[tuple], width: int | None = None) -> "Literal":
        rows = frozenset(tuple(r) for r in rows)
        if width is None:
            if not rows:
                raise EvaluationError("width required for empty literal")
            width = len(next(iter(rows)))
        for r in rows:
            if len(r) != width:
                raise EvaluationError("ragged literal relation")
        return cls(rows, width)

    def evaluate(self, instance: Instance) -> frozenset[tuple]:
        return self.rows

    def arity(self) -> int | None:
        return self.width


@dataclass(frozen=True)
class Selection(Expression):
    source: Expression
    predicate: Callable[[tuple], bool]

    def evaluate(self, instance: Instance) -> frozenset[tuple]:
        return algebra.select(self.source.evaluate(instance), self.predicate)

    def arity(self) -> int | None:
        return self.source.arity()


@dataclass(frozen=True)
class Projection(Expression):
    source: Expression
    positions: tuple[int, ...]

    def evaluate(self, instance: Instance) -> frozenset[tuple]:
        return algebra.project(self.source.evaluate(instance), self.positions)

    def arity(self) -> int | None:
        return len(self.positions)


@dataclass(frozen=True)
class Join(Expression):
    left: Expression
    right: Expression
    pairs: tuple[tuple[int, int], ...]

    def evaluate(self, instance: Instance) -> frozenset[tuple]:
        return algebra.natural_join(
            self.left.evaluate(instance), self.right.evaluate(instance), self.pairs
        )

    def arity(self) -> int | None:
        la, ra = self.left.arity(), self.right.arity()
        if la is None or ra is None:
            return None
        return la + ra


@dataclass(frozen=True)
class Product(Expression):
    left: Expression
    right: Expression

    def evaluate(self, instance: Instance) -> frozenset[tuple]:
        return algebra.product(
            self.left.evaluate(instance), self.right.evaluate(instance)
        )

    def arity(self) -> int | None:
        la, ra = self.left.arity(), self.right.arity()
        if la is None or ra is None:
            return None
        return la + ra


@dataclass(frozen=True)
class Union(Expression):
    left: Expression
    right: Expression

    def evaluate(self, instance: Instance) -> frozenset[tuple]:
        return algebra.union(
            self.left.evaluate(instance), self.right.evaluate(instance)
        )

    def arity(self) -> int | None:
        return self.left.arity() or self.right.arity()


@dataclass(frozen=True)
class Difference(Expression):
    left: Expression
    right: Expression

    def evaluate(self, instance: Instance) -> frozenset[tuple]:
        return algebra.difference(
            self.left.evaluate(instance), self.right.evaluate(instance)
        )

    def arity(self) -> int | None:
        return self.left.arity() or self.right.arity()


@dataclass(frozen=True)
class AntiJoin(Expression):
    """Left tuples with no matching right tuple (compiles NOT literals)."""

    left: Expression
    right: Expression
    pairs: tuple[tuple[int, int], ...]

    def evaluate(self, instance: Instance) -> frozenset[tuple]:
        return algebra.antijoin(
            self.left.evaluate(instance), self.right.evaluate(instance), self.pairs
        )

    def arity(self) -> int | None:
        return self.left.arity()
