"""Interned, columnar fact storage with hash indexes.

A :class:`FactStore` holds the facts of a set of predicates.  Storage is
*columnar with interning*: every row that enters a mutable layer is
canonicalized through :mod:`repro.relalg.interning` (equal constants
share one object, equal rows share one tuple), each predicate keeps an
insertion-ordered row list whose positions are the *row ids*, and
per-position columns are materialized on demand.  Hash indexes bucket
**row ids**, not row tuples: the index for predicate ``p`` on positions
``(0, 2)`` maps ``(row[0], row[2])`` to the ids of the rows with those
values.  The compiled rule kernels of :mod:`repro.datalog.plan` walk id
buckets and read values off the shared row list; the legacy tuple-bucket
index (:meth:`FactStore.lookup`) remains for the reference interpreter.

:meth:`index_stats` reads distinct-count summaries straight off the
columns -- no bucket lists are allocated just to count keys -- and the
results are cached per store *version*: the store is version-stamped
(every mutation bumps :attr:`FactStore.version`), so repeated planner
probes against an unchanged store are dictionary hits.

Stores are *insert-only*: :meth:`add` may only grow a predicate, never
shrink it, which lets existing indexes be maintained incrementally (new
row ids are appended to their buckets) instead of rebuilt.  Insert-only
is all datalog fixpoints and cumulative Spocus state need.

A store may *layer* over a read-only ``base`` store.  Predicates not
present locally are served -- rows, indexes, ids, and stats -- by the
base; adding facts for such a predicate first copies its rows into the
local layer (copy-on-write), leaving the base untouched.  This is how
one indexed catalog database is shared by every evaluation of every
session in :mod:`repro.runtime`: the engine indexes the catalog once,
and each transducer step layers its small input/state facts on top.

Concurrency contract: a store that is only *read* (lookups, scans,
stats) may be shared between threads -- lazy index/column construction
is serialized internally, so the first concurrent touches of a
(predicate, positions) pattern build its buckets exactly once.  That is
what the shared database store of a concurrent
:meth:`~repro.pods.service.PodService.submit_batch` relies on.  Mutation
(:meth:`add`) is not synchronized against concurrent readers of the
same layer; per-step layered stores are session-private by design.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.relalg.interning import intern_row

Positions = tuple[int, ...]
Key = tuple
_Buckets = dict[Key, list[tuple]]
_IdBuckets = dict[Key, list[int]]

_EMPTY: tuple = ()


class _Pad:
    """The padding marker for short rows in columns (see :meth:`FactStore.column`)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<pad>"


#: Fills column slots of rows too short for the position.  A dedicated
#: sentinel -- not ``None`` -- so a genuine ``None`` data value is never
#: mistaken for arity padding (e.g. by ``index_stats`` distinct counts).
PAD = _Pad()


@dataclass(frozen=True)
class IndexStats:
    """Statistics of one (predicate, positions) hash index.

    ``rows`` is the relation's cardinality, ``distinct_keys`` the number
    of distinct key values on those positions.  ``rows / distinct_keys``
    is the classic average-bucket estimate of how many rows an index
    lookup returns, which is what the query planner's cost model
    consumes.
    """

    rows: int
    distinct_keys: int

    @property
    def average_bucket(self) -> float:
        if self.distinct_keys <= 0:
            return 0.0
        return self.rows / self.distinct_keys


class FactStore:
    """Indexed, insert-only collection of facts, optionally layered.

    ``facts`` seeds the local layer; ``base`` is an optional read-only
    store consulted for predicates the local layer does not define.
    """

    __slots__ = (
        "_rows",
        "_indexes",
        "_id_indexes",
        "_tuples",
        "_columns",
        "_base",
        "_frozen_cache",
        "_index_lock",
        "_version",
        "_stats_cache",
    )

    def __init__(
        self,
        facts: Mapping[str, Iterable[tuple]] | None = None,
        base: "FactStore | None" = None,
        *,
        intern: bool = False,
    ) -> None:
        # Frozensets are adopted by reference (they are immutable, and
        # the hot path hands us per-step Instance relations); anything
        # else is defensively copied and interned.  add() converts to a
        # mutable set on first write.  ``intern=True`` forces interning
        # of frozenset inputs too -- worth its one-time cost for
        # long-lived shared stores (the cached catalog database), whose
        # constants seed the process-wide pools every later equality
        # check benefits from.
        self._rows: dict[str, set[tuple] | frozenset[tuple]] = {}
        self._indexes: dict[str, dict[Positions, _Buckets]] = {}
        self._id_indexes: dict[str, dict[Positions, _IdBuckets]] = {}
        # Insertion-ordered row lists (row id = list position) and the
        # per-position columns over them, both materialized on demand.
        self._tuples: dict[str, list[tuple]] = {}
        self._columns: dict[str, dict[int, list]] = {}
        self._base = base
        self._frozen_cache: dict[str, frozenset[tuple]] = {}
        # Serializes lazy index/column construction only: concurrent
        # readers of a shared store must build each structure exactly
        # once, then read it lock-free (published fully built).
        self._index_lock = threading.Lock()
        self._version = 0
        # (predicate, positions) -> (version, IndexStats); consulted
        # and updated under the index lock (PR 5's thread-safety audit
        # applies: planner probes arrive from concurrent batch workers).
        self._stats_cache: dict[tuple[str, Positions], tuple[int, IndexStats]] = {}
        if facts:
            for name, rows in facts.items():
                if isinstance(rows, frozenset) and not intern:
                    self._rows[name] = rows
                else:
                    self._rows[name] = {
                        intern_row(tuple(row)) for row in rows
                    }

    # -- read side -------------------------------------------------------------

    @property
    def base(self) -> "FactStore | None":
        return self._base

    @property
    def version(self) -> int:
        """Monotone mutation stamp: bumped by every :meth:`add`/:meth:`ensure`.

        Planner-side caches (statistics, memoized join orders) key off
        this to stay exact while the store is unchanged.
        """
        return self._version

    def predicates(self) -> set[str]:
        """All predicates with facts (or registered empty) in any layer."""
        names = set(self._rows)
        if self._base is not None:
            names |= self._base.predicates()
        return names

    def __contains__(self, predicate: str) -> bool:
        return predicate in self._rows or (
            self._base is not None and predicate in self._base
        )

    def rows(self, predicate: str) -> set[tuple] | frozenset[tuple]:
        """All rows of ``predicate`` (empty for unknown predicates)."""
        local = self._rows.get(predicate)
        if local is not None:
            return local
        if self._base is not None:
            return self._base.rows(predicate)
        return frozenset()

    def frozen(self, predicate: str) -> frozenset[tuple]:
        """Immutable snapshot of ``predicate``'s rows, cached per add."""
        local = self._rows.get(predicate)
        if local is None:
            if self._base is not None:
                return self._base.frozen(predicate)
            return frozenset()
        if isinstance(local, frozenset):
            return local
        cached = self._frozen_cache.get(predicate)
        if cached is None:
            # Benign race: concurrent readers may both freeze the same
            # rows; the values are equal and the publish is atomic.
            cached = frozenset(local)
            self._frozen_cache[predicate] = cached
        return cached

    def count(self, predicate: str) -> int:
        return len(self.rows(predicate))

    def contains(self, predicate: str, row: tuple) -> bool:
        return row in self.rows(predicate)

    # -- columnar access -------------------------------------------------------

    def row_list(self, predicate: str) -> Sequence[tuple]:
        """The insertion-ordered row list of ``predicate`` (id = position).

        Requests for predicates served by the base layer delegate, so
        row ids agree with the base's id buckets.
        """
        rows = self._tuples.get(predicate)
        if rows is not None:
            return rows
        if predicate not in self._rows:
            if self._base is not None:
                return self._base.row_list(predicate)
            return _EMPTY
        with self._index_lock:
            rows = self._tuples.get(predicate)
            if rows is None:
                rows = list(self._rows[predicate])
                self._tuples[predicate] = rows
        return rows

    def column(self, predicate: str, position: int) -> Sequence:
        """The values of ``predicate`` at ``position``, indexed by row id.

        Rows too short for the position hold :data:`PAD` (they can
        never match a query bound on it; the arity guard filters them).
        """
        per_pred = self._columns.get(predicate)
        if per_pred is not None:
            cached = per_pred.get(position)
            if cached is not None:
                return cached
        if predicate not in self._rows:
            if self._base is not None:
                return self._base.column(predicate, position)
            return _EMPTY
        rows = self.row_list(predicate)
        with self._index_lock:
            per_pred = self._columns.setdefault(predicate, {})
            cached = per_pred.get(position)
            if cached is None:
                cached = [
                    row[position] if len(row) > position else PAD
                    for row in rows
                ]
                per_pred[position] = cached
        return cached

    def lookup_ids(
        self, predicate: str, positions: Positions, key: Key
    ) -> Sequence[int]:
        """Ids of the rows with ``row[p] == key[i]`` at each position.

        The id-bucket index is the one the compiled kernels (and the
        statistics) use; it is built on first use and maintained
        incrementally.  Base-layer predicates delegate so the shared
        catalog is indexed once.
        """
        if predicate not in self._rows:
            if self._base is not None:
                return self._base.lookup_ids(predicate, positions, key)
            return _EMPTY
        return self._id_buckets(predicate, positions).get(key, _EMPTY)

    def lookup(
        self, predicate: str, positions: Positions, key: Key
    ) -> tuple[tuple, ...] | list[tuple]:
        """Rows of ``predicate`` with ``row[p] == key[i]`` at each position.

        Tuple-bucket variant retained for the reference interpreter;
        builds the (predicate, positions) index on first use.  Requests
        for predicates served by the base layer are delegated so the
        base's indexes are shared.
        """
        if predicate not in self._rows:
            if self._base is not None:
                return self._base.lookup(predicate, positions, key)
            return ()
        return self._buckets(predicate, positions).get(key, ())

    def _id_buckets(self, predicate: str, positions: Positions) -> _IdBuckets:
        """Id-bucket map of the (local) index, built on first use."""
        per_pred = self._id_indexes.setdefault(predicate, {})
        buckets = per_pred.get(positions)
        if buckets is not None:
            return buckets
        rows = self.row_list(predicate)
        with self._index_lock:
            buckets = per_pred.get(positions)
            if buckets is not None:
                return buckets
            buckets = {}
            width = max(positions) + 1 if positions else 0
            for rid, row in enumerate(rows):
                if len(row) < width:
                    # Rows too short for the pattern can never match a
                    # query on these positions (the naive scan path
                    # skips them via its arity guard).
                    continue
                bucket_key = tuple(row[p] for p in positions)
                bucket = buckets.get(bucket_key)
                if bucket is None:
                    buckets[bucket_key] = [rid]
                else:
                    bucket.append(rid)
            per_pred[positions] = buckets
        return buckets

    def _buckets(self, predicate: str, positions: Positions) -> _Buckets:
        """Tuple-bucket map of the (local) index, built on first use.

        Build-once under concurrency: the first thread to miss takes the
        lock, re-checks, builds, and publishes the finished map in one
        assignment; later calls hit the lock-free fast path.
        """
        per_pred = self._indexes.setdefault(predicate, {})
        buckets = per_pred.get(positions)
        if buckets is not None:
            return buckets
        with self._index_lock:
            buckets = per_pred.get(positions)
            if buckets is not None:
                return buckets
            buckets = {}
            width = max(positions) + 1 if positions else 0
            for row in self._rows[predicate]:
                if len(row) < width:
                    continue
                bucket_key = tuple(row[p] for p in positions)
                buckets.setdefault(bucket_key, []).append(row)
            per_pred[positions] = buckets
        return buckets

    def index_stats(self, predicate: str, positions: Positions) -> IndexStats:
        """Cardinality and distinct-key count of ``predicate`` on ``positions``.

        Distinct counts are read off the columns (or off an id-bucket
        index that already exists) without allocating bucket lists, and
        cached per store version: the planner may probe the same
        pattern thousands of times between mutations and pays for the
        scan once.  Requests for base-layer predicates are delegated so
        the shared catalog is profiled once.
        """
        if predicate not in self._rows:
            if self._base is not None:
                return self._base.index_stats(predicate, positions)
            return IndexStats(0, 0)
        cache_key = (predicate, positions)
        version = self._version
        cached = self._stats_cache.get(cache_key)
        if cached is not None and cached[0] == version:
            return cached[1]
        with self._index_lock:
            cached = self._stats_cache.get(cache_key)
            if cached is not None and cached[0] == version:
                return cached[1]
        rows = len(self._rows[predicate])
        built = self._id_indexes.get(predicate, {}).get(positions)
        if built is not None:
            distinct = len(built)
        elif not positions:
            distinct = 1 if rows else 0
        elif len(positions) == 1:
            column = self.column(predicate, positions[0])
            distinct = len(set(column)) - (1 if PAD in column else 0)
        else:
            width = max(positions) + 1
            distinct = len(
                {
                    tuple(row[p] for p in positions)
                    for row in self.row_list(predicate)
                    if len(row) >= width
                }
            )
        stats = IndexStats(rows, distinct)
        with self._index_lock:
            self._stats_cache[cache_key] = (version, stats)
        return stats

    # -- write side ------------------------------------------------------------

    def ensure(self, predicate: str) -> None:
        """Register ``predicate`` in the local layer (possibly empty)."""
        if predicate not in self._rows and not (
            self._base is not None and predicate in self._base
        ):
            self._rows[predicate] = set()
            self._version += 1

    def add(self, predicate: str, rows: Iterable[tuple]) -> frozenset[tuple]:
        """Add ``rows``; return the subset that was actually new.

        Rows are interned on the way in (see
        :mod:`repro.relalg.interning`).  Existing indexes, row lists,
        and columns on the predicate are maintained incrementally, and
        the store version is bumped when anything actually lands.  If
        the predicate currently lives in the base layer its rows are
        first copied locally (the base is never mutated).
        """
        local = self._rows.get(predicate)
        if local is None:
            if self._base is not None and predicate in self._base:
                local = set(self._base.rows(predicate))
            else:
                local = set()
            self._rows[predicate] = local
        elif isinstance(local, frozenset):
            local = set(local)
            self._rows[predicate] = local
        fresh: list[tuple] = []
        for row in rows:
            row = intern_row(tuple(row))
            if row in local:
                continue
            local.add(row)
            fresh.append(row)
        if not fresh:
            return frozenset()
        self._version += 1
        self._frozen_cache.pop(predicate, None)
        row_list = self._tuples.get(predicate)
        first_id = len(row_list) if row_list is not None else 0
        if row_list is not None:
            row_list.extend(fresh)
        for position, column in self._columns.get(predicate, {}).items():
            column.extend(
                row[position] if len(row) > position else PAD
                for row in fresh
            )
        for positions, buckets in self._id_indexes.get(predicate, {}).items():
            width = max(positions) + 1 if positions else 0
            for offset, row in enumerate(fresh):
                if len(row) < width:
                    continue
                bucket_key = tuple(row[p] for p in positions)
                bucket = buckets.get(bucket_key)
                if bucket is None:
                    buckets[bucket_key] = [first_id + offset]
                else:
                    bucket.append(first_id + offset)
        for positions, buckets in self._indexes.get(predicate, {}).items():
            width = max(positions) + 1 if positions else 0
            for row in fresh:
                if len(row) < width:
                    continue
                bucket_key = tuple(row[p] for p in positions)
                buckets.setdefault(bucket_key, []).append(row)
        return frozenset(fresh)

    # -- export ----------------------------------------------------------------

    def as_dict(self) -> dict[str, frozenset[tuple]]:
        """All facts of all layers as a plain predicate -> rows mapping."""
        return {name: self.frozen(name) for name in self.predicates()}

    def __iter__(self) -> Iterator[str]:
        return iter(self.predicates())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}({self.count(name)})" for name in sorted(self.predicates())
        )
        return f"FactStore({parts})"
