"""Hash indexes over fact collections.

A :class:`FactStore` holds the facts of a set of predicates and builds,
lazily and per bound-position pattern, hash indexes over them: the index
for predicate ``p`` on positions ``(0, 2)`` maps ``(row[0], row[2])`` to
the rows with those values.  The datalog evaluator asks for exactly the
rows compatible with a partial binding instead of scanning the whole
relation, which turns the inner loops of a join from O(|relation|) into
O(matching rows).

Stores are *insert-only*: :meth:`add` may only grow a predicate, never
shrink it, which lets existing indexes be maintained incrementally (new
rows are appended to their buckets) instead of rebuilt.  Insert-only is
all datalog fixpoints and cumulative Spocus state need.

A store may *layer* over a read-only ``base`` store.  Predicates not
present locally are served -- rows, indexes, and all -- by the base;
adding facts for such a predicate first copies its rows into the local
layer (copy-on-write), leaving the base untouched.  This is how one
indexed catalog database is shared by every evaluation of every session
in :mod:`repro.runtime`: the engine indexes the catalog once, and each
transducer step layers its small input/state facts on top.

Concurrency contract: a store that is only *read* (lookups, scans,
stats) may be shared between threads -- the lazy index build is
serialized internally, so the first concurrent touches of a
(predicate, positions) pattern build its buckets exactly once.  That is
what the shared database store of a concurrent
:meth:`~repro.pods.service.PodService.submit_batch` relies on.  Mutation
(:meth:`add`) is not synchronized against concurrent readers of the
same layer; per-step layered stores are session-private by design.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

Positions = tuple[int, ...]
Key = tuple
_Buckets = dict[Key, list[tuple]]


@dataclass(frozen=True)
class IndexStats:
    """Statistics of one (predicate, positions) hash index.

    ``rows`` is the relation's cardinality, ``distinct_keys`` the number
    of populated buckets.  ``rows / distinct_keys`` is the classic
    average-bucket estimate of how many rows an index lookup returns,
    which is what the query planner's cost model consumes.
    """

    rows: int
    distinct_keys: int

    @property
    def average_bucket(self) -> float:
        if self.distinct_keys <= 0:
            return 0.0
        return self.rows / self.distinct_keys


class FactStore:
    """Indexed, insert-only collection of facts, optionally layered.

    ``facts`` seeds the local layer; ``base`` is an optional read-only
    store consulted for predicates the local layer does not define.
    """

    __slots__ = ("_rows", "_indexes", "_base", "_frozen_cache", "_index_lock")

    def __init__(
        self,
        facts: Mapping[str, Iterable[tuple]] | None = None,
        base: "FactStore | None" = None,
    ) -> None:
        # Frozensets are adopted by reference (they are immutable, and
        # the hot path hands us per-step Instance relations); anything
        # else is defensively copied.  add() converts to a mutable set
        # on first write.
        self._rows: dict[str, set[tuple] | frozenset[tuple]] = {}
        self._indexes: dict[str, dict[Positions, _Buckets]] = {}
        self._base = base
        self._frozen_cache: dict[str, frozenset[tuple]] = {}
        # Serializes lazy index construction only: concurrent readers of
        # a shared store must build each (predicate, positions) index
        # exactly once, then read it lock-free (published fully built).
        self._index_lock = threading.Lock()
        if facts:
            for name, rows in facts.items():
                if isinstance(rows, frozenset):
                    self._rows[name] = rows
                else:
                    self._rows[name] = {tuple(row) for row in rows}

    # -- read side -------------------------------------------------------------

    @property
    def base(self) -> "FactStore | None":
        return self._base

    def predicates(self) -> set[str]:
        """All predicates with facts (or registered empty) in any layer."""
        names = set(self._rows)
        if self._base is not None:
            names |= self._base.predicates()
        return names

    def __contains__(self, predicate: str) -> bool:
        return predicate in self._rows or (
            self._base is not None and predicate in self._base
        )

    def rows(self, predicate: str) -> set[tuple] | frozenset[tuple]:
        """All rows of ``predicate`` (empty for unknown predicates)."""
        local = self._rows.get(predicate)
        if local is not None:
            return local
        if self._base is not None:
            return self._base.rows(predicate)
        return frozenset()

    def frozen(self, predicate: str) -> frozenset[tuple]:
        """Immutable snapshot of ``predicate``'s rows, cached per add."""
        local = self._rows.get(predicate)
        if local is None:
            if self._base is not None:
                return self._base.frozen(predicate)
            return frozenset()
        if isinstance(local, frozenset):
            return local
        cached = self._frozen_cache.get(predicate)
        if cached is None:
            # Benign race: concurrent readers may both freeze the same
            # rows; the values are equal and the publish is atomic.
            cached = frozenset(local)
            self._frozen_cache[predicate] = cached
        return cached

    def count(self, predicate: str) -> int:
        return len(self.rows(predicate))

    def contains(self, predicate: str, row: tuple) -> bool:
        return row in self.rows(predicate)

    def lookup(
        self, predicate: str, positions: Positions, key: Key
    ) -> tuple[tuple, ...] | list[tuple]:
        """Rows of ``predicate`` with ``row[p] == key[i]`` at each position.

        Builds the (predicate, positions) index on first use; later calls
        are hash lookups.  Requests for predicates served by the base
        layer are delegated so the base's indexes are shared.
        """
        if predicate not in self._rows:
            if self._base is not None:
                return self._base.lookup(predicate, positions, key)
            return ()
        return self._buckets(predicate, positions).get(key, ())

    def _buckets(self, predicate: str, positions: Positions) -> _Buckets:
        """The bucket map of the (local) index, built on first use.

        Build-once under concurrency: the first thread to miss takes the
        lock, re-checks, builds, and publishes the finished map in one
        assignment; later calls hit the lock-free fast path.
        """
        per_pred = self._indexes.setdefault(predicate, {})
        buckets = per_pred.get(positions)
        if buckets is not None:
            return buckets
        with self._index_lock:
            buckets = per_pred.get(positions)
            if buckets is not None:
                return buckets
            buckets = {}
            width = max(positions) + 1 if positions else 0
            for row in self._rows[predicate]:
                if len(row) < width:
                    # Rows too short for the pattern can never match a
                    # query on these positions (the naive scan path
                    # skips them via its arity guard).
                    continue
                bucket_key = tuple(row[p] for p in positions)
                buckets.setdefault(bucket_key, []).append(row)
            per_pred[positions] = buckets
        return buckets

    def index_stats(self, predicate: str, positions: Positions) -> IndexStats:
        """Cardinality and distinct-key count of ``predicate`` on ``positions``.

        Builds (and caches) the index on first use, so the statistics the
        planner reads come from the exact structure the executor's
        lookups will hit; requests for base-layer predicates are
        delegated so the shared catalog is profiled once.
        """
        if predicate not in self._rows:
            if self._base is not None:
                return self._base.index_stats(predicate, positions)
            return IndexStats(0, 0)
        buckets = self._buckets(predicate, positions)
        return IndexStats(len(self._rows[predicate]), len(buckets))

    # -- write side ------------------------------------------------------------

    def ensure(self, predicate: str) -> None:
        """Register ``predicate`` in the local layer (possibly empty)."""
        if predicate not in self._rows and not (
            self._base is not None and predicate in self._base
        ):
            self._rows[predicate] = set()

    def add(self, predicate: str, rows: Iterable[tuple]) -> frozenset[tuple]:
        """Add ``rows``; return the subset that was actually new.

        Existing indexes on the predicate are maintained incrementally.
        If the predicate currently lives in the base layer its rows are
        first copied locally (the base is never mutated).
        """
        local = self._rows.get(predicate)
        if local is None:
            if self._base is not None and predicate in self._base:
                local = set(self._base.rows(predicate))
            else:
                local = set()
            self._rows[predicate] = local
        elif isinstance(local, frozenset):
            local = set(local)
            self._rows[predicate] = local
        fresh = [row for row in map(tuple, rows) if row not in local]
        if not fresh:
            return frozenset()
        local.update(fresh)
        self._frozen_cache.pop(predicate, None)
        for positions, buckets in self._indexes.get(predicate, {}).items():
            width = max(positions) + 1 if positions else 0
            for row in fresh:
                if len(row) < width:
                    continue
                bucket_key = tuple(row[p] for p in positions)
                buckets.setdefault(bucket_key, []).append(row)
        return frozenset(fresh)

    # -- export ----------------------------------------------------------------

    def as_dict(self) -> dict[str, frozenset[tuple]]:
        """All facts of all layers as a plain predicate -> rows mapping."""
        return {name: self.frozen(name) for name in self.predicates()}

    def __iter__(self) -> Iterator[str]:
        return iter(self.predicates())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}({self.count(name)})" for name in sorted(self.predicates())
        )
        return f"FactStore({parts})"
