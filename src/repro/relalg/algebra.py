"""Relational algebra over plain sets of tuples.

These are the workhorse operations the datalog evaluator is built on.
They operate on ``frozenset``/``set`` of tuples, positionally (attribute
names are a display concern only).  All functions return new frozensets;
inputs are never mutated.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.errors import EvaluationError

Rows = Iterable[tuple]


def select(rows: Rows, predicate: Callable[[tuple], bool]) -> frozenset[tuple]:
    """Keep the tuples satisfying ``predicate``."""
    return frozenset(row for row in rows if predicate(row))


def select_eq(rows: Rows, position: int, value: object) -> frozenset[tuple]:
    """Selection sigma_{position = value}."""
    return frozenset(row for row in rows if row[position] == value)


def select_eq_cols(rows: Rows, left: int, right: int) -> frozenset[tuple]:
    """Selection sigma_{left = right} (two columns of the same relation)."""
    return frozenset(row for row in rows if row[left] == row[right])


def project(rows: Rows, positions: Sequence[int]) -> frozenset[tuple]:
    """Projection pi_{positions} (may duplicate or reorder columns)."""
    positions = tuple(positions)
    return frozenset(tuple(row[p] for p in positions) for row in rows)


def product(left: Rows, right: Rows) -> frozenset[tuple]:
    """Cartesian product; tuples are concatenated."""
    right_rows = list(right)
    return frozenset(l + r for l in left for r in right_rows)


def natural_join(
    left: Rows, right: Rows, pairs: Sequence[tuple[int, int]]
) -> frozenset[tuple]:
    """Equi-join on the given (left-position, right-position) pairs.

    The result concatenates the full left tuple with the full right
    tuple; callers project afterwards.  A hash join is used: the right
    side is indexed on its join key.
    """
    pairs = tuple(pairs)
    if not pairs:
        return product(left, right)
    index: dict[tuple, list[tuple]] = {}
    right_positions = tuple(rp for _, rp in pairs)
    for row in right:
        key = tuple(row[p] for p in right_positions)
        index.setdefault(key, []).append(row)
    left_positions = tuple(lp for lp, _ in pairs)
    out = set()
    for row in left:
        key = tuple(row[p] for p in left_positions)
        for match in index.get(key, ()):
            out.add(row + match)
    return frozenset(out)


def semijoin(
    left: Rows, right: Rows, pairs: Sequence[tuple[int, int]]
) -> frozenset[tuple]:
    """Left semijoin: left tuples with at least one right match."""
    right_positions = tuple(rp for _, rp in pairs)
    keys = {tuple(row[p] for p in right_positions) for row in right}
    left_positions = tuple(lp for lp, _ in pairs)
    return frozenset(
        row for row in left if tuple(row[p] for p in left_positions) in keys
    )


def antijoin(
    left: Rows, right: Rows, pairs: Sequence[tuple[int, int]]
) -> frozenset[tuple]:
    """Left antijoin: left tuples with no right match (for NOT literals)."""
    right_positions = tuple(rp for _, rp in pairs)
    keys = {tuple(row[p] for p in right_positions) for row in right}
    left_positions = tuple(lp for lp, _ in pairs)
    return frozenset(
        row for row in left if tuple(row[p] for p in left_positions) not in keys
    )


def union(left: Rows, right: Rows) -> frozenset[tuple]:
    """Set union; arities must agree (checked on non-empty inputs)."""
    left = frozenset(left)
    right = frozenset(right)
    _check_union_arity(left, right)
    return left | right


def difference(left: Rows, right: Rows) -> frozenset[tuple]:
    """Set difference left - right."""
    left = frozenset(left)
    right = frozenset(right)
    _check_union_arity(left, right)
    return left - right


def intersection(left: Rows, right: Rows) -> frozenset[tuple]:
    """Set intersection."""
    left = frozenset(left)
    right = frozenset(right)
    _check_union_arity(left, right)
    return left & right


def _check_union_arity(left: frozenset[tuple], right: frozenset[tuple]) -> None:
    if left and right:
        la = len(next(iter(left)))
        ra = len(next(iter(right)))
        if la != ra:
            raise EvaluationError(
                f"arity mismatch in set operation: {la} vs {ra}"
            )
