"""repro: relational transducers for electronic commerce.

A full reproduction of Abiteboul, Vianu, Fordham & Yesha (PODS 1998 /
JCSS 2000).  The most common entry points are re-exported here; the
subpackages hold the full API:

* :mod:`repro.core` -- the transducer model (Spocus and general);
* :mod:`repro.verify` -- the decision procedures of Sections 3-4;
* :mod:`repro.commerce` -- the paper's business models and tooling;
* :mod:`repro.automata` -- expressiveness results (Sec 3.1, Thm 4.2);
* :mod:`repro.datalog`, :mod:`repro.relalg`, :mod:`repro.logic` -- the
  substrates (rule language, relational model, BSR/SAT solving).
"""

from repro.core import RelationalTransducer, SpocusTransducer, parse_transducer
from repro.verify import (
    AllOf,
    AnyOf,
    ErrorFreeness,
    Goal,
    GoalReachability,
    LogValidity,
    OnlineAuditor,
    PropertySpec,
    TemporalProperty,
    Verdict,
    Verifier,
    holds_on_all_runs,
    is_goal_reachable,
    is_valid_log,
)

__version__ = "1.1.0"

__all__ = [
    "RelationalTransducer",
    "SpocusTransducer",
    "parse_transducer",
    "Goal",
    # typed verification surface (PR 4)
    "PropertySpec",
    "LogValidity",
    "GoalReachability",
    "TemporalProperty",
    "ErrorFreeness",
    "AllOf",
    "AnyOf",
    "Verifier",
    "Verdict",
    "OnlineAuditor",
    # deprecated seed-era entry points
    "is_valid_log",
    "is_goal_reachable",
    "holds_on_all_runs",
    "__version__",
]
