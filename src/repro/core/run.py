"""Runs of relational transducers.

A :class:`Run` records the input, state, output, and log sequences of a
transducer execution (Section 2.2).  :func:`format_run_figure` renders a
run in the style of the paper's Figures 1 and 2, which the benchmark
harness uses to regenerate those figures verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.relalg.instance import Instance
from repro.relalg.schema import DatabaseSchema


@dataclass(frozen=True)
class Run:
    """A finite run: sequences of instances, step-aligned.

    ``inputs[i]``, ``states[i]``, ``outputs[i]``, ``logs[i]`` are the
    input consumed, the state *after* the step, the output produced, and
    the log entry of step ``i`` (0-based; the paper numbers from 1).
    """

    database: Instance
    inputs: tuple[Instance, ...]
    states: tuple[Instance, ...]
    outputs: tuple[Instance, ...]
    logs: tuple[Instance, ...]

    def __post_init__(self) -> None:
        lengths = {
            len(self.inputs),
            len(self.states),
            len(self.outputs),
            len(self.logs),
        }
        if len(lengths) > 1:
            raise ValueError(f"misaligned run sequences: lengths {lengths}")

    def __len__(self) -> int:
        return len(self.inputs)

    @property
    def last_output(self) -> Instance:
        if not self.outputs:
            raise ValueError("empty run has no last output")
        return self.outputs[-1]

    @property
    def last_state(self) -> Instance:
        if not self.states:
            raise ValueError("empty run has no last state")
        return self.states[-1]

    def log_sequence(self) -> tuple[Instance, ...]:
        return self.logs

    def output_facts(self, step: int) -> set[tuple[str, tuple]]:
        """The output facts of a step as (relation, tuple) pairs."""
        return set(self.outputs[step].facts())

    def prefix(self, length: int) -> "Run":
        """The run truncated to its first ``length`` steps."""
        return Run(
            self.database,
            self.inputs[:length],
            self.states[:length],
            self.outputs[:length],
            self.logs[:length],
        )


def log_of_step(
    input_instance: Instance,
    output_instance: Instance,
    log_schema: DatabaseSchema,
) -> Instance:
    """Compute ``(I_i ∪ O_i)|log`` for one step (Section 2.2, item 3)."""
    data = {}
    for rel in log_schema:
        rows: frozenset[tuple] = frozenset()
        if rel.name in input_instance.schema:
            rows |= input_instance[rel.name]
        if rel.name in output_instance.schema:
            rows |= output_instance[rel.name]
        data[rel.name] = rows
    return Instance(log_schema, data)


def _format_facts(instance: Instance) -> str:
    parts = []
    for name in sorted(instance.schema.names):
        for row in sorted(instance[name], key=repr):
            if row:
                rendered = ", ".join(str(v) for v in row)
                parts.append(f"{name}({rendered})")
            else:
                parts.append(name)
    return ", ".join(parts) if parts else "∅"


def format_run_figure(run: Run, title: str = "run") -> str:
    """Render a run as an input/output table like the paper's Fig. 1-2."""
    lines = [f"{title}:"]
    width = max((len(f"step {i + 1}") for i in range(len(run))), default=6)
    for i in range(len(run)):
        step = f"step {i + 1}".ljust(width)
        lines.append(f"  {step}  input:  {_format_facts(run.inputs[i])}")
        lines.append(f"  {' ' * width}  output: {_format_facts(run.outputs[i])}")
    return "\n".join(lines)


def logs_equal(left: Sequence[Instance], right: Sequence[Instance]) -> bool:
    """Step-wise equality of two log sequences."""
    if len(left) != len(right):
        return False
    return all(a == b for a, b in zip(left, right))


def format_log(logs: Iterable[Instance]) -> str:
    """Render a log sequence compactly, one step per line."""
    return "\n".join(
        f"  step {i + 1}: {_format_facts(entry)}"
        for i, entry in enumerate(logs)
    )
