"""Run acceptance mechanisms (Section 4).

The paper enriches transducers into *acceptors* of input sequences via
three distinguished output relations, and proves the mechanisms
pairwise incomparable for Spocus transducers:

1. **error-free** -- a run is valid iff no output contains a fact over
   the 0-ary relation ``error``;
2. **ok** -- a run is valid iff *every* output contains ``ok``;
3. **accept** -- a run is valid iff it is finite and its *last* output
   contains ``accept``.

The rest of the paper (and of this library) focuses on error-free runs,
which can enforce the temporal input restrictions of class Tsdi
(Theorem 4.1).
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

from repro.core.run import Run
from repro.relalg.instance import Instance

ERROR_RELATION = "error"
OK_RELATION = "ok"
ACCEPT_RELATION = "accept"


class AcceptanceMode(Enum):
    """The three acceptance mechanisms of Section 4."""

    ERROR_FREE = "error-free"
    OK = "ok"
    ACCEPT = "accept"


ERROR_FREE = AcceptanceMode.ERROR_FREE
OK = AcceptanceMode.OK
ACCEPT = AcceptanceMode.ACCEPT


def _relation_nonempty(instance: Instance, name: str) -> bool:
    return name in instance.schema and bool(instance[name])


def is_error_free(run: Run, error_relation: str = ERROR_RELATION) -> bool:
    """True iff no output of the run contains an ``error`` fact."""
    return not any(
        _relation_nonempty(output, error_relation) for output in run.outputs
    )


def first_error_step(run: Run, error_relation: str = ERROR_RELATION) -> int | None:
    """The 0-based index of the first erroring step, or None."""
    for index, output in enumerate(run.outputs):
        if _relation_nonempty(output, error_relation):
            return index
    return None


def is_ok_run(run: Run, ok_relation: str = OK_RELATION) -> bool:
    """True iff every output of the run contains ``ok``."""
    return all(
        _relation_nonempty(output, ok_relation) for output in run.outputs
    )


def is_accepted(run: Run, accept_relation: str = ACCEPT_RELATION) -> bool:
    """True iff the run is non-empty and the last output contains ``accept``."""
    if not run.outputs:
        return False
    return _relation_nonempty(run.outputs[-1], accept_relation)


def run_is_valid(run: Run, mode: AcceptanceMode) -> bool:
    """Dispatch over the three mechanisms."""
    if mode is AcceptanceMode.ERROR_FREE:
        return is_error_free(run)
    if mode is AcceptanceMode.OK:
        return is_ok_run(run)
    if mode is AcceptanceMode.ACCEPT:
        return is_accepted(run)
    raise ValueError(f"unknown acceptance mode: {mode!r}")


def error_free_prefix(run: Run) -> Run:
    """The longest error-free prefix of a run."""
    step = first_error_step(run)
    if step is None:
        return run
    return run.prefix(step)


def filter_error_free(runs: Iterable[Run]) -> list[Run]:
    """Keep only the error-free runs."""
    return [run for run in runs if is_error_free(run)]
