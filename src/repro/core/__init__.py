"""Relational transducers (the paper's primary contribution).

A relational transducer (Section 2.2) maps a sequence of input relation
instances to sequences of state, output, and log instances, relative to
a fixed database.  This subpackage provides the general model
(:class:`~repro.core.transducer.RelationalTransducer`), the restricted
Spocus class (:class:`~repro.core.spocus.SpocusTransducer`), run and log
machinery, the three acceptance mechanisms of Section 4, and a parser
for the paper's concrete program syntax.
"""

from repro.core.schema import TransducerSchema
from repro.core.run import Run, format_run_figure, log_of_step
from repro.core.transducer import FunctionalTransducer, RelationalTransducer
from repro.core.spocus import SpocusTransducer, past
from repro.core.parser import parse_transducer
from repro.core.acceptors import (
    ACCEPT,
    ERROR_FREE,
    OK,
    AcceptanceMode,
    is_accepted,
    is_error_free,
    is_ok_run,
    run_is_valid,
)

__all__ = [
    "TransducerSchema",
    "Run",
    "log_of_step",
    "format_run_figure",
    "RelationalTransducer",
    "FunctionalTransducer",
    "SpocusTransducer",
    "past",
    "parse_transducer",
    "AcceptanceMode",
    "ERROR_FREE",
    "OK",
    "ACCEPT",
    "is_error_free",
    "is_ok_run",
    "is_accepted",
    "run_is_valid",
]
