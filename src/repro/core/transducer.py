"""The general relational transducer model (Section 2.2).

A relational transducer is a transducer schema together with a state
function σ and an output function ω.  The base class implements the run
semantics; subclasses supply the two functions.  The unrestricted
:class:`FunctionalTransducer` accepts arbitrary Python callables --
useful for tests and for demonstrating why unrestricted transducers are
unverifiable -- while :class:`~repro.core.spocus.SpocusTransducer`
implements the restricted class the paper's results are about.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import SchemaError
from repro.core.run import Run, log_of_step
from repro.core.schema import TransducerSchema
from repro.relalg.indexes import FactStore
from repro.relalg.instance import Instance


InputLike = Instance | Mapping[str, Iterable[tuple]]


class RelationalTransducer:
    """Base class implementing the run semantics of Section 2.2.

    Subclasses must implement :meth:`state_function` (σ) and
    :meth:`output_function` (ω).  Both receive the current input, the
    *previous* state, and the database, exactly as in the paper:
    ``S_i = σ(I_i, S_{i-1}, D)`` and ``O_i = ω(I_i, S_{i-1}, D)``.
    """

    _DB_CACHE_SLOTS = 8

    #: When True (the default), sessions and runs may use a per-session
    #: step context (compiled-plan reuse + cross-step incremental
    #: evaluation) where the subclass supports one.  Benchmarks flip it
    #: off to measure full per-step re-evaluation.
    incremental_stepping = True

    def __init__(self, schema: TransducerSchema) -> None:
        self._schema = schema
        # id(instance) -> (instance, store); the instance reference keeps
        # the id stable for as long as the entry lives.
        self._db_store_cache: dict[int, tuple[Instance, FactStore]] = {}

    @property
    def schema(self) -> TransducerSchema:
        return self._schema

    def database_store(self, database: Instance) -> FactStore:
        """A shared, lazily indexed view of ``database``'s facts.

        Recently seen database instances are cached (keyed by identity,
        a few slots, oldest evicted), so every step of a run -- and
        every session of a
        :class:`~repro.runtime.engine.MultiSessionEngine` stepping over
        one shared catalog -- reuses the same hash indexes instead of
        rebuilding them per evaluation, even when one transducer
        alternates between several databases.
        """
        cached = self._db_store_cache.get(id(database))
        if cached is not None and cached[0] is database:
            return cached[1]
        # intern=True: the catalog is long-lived and shared by every
        # session, so its constants seed the process-wide intern pools
        # once, and per-step facts mentioning catalog values hit the
        # identity fast path in joins.
        store = FactStore(
            {name: database[name] for name in database.schema.names},
            intern=True,
        )
        if len(self._db_store_cache) >= self._DB_CACHE_SLOTS:
            self._db_store_cache.pop(next(iter(self._db_store_cache)))
        self._db_store_cache[id(database)] = (database, store)
        return store

    # -- to be provided by subclasses ---------------------------------------------

    def state_function(
        self, inputs: Instance, state: Instance, database: Instance
    ) -> Instance:
        raise NotImplementedError

    def output_function(
        self, inputs: Instance, state: Instance, database: Instance
    ) -> Instance:
        raise NotImplementedError

    # -- per-session step contexts --------------------------------------------------

    def new_step_context(self, database: Instance):
        """A per-session evaluation context, or ``None``.

        Subclasses whose output function is a datalog program return an
        object (e.g. a
        :class:`~repro.datalog.plan.physical.IncrementalExecutor`) that
        caches the compiled plan and per-rule results across the steps
        of ONE session over ONE database; the base class has nothing to
        cache.  Contexts must be observationally transparent: stepping
        with one yields exactly the outputs of :meth:`output_function`.
        """
        return None

    def output_with_context(
        self, ctx, inputs: Instance, state: Instance, database: Instance
    ) -> Instance:
        """ω with an optional step context (default: ignore it)."""
        return self.output_function(inputs, state, database)

    # -- run semantics --------------------------------------------------------------

    def initial_state(self) -> Instance:
        """S_0: all state relations empty."""
        return Instance.empty(self._schema.state)

    def coerce_input(self, value: InputLike) -> Instance:
        """Accept an instance or a mapping of relation name to tuples."""
        if isinstance(value, Instance):
            if value.schema != self._schema.inputs:
                return value.project_onto(self._schema.inputs)
            return value
        return Instance(self._schema.inputs, dict(value))

    def coerce_database(self, value: InputLike) -> Instance:
        if isinstance(value, Instance):
            if value.schema != self._schema.database:
                return value.project_onto(self._schema.database)
            return value
        return Instance(self._schema.database, dict(value))

    def run(
        self,
        database: InputLike,
        input_sequence: Sequence[InputLike],
    ) -> Run:
        """Execute the transducer; return the full run."""
        db = self.coerce_database(database)
        state = self.initial_state()
        log_schema = self._schema.log_schema
        ctx = self.new_step_context(db)
        inputs: list[Instance] = []
        states: list[Instance] = []
        outputs: list[Instance] = []
        logs: list[Instance] = []
        for raw in input_sequence:
            current = self.coerce_input(raw)
            output = self.output_with_context(ctx, current, state, db)
            if output.schema != self._schema.outputs:
                raise SchemaError(
                    "output function returned an instance of the wrong schema"
                )
            next_state = self.state_function(current, state, db)
            if next_state.schema != self._schema.state:
                raise SchemaError(
                    "state function returned an instance of the wrong schema"
                )
            inputs.append(current)
            outputs.append(output)
            states.append(next_state)
            logs.append(log_of_step(current, output, log_schema))
            state = next_state
        return Run(db, tuple(inputs), tuple(states), tuple(outputs), tuple(logs))

    def step(
        self, database: InputLike, state: Instance, inputs: InputLike
    ) -> tuple[Instance, Instance]:
        """Single transition: returns (next_state, output)."""
        db = self.coerce_database(database)
        current = self.coerce_input(inputs)
        output = self.output_function(current, state, db)
        next_state = self.state_function(current, state, db)
        return next_state, output

    def log_of(
        self, database: InputLike, input_sequence: Sequence[InputLike]
    ) -> tuple[Instance, ...]:
        """Convenience: the log sequence of the run on ``input_sequence``."""
        return self.run(database, input_sequence).logs


class FunctionalTransducer(RelationalTransducer):
    """A transducer whose σ and ω are arbitrary Python callables.

    This is the unrestricted model: the paper notes that all the
    interesting verification questions are undecidable for it (even for
    first-order definable functions).  The library uses it as a harness
    for counterexamples and as the common denominator in tests.
    """

    def __init__(
        self,
        schema: TransducerSchema,
        state_function: Callable[[Instance, Instance, Instance], Instance],
        output_function: Callable[[Instance, Instance, Instance], Instance],
    ) -> None:
        super().__init__(schema)
        self._state_fn = state_function
        self._output_fn = output_function

    def state_function(
        self, inputs: Instance, state: Instance, database: Instance
    ) -> Instance:
        return self._state_fn(inputs, state, database)

    def output_function(
        self, inputs: Instance, state: Instance, database: Instance
    ) -> Instance:
        return self._output_fn(inputs, state, database)
