"""Transducer schemas.

Section 2.2: a transducer schema is (in, state, out, db, log) where the
first four are pairwise disjoint relation schemas and log ⊆ in ∪ out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.errors import SchemaError
from repro.relalg.schema import DatabaseSchema


@dataclass(frozen=True)
class TransducerSchema:
    """The five-component schema of a relational transducer.

    ``log`` is the tuple of log relation *names* (a subset of the input
    and output relation names); the paper calls the log *full* when it
    contains all of them.
    """

    inputs: DatabaseSchema
    state: DatabaseSchema
    outputs: DatabaseSchema
    database: DatabaseSchema
    log: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        named = {
            "input": self.inputs,
            "state": self.state,
            "output": self.outputs,
            "database": self.database,
        }
        for (name_a, schema_a), (name_b, schema_b) in combinations(
            named.items(), 2
        ):
            overlap = set(schema_a.names) & set(schema_b.names)
            if overlap:
                raise SchemaError(
                    f"{name_a} and {name_b} relations overlap: "
                    f"{sorted(overlap)}"
                )
        visible = set(self.inputs.names) | set(self.outputs.names)
        stray = set(self.log) - visible
        if stray:
            raise SchemaError(
                f"log relations must be inputs or outputs; "
                f"not so: {sorted(stray)}"
            )
        if len(set(self.log)) != len(self.log):
            raise SchemaError("duplicate names in log")

    # -- derived schemas ---------------------------------------------------------

    @property
    def log_schema(self) -> DatabaseSchema:
        """Schema of the log relations (drawn from inputs and outputs)."""
        io = self.inputs.merge(self.outputs)
        return io.restrict(self.log)

    def io_schema(self) -> DatabaseSchema:
        return self.inputs.merge(self.outputs)

    def visible_schema(self) -> DatabaseSchema:
        """Everything an output rule may mention: in ∪ state ∪ db."""
        return self.inputs.merge(self.state).merge(self.database)

    def is_full_log(self) -> bool:
        """True when the log contains every input and output relation."""
        return set(self.log) == set(self.inputs.names) | set(self.outputs.names)

    def logged_inputs(self) -> tuple[str, ...]:
        return tuple(n for n in self.log if n in self.inputs)

    def logged_outputs(self) -> tuple[str, ...]:
        return tuple(n for n in self.log if n in self.outputs)

    def with_log(self, log: tuple[str, ...]) -> "TransducerSchema":
        """Same schema with a different log component."""
        return TransducerSchema(
            self.inputs, self.state, self.outputs, self.database, tuple(log)
        )
