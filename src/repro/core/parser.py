"""Parser for full transducer program texts.

Accepts the concrete syntax the paper uses to print its example
transducers (``short``, ``friendly``)::

    transducer short
    schema
      database: price/2, available/1;
      input: order/1, pay/2;
      state: past-order, past-pay;
      output: sendbill/2, deliver/1;
      log: sendbill, pay, deliver;
    state rules
      past-order(X) +:- order(X);
      past-pay(X,Y) +:- pay(X,Y);
    output rules
      sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
      deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);

Arity annotations (``/n``) are optional: arities are inferred from rule
atoms when possible.  The ``state:`` line is optional for Spocus
transducers, whose state schema is derived from the inputs.

When the state rules are exactly the canonical ``past-R(x̄) +:- R(x̄)``
rules, a :class:`~repro.core.spocus.SpocusTransducer` is returned;
otherwise (projection or other non-Spocus state rules) an
:class:`~repro.core.spocus.ExtendedStateTransducer` is returned.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import ParseError
from repro.core.spocus import (
    ExtendedStateTransducer,
    SpocusTransducer,
    derive_state_schema,
    past,
)
from repro.datalog.ast import Program, Rule, Variable
from repro.datalog.parser import parse_program
from repro.relalg.schema import DatabaseSchema, RelationSchema

_SECTION_HEADERS = {
    "schema": "schema",
    "relations": "schema",  # the paper uses both spellings
    "state rules": "state rules",
    "output rules": "output rules",
}

_DECL_RE = re.compile(
    r"^\s*(database|input|state|output|log)\s*:\s*(.*)$", re.IGNORECASE
)
_NAME_ARITY_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_-]*)\s*(?:/\s*(\d+))?$")


@dataclass
class _Declarations:
    database: list[tuple[str, int | None]] = field(default_factory=list)
    input: list[tuple[str, int | None]] = field(default_factory=list)
    state: list[tuple[str, int | None]] = field(default_factory=list)
    output: list[tuple[str, int | None]] = field(default_factory=list)
    log: list[str] = field(default_factory=list)


def _split_sections(source: str) -> tuple[str | None, _Declarations, str, str]:
    """Return (name, declarations, state-rule text, output-rule text)."""
    name: str | None = None
    decls = _Declarations()
    state_lines: list[str] = []
    output_lines: list[str] = []
    section = None
    pending_decl: str | None = None

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        stripped = line.strip()
        if not stripped:
            continue
        lowered = stripped.lower().rstrip(";").strip()
        header_match = re.match(r"^transducer\s+(\S+)$", stripped, re.IGNORECASE)
        if header_match and section is None:
            name = header_match.group(1)
            continue
        if lowered in _SECTION_HEADERS:
            section = _SECTION_HEADERS[lowered]
            pending_decl = None
            continue
        if section == "schema" or (section is None and _DECL_RE.match(stripped)):
            section = section or "schema"
            match = _DECL_RE.match(stripped)
            if match:
                pending_decl = match.group(1).lower()
                remainder = match.group(2)
            else:
                remainder = stripped
                if pending_decl is None:
                    raise ParseError(
                        f"expected a declaration like 'input: ...': {stripped!r}",
                        line_no,
                    )
            _parse_declaration(decls, pending_decl, remainder, line_no)
            if remainder.rstrip().endswith(";"):
                pending_decl = None
            continue
        if section == "state rules":
            state_lines.append(line)
            continue
        if section == "output rules":
            output_lines.append(line)
            continue
        raise ParseError(f"unexpected line outside any section: {stripped!r}", line_no)

    return name, decls, "\n".join(state_lines), "\n".join(output_lines)


def _parse_declaration(
    decls: _Declarations, kind: str, text: str, line_no: int
) -> None:
    text = text.strip().rstrip(";").strip()
    if not text:
        return
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        match = _NAME_ARITY_RE.match(chunk)
        if not match:
            raise ParseError(f"bad relation declaration {chunk!r}", line_no)
        name, arity_text = match.group(1), match.group(2)
        arity = int(arity_text) if arity_text is not None else None
        if kind == "log":
            decls.log.append(name)
        else:
            getattr(decls, kind).append((name, arity))


def _infer_arities(
    declared: list[tuple[str, int | None]],
    usage: dict[str, int],
    kind: str,
) -> DatabaseSchema:
    relations = []
    for name, arity in declared:
        if arity is None:
            arity = usage.get(name)
            if arity is None:
                raise ParseError(
                    f"cannot infer arity of {kind} relation {name!r}: it is "
                    "not used in any rule; annotate it as "
                    f"'{name}/<arity>'"
                )
        relations.append(RelationSchema(name, arity))
    return DatabaseSchema(relations)


def _atom_usage(*programs: Program) -> dict[str, int]:
    usage: dict[str, int] = {}
    for program in programs:
        for rule in program:
            for atom in (
                [rule.head] + rule.positive_atoms() + rule.negated_atoms()
            ):
                existing = usage.get(atom.predicate)
                if existing is not None and existing != atom.arity:
                    raise ParseError(
                        f"relation {atom.predicate!r} used with arities "
                        f"{existing} and {atom.arity}"
                    )
                usage[atom.predicate] = atom.arity
    return usage


def _is_canonical_past_rule(rule: Rule) -> bool:
    """True for ``past-R(X1..Xk) +:- R(X1..Xk)`` exactly."""
    if not rule.cumulative or len(rule.body) != 1:
        return False
    body = rule.positive_atoms()
    if len(body) != 1:
        return False
    atom = body[0]
    head = rule.head
    if head.predicate != past(atom.predicate):
        return False
    if head.terms != atom.terms:
        return False
    return all(isinstance(t, Variable) for t in head.terms) and len(
        set(head.terms)
    ) == len(head.terms)


def parse_transducer(
    source: str,
) -> SpocusTransducer | ExtendedStateTransducer:
    """Parse a full transducer program.

    Returns a :class:`SpocusTransducer` when the state rules are the
    canonical cumulative ones (or omitted), and an
    :class:`ExtendedStateTransducer` otherwise.
    """
    _name, decls, state_text, output_text = _split_sections(source)
    state_program = parse_program(state_text)
    output_program = parse_program(output_text)
    usage = _atom_usage(state_program, output_program)

    inputs = _infer_arities(decls.input, usage, "input")
    outputs = _infer_arities(decls.output, usage, "output")
    database = _infer_arities(decls.database, usage, "database")

    canonical = all(_is_canonical_past_rule(r) for r in state_program)
    declared_state_names = {name for name, _ in decls.state}
    derived = derive_state_schema(inputs)
    extra_state = declared_state_names - set(derived.names)

    if canonical and not extra_state:
        return SpocusTransducer(
            inputs, outputs, database, output_program, tuple(decls.log)
        )

    # Extended transducer: explicit state schema (declared ∪ rule heads).
    state_decls = list(decls.state)
    known = {name for name, _ in state_decls}
    for rule in state_program:
        if rule.head.predicate not in known:
            known.add(rule.head.predicate)
            state_decls.append((rule.head.predicate, rule.head.arity))
    state = _infer_arities(state_decls, usage, "state")
    return ExtendedStateTransducer(
        inputs,
        state,
        outputs,
        database,
        state_program,
        output_program,
        tuple(decls.log),
    )
