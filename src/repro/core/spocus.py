"""Spocus transducers (Section 3.1) and the projection extension.

A Spocus ("semipositive output, cumulative state") transducer restricts
the general model as follows:

1. the state relations are exactly ``past-R`` for each input relation
   ``R``, of the same arity;
2. the state function cumulates inputs:
   ``σ(I, S, D)(past-R) = S(past-R) ∪ I(R)``;
3. outputs are defined by a finite set of rules ``A₀ :- A₁, …, Aₙ``
   where ``A₀`` is an output atom, each ``Aᵢ`` is a possibly negated
   atom over input/state/database relations or an inequality, and every
   variable occurs positively in the body.

Because output predicates cannot occur in rule bodies, the output
program is automatically nonrecursive and semipositive.  All conditions
are checked at construction time; violations raise
:class:`~repro.errors.SpocusViolation` naming the offending rule.

:class:`ExtendedStateTransducer` implements the *non-Spocus* extension
of Proposition 3.1 (state rules with projection), which the paper
proves makes log validity undecidable.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SchemaError, SpocusViolation
from repro.core.schema import TransducerSchema
from repro.core.transducer import RelationalTransducer
from repro.datalog.ast import Program, Rule
from repro.datalog import evaluate as _evaluate
from repro.datalog.evaluate import evaluate_program
from repro.datalog.parser import parse_program
from repro.datalog.plan import (
    PhysicalPlan,
    compile_cached,
    incremental_executor_for,
)
from repro.datalog.safety import check_rule_safety
from repro.errors import SafetyError
from repro.relalg.indexes import FactStore
from repro.relalg.instance import Instance
from repro.relalg.schema import DatabaseSchema, RelationSchema

PAST_PREFIX = "past-"


def stage_store(
    transducer: RelationalTransducer,
    database: Instance,
    *instances: Instance,
) -> FactStore:
    """A per-stage fact store layering ``instances`` over the database.

    Each instance contributes its relations as small in-memory facts on
    top of the transducer's shared (cached, hash-indexed) store for
    ``database``, so catalog indexes are built once per database rather
    than once per stage.  The runtime layers (input, state) for rule
    evaluation; the :mod:`repro.verify.api` monitors layer whatever view
    of a stage their property program reads (outputs and state for
    T_past-input properties, inputs and prior state for Tsdi
    disciplines).
    """
    local: dict[str, frozenset[tuple]] = {}
    for instance in instances:
        for name in instance.schema.names:
            local[name] = instance[name]
    return FactStore(local, base=transducer.database_store(database))


def _step_store(
    transducer: RelationalTransducer,
    inputs: Instance,
    state: Instance,
    database: Instance,
) -> FactStore:
    """Per-step fact store: input/state facts over the shared database."""
    return stage_store(transducer, database, inputs, state)


def past(name: str) -> str:
    """The state relation recording the history of input ``name``."""
    return PAST_PREFIX + name


def _program_step_context(transducer: RelationalTransducer, program: Program):
    """A per-session incremental executor for ``program``, or ``None``.

    Input relations are volatile (replaced every step), state relations
    are monotone (both Spocus and the projection extension cumulate),
    and the database is static -- exactly the contract of
    :meth:`~repro.datalog.plan.physical.IncrementalExecutor.step`.
    Programs outside the incremental scope (non-flat) fall back to full
    per-step evaluation by returning ``None``.
    """
    if not transducer.incremental_stepping:
        return None
    return incremental_executor_for(
        program,
        volatile=transducer.schema.inputs.names,
        monotone=transducer.schema.state.names,
    )


def _output_via_context(
    transducer: RelationalTransducer,
    ctx,
    inputs: Instance,
    state: Instance,
    database: Instance,
) -> Instance:
    """Derive the output instance through a step context (or without)."""
    if ctx is None or _evaluate._FORCE_NAIVE:
        # No context, or the naive-reference hook is active: take the
        # stateless path so naive_evaluation() keeps measuring the whole
        # pipeline.  A skipped step is safe for the executor: its delta
        # tracking is against whatever state it last saw.
        return transducer.output_function(inputs, state, database)
    facts = _step_store(transducer, inputs, state, database)
    monotone = {name: state[name] for name in state.schema.names}
    derived = ctx.step(facts, monotone)
    return Instance(
        transducer.schema.outputs,
        {
            rel.name: derived.get(rel.name, frozenset())
            for rel in transducer.schema.outputs
        },
    )


def derive_state_schema(inputs: DatabaseSchema) -> DatabaseSchema:
    """The Spocus state schema: one ``past-R`` per input ``R``."""
    return DatabaseSchema(
        RelationSchema(past(rel.name), rel.arity) for rel in inputs
    )


class SpocusTransducer(RelationalTransducer):
    """The restricted transducer class of Section 3.1."""

    def __init__(
        self,
        inputs: DatabaseSchema,
        outputs: DatabaseSchema,
        database: DatabaseSchema,
        output_program: Program | str,
        log: Sequence[str] = (),
    ) -> None:
        if isinstance(output_program, str):
            output_program = parse_program(output_program)
        state = derive_state_schema(inputs)
        schema = TransducerSchema(inputs, state, outputs, database, tuple(log))
        super().__init__(schema)
        self._program = output_program
        self._validate_program()

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def make(
        cls,
        inputs: dict[str, int],
        outputs: dict[str, int],
        database: dict[str, int] | None = None,
        rules: str | Program = "",
        log: Sequence[str] = (),
    ) -> "SpocusTransducer":
        """Compact constructor from name->arity dictionaries."""
        return cls(
            DatabaseSchema.of(**inputs),
            DatabaseSchema.of(**outputs),
            DatabaseSchema.of(**(database or {})),
            rules,
            log,
        )

    # -- static validation ---------------------------------------------------------

    def _validate_program(self) -> None:
        schema = self.schema
        visible = schema.visible_schema()
        for rule in self._program:
            if rule.cumulative:
                raise SpocusViolation(
                    f"rule {rule}: Spocus transducers have implicit state "
                    "rules; explicit cumulative rules are not allowed"
                )
            head = rule.head
            if head.predicate not in schema.outputs:
                raise SpocusViolation(
                    f"rule {rule}: head {head.predicate!r} is not an "
                    "output relation"
                )
            declared = schema.outputs.arity(head.predicate)
            if head.arity != declared:
                raise SpocusViolation(
                    f"rule {rule}: head arity {head.arity} != declared "
                    f"arity {declared}"
                )
            for atom in rule.positive_atoms() + rule.negated_atoms():
                if atom.predicate in schema.outputs:
                    raise SpocusViolation(
                        f"rule {rule}: output relation {atom.predicate!r} "
                        "used in a rule body (outputs are not recursive)"
                    )
                if atom.predicate not in visible:
                    raise SpocusViolation(
                        f"rule {rule}: body relation {atom.predicate!r} is "
                        "not an input, state, or database relation"
                    )
                if atom.arity != visible.arity(atom.predicate):
                    raise SpocusViolation(
                        f"rule {rule}: atom {atom} has arity {atom.arity}, "
                        f"declared {visible.arity(atom.predicate)}"
                    )
            try:
                check_rule_safety(rule)
            except SafetyError as exc:
                raise SpocusViolation(str(exc)) from exc

    # -- the two functions ----------------------------------------------------------

    @property
    def output_program(self) -> Program:
        return self._program

    @property
    def output_plan(self) -> PhysicalPlan:
        """The (shared, cached) compiled plan of the output program."""
        plan, _hit = compile_cached(self._program)
        return plan

    def explain_plan(self, database: "Instance | None" = None) -> str:
        """The output program's plan description (see ``PhysicalPlan.explain``).

        With a database, join orders and estimates are computed against
        its (cached, indexed) store -- what sessions over that catalog
        actually execute.
        """
        if database is None:
            return self.output_plan.explain()
        db = self.coerce_database(database)
        return self.output_plan.explain(self.database_store(db))

    def rules_for(self, predicate: str) -> list[Rule]:
        """The output rules defining ``predicate``."""
        return self._program.rules_for(predicate)

    def new_step_context(self, database: Instance):
        return _program_step_context(self, self._program)

    def output_with_context(
        self, ctx, inputs: Instance, state: Instance, database: Instance
    ) -> Instance:
        return _output_via_context(self, ctx, inputs, state, database)

    def state_function(
        self, inputs: Instance, state: Instance, database: Instance
    ) -> Instance:
        data = {
            past(rel.name): state[past(rel.name)] | inputs[rel.name]
            for rel in self.schema.inputs
        }
        return Instance(self.schema.state, data)

    def output_function(
        self, inputs: Instance, state: Instance, database: Instance
    ) -> Instance:
        # The small per-step input/state facts are layered over the
        # (cached, lazily indexed) database store, so catalog indexes
        # are built once per database rather than once per step.
        facts = _step_store(self, inputs, state, database)
        derived = evaluate_program(self._program, facts)
        return Instance(
            self.schema.outputs,
            {
                rel.name: derived.get(rel.name, frozenset())
                for rel in self.schema.outputs
            },
        )

    # -- conveniences -----------------------------------------------------------------

    def with_log(self, log: Sequence[str]) -> "SpocusTransducer":
        """The same transducer with a different log declaration."""
        clone = SpocusTransducer(
            self.schema.inputs,
            self.schema.outputs,
            self.schema.database,
            self._program,
            tuple(log),
        )
        return clone

    def with_extra_rules(
        self,
        rules: str | Program,
        extra_inputs: dict[str, int] | None = None,
        extra_outputs: dict[str, int] | None = None,
    ) -> "SpocusTransducer":
        """Customization helper: add relations and rules (Section 3.3).

        Returns a new transducer with the added input/output relations
        and the added output rules; the log is unchanged.
        """
        if isinstance(rules, str):
            rules = parse_program(rules)
        inputs = self.schema.inputs.merge(
            DatabaseSchema.of(**(extra_inputs or {}))
        )
        outputs = self.schema.outputs.merge(
            DatabaseSchema.of(**(extra_outputs or {}))
        )
        program = Program(tuple(self._program.rules) + tuple(rules.rules))
        return SpocusTransducer(
            inputs, outputs, self.schema.database, program, self.schema.log
        )


class ExtendedStateTransducer(RelationalTransducer):
    """Spocus extended with projection state rules (NOT Spocus).

    State relations are declared explicitly and populated by cumulative
    rules ``S(x̄) +:- body`` whose bodies range over input relations; the
    projection case (head variables a strict subset of body variables)
    is exactly the extension Proposition 3.1 proves undecidable.
    Output rules follow the Spocus discipline.
    """

    def __init__(
        self,
        inputs: DatabaseSchema,
        state: DatabaseSchema,
        outputs: DatabaseSchema,
        database: DatabaseSchema,
        state_program: Program | str,
        output_program: Program | str,
        log: Sequence[str] = (),
    ) -> None:
        if isinstance(state_program, str):
            state_program = parse_program(state_program)
        if isinstance(output_program, str):
            output_program = parse_program(output_program)
        schema = TransducerSchema(inputs, state, outputs, database, tuple(log))
        super().__init__(schema)
        self._state_program = state_program
        self._output_program = output_program
        for rule in state_program:
            if not rule.cumulative:
                raise SchemaError(
                    f"state rule {rule} must be cumulative (+:-)"
                )
            if rule.head.predicate not in state:
                raise SchemaError(
                    f"state rule {rule}: head is not a state relation"
                )
            check_rule_safety(rule)
        for rule in output_program:
            if rule.head.predicate not in outputs:
                raise SchemaError(
                    f"output rule {rule}: head is not an output relation"
                )
            check_rule_safety(rule)

    @property
    def state_program(self) -> Program:
        return self._state_program

    @property
    def output_program(self) -> Program:
        return self._output_program

    def new_step_context(self, database: Instance):
        return _program_step_context(self, self._output_program)

    def output_with_context(
        self, ctx, inputs: Instance, state: Instance, database: Instance
    ) -> Instance:
        return _output_via_context(self, ctx, inputs, state, database)

    def state_function(
        self, inputs: Instance, state: Instance, database: Instance
    ) -> Instance:
        facts = _step_store(self, inputs, state, database)
        plain = Program(
            tuple(
                Rule(rule.head, rule.body, cumulative=False)
                for rule in self._state_program
            )
        )
        derived = evaluate_program(plain, facts)
        data = {
            rel.name: state[rel.name] | derived.get(rel.name, frozenset())
            for rel in self.schema.state
        }
        return Instance(self.schema.state, data)

    def output_function(
        self, inputs: Instance, state: Instance, database: Instance
    ) -> Instance:
        facts = _step_store(self, inputs, state, database)
        derived = evaluate_program(self._output_program, facts)
        return Instance(
            self.schema.outputs,
            {
                rel.name: derived.get(rel.name, frozenset())
                for rel in self.schema.outputs
            },
        )
