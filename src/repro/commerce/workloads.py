"""Workload generators for examples and benchmarks.

:class:`SessionGenerator` produces seeded, realistic shopping sessions
against a store transducer: customers order products, pay (usually the
right amount), occasionally mistype prices, ask for reminders, or pay
twice.  :func:`random_log` runs a session and returns its log, with an
optional tampering step that forges the kind of fraudulent logs the
log-validation experiments (E4) must reject.

:func:`simulate_concurrent_customers` scales the same generator up to
store-wide traffic: thousands of independent customer sessions driven
round-robin through a :class:`~repro.pods.service.PodService` (or,
with ``shards > 1``, a :class:`~repro.pods.service.ShardedPodService`)
over one shared catalog, which is the load shape of the E16/E17
throughput benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.commerce.catalog import Catalog
from repro.core.run import Run
from repro.core.spocus import SpocusTransducer
from repro.pods import PodService, SessionHandle, ShardedPodService
from repro.relalg.instance import Instance
from repro.verify.deprecation import warn_once


@dataclass
class SessionGenerator:
    """Seeded generator of shopping-session input sequences.

    ``error_rate`` is the probability that a step contains a customer
    mistake (wrong price, duplicate payment, payment without an order);
    mistakes exercise the ``friendly`` warning rules.
    """

    catalog: Catalog
    seed: int = 0
    error_rate: float = 0.1
    supports_pending_bills: bool = False

    def session(self, length: int) -> list[dict[str, set[tuple]]]:
        """One session of ``length`` input instances."""
        rng = random.Random(f"session:{self.seed}:{length}")
        sequence: list[dict[str, set[tuple]]] = []
        unpaid: list[str] = []
        paid: list[str] = []
        for _step in range(length):
            roll = rng.random()
            step: dict[str, set[tuple]] = {}
            if roll < self.error_rate:
                step = self._mistake(rng, unpaid, paid)
            elif unpaid and rng.random() < 0.6:
                product = unpaid.pop(rng.randrange(len(unpaid)))
                step = {"pay": {(product, self.catalog.priced(product))}}
                paid.append(product)
            else:
                product = rng.choice(self.catalog.products)
                step = {"order": {(product,)}}
                if product not in unpaid and product not in paid:
                    unpaid.append(product)
            sequence.append(step)
        return sequence

    def _mistake(
        self,
        rng: random.Random,
        unpaid: list[str],
        paid: list[str],
    ) -> dict[str, set[tuple]]:
        choices = ["wrong-price", "unordered-pay"]
        if paid:
            choices.append("double-pay")
        if self.supports_pending_bills:
            choices.append("pending-bills")
        kind = rng.choice(choices)
        if kind == "wrong-price":
            product = rng.choice(self.catalog.products)
            return {"pay": {(product, self.catalog.priced(product) + 1)}}
        if kind == "unordered-pay":
            product = rng.choice(self.catalog.products)
            return {"pay": {(product, self.catalog.priced(product))}}
        if kind == "double-pay":
            product = rng.choice(paid)
            return {"pay": {(product, self.catalog.priced(product))}}
        return {"pending-bills": {()}}


def random_log(
    transducer: SpocusTransducer,
    catalog: Catalog,
    length: int,
    seed: int = 0,
    error_rate: float = 0.1,
) -> tuple[Run, tuple[Instance, ...]]:
    """Run a generated session; return (run, log sequence)."""
    generator = SessionGenerator(
        catalog,
        seed=seed,
        error_rate=error_rate,
        supports_pending_bills="pending-bills" in transducer.schema.inputs,
    )
    inputs = generator.session(length)
    run = transducer.run(catalog.as_database(), inputs)
    return run, run.logs


@dataclass(frozen=True)
class WorkloadReport:
    """Outcome of :func:`simulate_concurrent_customers`.

    ``metrics`` is the engine's deterministic-key counter snapshot
    (sessions/s, steps/s, latencies); ``sample_log_lengths`` is the log
    length of the first few sessions, a cheap sanity signal that every
    session really ran its whole script.
    """

    sessions: int
    steps_per_session: int
    total_steps: int
    metrics: dict
    sample_log_lengths: tuple[int, ...]
    shards: int = 1


def simulate_concurrent_customers(
    transducer: SpocusTransducer,
    catalog: Catalog,
    sessions: int = 1000,
    steps_per_session: int = 8,
    seed: int = 0,
    error_rate: float = 0.1,
    keep_logs: bool = False,
    sample_sessions: int = 4,
    shards: int = 1,
    store_factory=None,
    service=None,
) -> WorkloadReport:
    """Run ``sessions`` independent shopping sessions over one catalog.

    Each customer gets their own seeded :class:`SessionGenerator`
    script; the service interleaves all sessions round-robin, simulating
    concurrent store traffic against the shared (indexed) catalog.
    ``keep_logs`` retains per-session logs -- leave it off for pure
    throughput runs, or sample a few sessions with ``sample_sessions``.

    ``shards > 1`` routes the same traffic through a
    :class:`~repro.pods.service.ShardedPodService` instead (the E17
    configuration); ``store_factory`` maps a shard index to a
    :class:`~repro.pods.store.SessionStore` for persistence-backed runs.

    ``service`` injects the traffic surface outright -- anything with
    the ``create_session`` / ``drive`` / ``session`` / ``metrics``
    shape, e.g. a :class:`~repro.server.client.PodClient` pointed at a
    live pod server -- and then ``shards`` / ``store_factory`` /
    ``keep_logs`` are ignored (they describe a service this function
    would have built).  The driver itself is identical either way,
    which is what makes in-process-vs-server comparisons apples to
    apples.

    .. deprecated::
        The registry's ``commerce`` scenario generates the identical
        traffic (same session ids, seeds, and scripts); prefer
        ``repro.scenarios.run_scenario("commerce", ...)``, which also
        drives sharded services and :class:`~repro.server.client.
        PodClient` through one open-loop path.
    """
    warn_once(
        "commerce.workloads.simulate_concurrent_customers",
        "simulate_concurrent_customers() is deprecated; use "
        'repro.scenarios.run_scenario("commerce", ...) -- the registry '
        "scenario generates identical per-session traffic",
    )
    supports_pending = "pending-bills" in transducer.schema.inputs
    if service is None:
        if shards == 1:
            store = store_factory(0) if store_factory is not None else None
            service = PodService(
                transducer,
                catalog.as_database(),
                store=store,
                keep_logs=keep_logs,
            )
        else:
            service = ShardedPodService(
                transducer,
                catalog.as_database(),
                shards=shards,
                keep_logs=keep_logs,
                store_factory=store_factory,
            )
    workload: dict[SessionHandle, list[dict[str, set[tuple]]]] = {}
    sampled: list[SessionHandle] = []
    for customer in range(sessions):
        generator = SessionGenerator(
            catalog,
            seed=seed * 1_000_003 + customer,
            error_rate=error_rate,
            supports_pending_bills=supports_pending,
        )
        handle = service.create_session(f"customer-{customer:06d}")
        workload[handle] = generator.session(steps_per_session)
        if customer < sample_sessions:
            sampled.append(handle)
    service.drive(workload, round_robin=True)
    sampled.sort(key=lambda handle: handle.session_id)
    if keep_logs:
        sample_lengths = tuple(
            len(service.session(handle).log()) for handle in sampled
        )
    else:
        sample_lengths = tuple(
            service.session(handle).steps for handle in sampled
        )
    snapshot = service.metrics.snapshot()
    return WorkloadReport(
        sessions=sessions,
        steps_per_session=steps_per_session,
        total_steps=snapshot["steps_executed"],
        metrics=snapshot,
        sample_log_lengths=sample_lengths,
        shards=shards,
    )


def tamper_log(
    logs: Sequence[Instance],
    catalog: Catalog,
    seed: int = 0,
) -> tuple[Instance, ...]:
    """Forge a log: inject an unpaid delivery into some step.

    The returned log claims a product was delivered although no payment
    for it appears anywhere in the log -- precisely the fraud scenario
    of Section 2.1 ("Log checking").
    """
    rng = random.Random(seed)
    logs = list(logs)
    if not logs:
        return tuple(logs)
    target = rng.randrange(len(logs))
    paid_products = {
        row[0] for entry in logs for row in entry.get("pay")
    }
    candidates = [p for p in catalog.products if p not in paid_products]
    if not candidates:
        candidates = list(catalog.products)
    product = rng.choice(candidates)
    entry = logs[target]
    logs[target] = entry.with_facts("deliver", {(product,)})
    return tuple(logs)
