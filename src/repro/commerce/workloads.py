"""Workload generators for examples and benchmarks.

:class:`SessionGenerator` produces seeded, realistic shopping sessions
against a store transducer: customers order products, pay (usually the
right amount), occasionally mistype prices, ask for reminders, or pay
twice.  :func:`random_log` runs a session and returns its log, with an
optional tampering step that forges the kind of fraudulent logs the
log-validation experiments (E4) must reject.

:func:`simulate_concurrent_customers` scales the same generator up to
store-wide traffic: thousands of independent customer sessions driven
round-robin through a :class:`~repro.runtime.engine.MultiSessionEngine`
over one shared catalog, which is the load shape of the E16 throughput
benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.commerce.catalog import Catalog
from repro.core.run import Run
from repro.core.spocus import SpocusTransducer
from repro.relalg.instance import Instance
from repro.runtime.engine import MultiSessionEngine


@dataclass
class SessionGenerator:
    """Seeded generator of shopping-session input sequences.

    ``error_rate`` is the probability that a step contains a customer
    mistake (wrong price, duplicate payment, payment without an order);
    mistakes exercise the ``friendly`` warning rules.
    """

    catalog: Catalog
    seed: int = 0
    error_rate: float = 0.1
    supports_pending_bills: bool = False

    def session(self, length: int) -> list[dict[str, set[tuple]]]:
        """One session of ``length`` input instances."""
        rng = random.Random(f"session:{self.seed}:{length}")
        sequence: list[dict[str, set[tuple]]] = []
        unpaid: list[str] = []
        paid: list[str] = []
        for _step in range(length):
            roll = rng.random()
            step: dict[str, set[tuple]] = {}
            if roll < self.error_rate:
                step = self._mistake(rng, unpaid, paid)
            elif unpaid and rng.random() < 0.6:
                product = unpaid.pop(rng.randrange(len(unpaid)))
                step = {"pay": {(product, self.catalog.priced(product))}}
                paid.append(product)
            else:
                product = rng.choice(self.catalog.products)
                step = {"order": {(product,)}}
                if product not in unpaid and product not in paid:
                    unpaid.append(product)
            sequence.append(step)
        return sequence

    def _mistake(
        self,
        rng: random.Random,
        unpaid: list[str],
        paid: list[str],
    ) -> dict[str, set[tuple]]:
        choices = ["wrong-price", "unordered-pay"]
        if paid:
            choices.append("double-pay")
        if self.supports_pending_bills:
            choices.append("pending-bills")
        kind = rng.choice(choices)
        if kind == "wrong-price":
            product = rng.choice(self.catalog.products)
            return {"pay": {(product, self.catalog.priced(product) + 1)}}
        if kind == "unordered-pay":
            product = rng.choice(self.catalog.products)
            return {"pay": {(product, self.catalog.priced(product))}}
        if kind == "double-pay":
            product = rng.choice(paid)
            return {"pay": {(product, self.catalog.priced(product))}}
        return {"pending-bills": {()}}


def random_log(
    transducer: SpocusTransducer,
    catalog: Catalog,
    length: int,
    seed: int = 0,
    error_rate: float = 0.1,
) -> tuple[Run, tuple[Instance, ...]]:
    """Run a generated session; return (run, log sequence)."""
    generator = SessionGenerator(
        catalog,
        seed=seed,
        error_rate=error_rate,
        supports_pending_bills="pending-bills" in transducer.schema.inputs,
    )
    inputs = generator.session(length)
    run = transducer.run(catalog.as_database(), inputs)
    return run, run.logs


@dataclass(frozen=True)
class WorkloadReport:
    """Outcome of :func:`simulate_concurrent_customers`.

    ``metrics`` is the engine's deterministic-key counter snapshot
    (sessions/s, steps/s, latencies); ``sample_log_lengths`` is the log
    length of the first few sessions, a cheap sanity signal that every
    session really ran its whole script.
    """

    sessions: int
    steps_per_session: int
    total_steps: int
    metrics: dict
    sample_log_lengths: tuple[int, ...]


def simulate_concurrent_customers(
    transducer: SpocusTransducer,
    catalog: Catalog,
    sessions: int = 1000,
    steps_per_session: int = 8,
    seed: int = 0,
    error_rate: float = 0.1,
    keep_logs: bool = False,
    sample_sessions: int = 4,
) -> WorkloadReport:
    """Run ``sessions`` independent shopping sessions over one catalog.

    Each customer gets their own seeded :class:`SessionGenerator`
    script; the engine interleaves all sessions round-robin, simulating
    concurrent store traffic against the shared (indexed) catalog.
    ``keep_logs`` retains per-session logs -- leave it off for pure
    throughput runs, or sample a few sessions with ``sample_sessions``.
    """
    supports_pending = "pending-bills" in transducer.schema.inputs
    engine = MultiSessionEngine(
        transducer, catalog.as_database(), keep_logs=keep_logs
    )
    workload: dict[int, list[dict[str, set[tuple]]]] = {}
    sampled: list[int] = []
    for customer in range(sessions):
        generator = SessionGenerator(
            catalog,
            seed=seed * 1_000_003 + customer,
            error_rate=error_rate,
            supports_pending_bills=supports_pending,
        )
        session_id = engine.create_session()
        workload[session_id] = generator.session(steps_per_session)
        if customer < sample_sessions:
            sampled.append(session_id)
    engine.drive(workload, round_robin=True)
    if keep_logs:
        sample_lengths = tuple(
            len(engine.session(sid).log()) for sid in sorted(sampled)
        )
    else:
        sample_lengths = tuple(
            engine.session(sid).steps for sid in sorted(sampled)
        )
    return WorkloadReport(
        sessions=sessions,
        steps_per_session=steps_per_session,
        total_steps=engine.metrics.steps_executed,
        metrics=engine.metrics.snapshot(),
        sample_log_lengths=sample_lengths,
    )


def tamper_log(
    logs: Sequence[Instance],
    catalog: Catalog,
    seed: int = 0,
) -> tuple[Instance, ...]:
    """Forge a log: inject an unpaid delivery into some step.

    The returned log claims a product was delivered although no payment
    for it appears anywhere in the log -- precisely the fraud scenario
    of Section 2.1 ("Log checking").
    """
    rng = random.Random(seed)
    logs = list(logs)
    if not logs:
        return tuple(logs)
    target = rng.randrange(len(logs))
    paid_products = {
        row[0] for entry in logs for row in entry.get("pay")
    }
    candidates = [p for p in catalog.products if p not in paid_products]
    if not candidates:
        candidates = list(catalog.products)
    product = rng.choice(candidates)
    entry = logs[target]
    logs[target] = entry.with_facts("deliver", {(product,)})
    return tuple(logs)
