"""Electronic-commerce business models and tooling.

The application layer the paper motivates: the ``short`` and
``friendly`` transducers of Section 2.1 (verbatim rules), further
business models built in the same style, the customization toolkit of
Section 3.3, log minimization (Section 2.1), the progress advisor, and
workload generators for the benchmark harness.
"""

from repro.commerce.models import (
    FIGURE1_INPUTS,
    FIGURE2_INPUTS,
    build_buggy_store,
    build_friendly,
    build_guarded_store,
    build_short,
    default_database,
)
from repro.commerce.catalog import CatalogGenerator
from repro.commerce.customization import (
    CustomizationReport,
    is_syntactically_safe_customization,
    new_relations_reaching_log,
)
from repro.commerce.minimize import minimal_logs, removable_log_relations
from repro.commerce.progress import ProgressAdvisor, Suggestion
from repro.commerce.workloads import (
    SessionGenerator,
    WorkloadReport,
    random_log,
    simulate_concurrent_customers,
)

__all__ = [
    "build_short",
    "build_friendly",
    "build_buggy_store",
    "build_guarded_store",
    "default_database",
    "FIGURE1_INPUTS",
    "FIGURE2_INPUTS",
    "CatalogGenerator",
    "CustomizationReport",
    "is_syntactically_safe_customization",
    "new_relations_reaching_log",
    "removable_log_relations",
    "minimal_logs",
    "ProgressAdvisor",
    "Suggestion",
    "SessionGenerator",
    "WorkloadReport",
    "random_log",
    "simulate_concurrent_customers",
]
