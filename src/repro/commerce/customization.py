"""Customization analysis (Section 3.3).

The paper proposes, besides the semantic containment test of
Theorem 3.5, a *syntactic* sufficient condition for a customization to
preserve valid logs: new inputs, outputs, and rules may be added "as
long as the log is syntactically unaffected by the new inputs (i.e.,
there is no path from new inputs to relations in the log in the
dependency graph of the program)".  ``friendly`` is obtained from
``short`` this way.  This module implements that check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.spocus import SpocusTransducer, past
from repro.datalog.stratify import DependencyGraph


def _program_graph(transducer: SpocusTransducer) -> DependencyGraph:
    """Dependency graph of the output program, with the implicit
    ``R -> past-R`` state edges added (an input influences everything its
    history relation influences)."""
    graph = DependencyGraph.of(transducer.output_program)
    for rel in transducer.schema.inputs:
        graph.predicates.add(rel.name)
        graph.positive_edges.setdefault(rel.name, set()).add(past(rel.name))
        graph.predicates.add(past(rel.name))
    return graph


def new_relations_reaching_log(
    base: SpocusTransducer, custom: SpocusTransducer
) -> set[str]:
    """The new input relations from which a log relation is reachable."""
    new_inputs = set(custom.schema.inputs.names) - set(base.schema.inputs.names)
    if not new_inputs:
        return set()
    graph = _program_graph(custom)
    log = set(custom.schema.log)
    return {
        name
        for name in new_inputs
        if graph.reachable_from([name]) & log
    }


@dataclass
class CustomizationReport:
    """Outcome of the syntactic customization check.

    ``safe`` means the sufficient condition holds; when it fails,
    ``offending_inputs`` lists new inputs with a dependency path into
    the log and ``problems`` collects human-readable explanations.
    """

    safe: bool
    offending_inputs: set[str] = field(default_factory=set)
    problems: list[str] = field(default_factory=list)


def is_syntactically_safe_customization(
    base: SpocusTransducer, custom: SpocusTransducer
) -> CustomizationReport:
    """Check the paper's syntactic sufficient condition.

    Requirements checked:

    1. same log declaration;
    2. the custom inputs/outputs extend the base ones;
    3. every base output rule is retained verbatim;
    4. rules for base output relations are unchanged (no new rule may
       define a logged or base output relation);
    5. no dependency path from a new input relation to a log relation.

    When the report says ``safe``, every valid log of ``custom`` is a
    valid log of ``base`` (containment holds by construction); the
    semantic check of Theorem 3.5 is then unnecessary.
    """
    problems: list[str] = []
    if tuple(base.schema.log) != tuple(custom.schema.log):
        problems.append(
            f"log declarations differ: {base.schema.log} vs {custom.schema.log}"
        )
    base_inputs = set(base.schema.inputs.names)
    if not base_inputs <= set(custom.schema.inputs.names):
        problems.append("custom transducer drops base input relations")
    base_outputs = set(base.schema.outputs.names)
    if not base_outputs <= set(custom.schema.outputs.names):
        problems.append("custom transducer drops base output relations")

    base_rules = set(base.output_program.rules)
    custom_rules = set(custom.output_program.rules)
    missing = base_rules - custom_rules
    if missing:
        problems.append(
            f"base rules missing from customization: "
            f"{'; '.join(str(r) for r in sorted(missing, key=str))}"
        )
    for rule in custom_rules - base_rules:
        if rule.head.predicate in base_outputs:
            problems.append(
                f"new rule redefines base output relation: {rule}"
            )

    offending = new_relations_reaching_log(base, custom)
    for name in sorted(offending):
        problems.append(
            f"new input {name!r} has a dependency path into the log"
        )
    return CustomizationReport(
        safe=not problems, offending_inputs=offending, problems=problems
    )
