"""Log minimization (Section 2.1, "Minimizing the log").

The paper observes that in ``short`` the relation ``deliver`` can be
removed from the log "without losing any information": its occurrences
are reconstructible from ``order``, ``price`` and ``pay``.  We formalize
removability as *bounded determinacy*: a log relation ``r`` is removable
(up to run length ``n`` over a given database) when any two input
sequences of length ≤ n that agree on the log without ``r`` also agree
on ``r``'s log content.  The check enumerates input sequences over the
database's active domain exhaustively, so it is exact within the bound
-- the natural executable counterpart of the paper's informal claim.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from repro.core.spocus import SpocusTransducer
from repro.relalg.instance import Instance


def _candidate_tuples(arity: int, domain: Sequence) -> list[tuple]:
    return [tuple(v) for v in itertools.product(domain, repeat=arity)]


def _candidate_inputs(
    transducer: SpocusTransducer,
    domain: Sequence,
    max_facts_per_step: int,
) -> Iterator[dict[str, set[tuple]]]:
    """All input instances with at most ``max_facts_per_step`` facts."""
    pool: list[tuple[str, tuple]] = []
    for rel in transducer.schema.inputs:
        for row in _candidate_tuples(rel.arity, domain):
            pool.append((rel.name, row))
    for size in range(max_facts_per_step + 1):
        for facts in itertools.combinations(pool, size):
            instance: dict[str, set[tuple]] = {}
            for name, row in facts:
                instance.setdefault(name, set()).add(row)
            yield instance


def enumerate_logs(
    transducer: SpocusTransducer,
    database: dict[str, set[tuple]] | Instance,
    length: int,
    max_facts_per_step: int = 1,
    domain: Sequence | None = None,
) -> Iterator[tuple[tuple[Instance, ...], tuple[Instance, ...]]]:
    """Yield (input sequence, log sequence) for all bounded runs."""
    db = transducer.coerce_database(database)
    if domain is None:
        domain = sorted(db.active_domain(), key=repr)
    steps = list(_candidate_inputs(transducer, domain, max_facts_per_step))
    coerced = [transducer.coerce_input(step) for step in steps]
    for sequence in itertools.product(coerced, repeat=length):
        run = transducer.run(db, sequence)
        yield sequence, run.logs


def removable_log_relations(
    transducer: SpocusTransducer,
    database: dict[str, set[tuple]] | Instance,
    length: int = 2,
    max_facts_per_step: int = 1,
    domain: Sequence | None = None,
) -> set[str]:
    """Log relations whose content is determined by the rest of the log.

    Exact within the stated bounds (run length, facts per step, domain).
    A relation reported removable may in principle be needed on longer
    runs; the default bounds match the two-step sufficiency arguments
    the paper uses for its decision procedures (Theorem 3.2).
    """
    log = list(transducer.schema.log)
    removable = set(log)
    # Group log sequences by their projection away from each candidate.
    runs = list(
        enumerate_logs(
            transducer, database, length, max_facts_per_step, domain
        )
    )
    for candidate in log:
        rest = [name for name in log if name != candidate]
        seen: dict[tuple, tuple] = {}
        for _inputs, logs in runs:
            key = tuple(
                tuple(sorted(entry[name])) for entry in logs for name in rest
            )
            value = tuple(tuple(sorted(entry[candidate])) for entry in logs)
            if key in seen and seen[key] != value:
                removable.discard(candidate)
                break
            seen[key] = value
    return removable


def minimal_logs(
    transducer: SpocusTransducer,
    database: dict[str, set[tuple]] | Instance,
    length: int = 2,
    max_facts_per_step: int = 1,
    domain: Sequence | None = None,
) -> list[tuple[str, ...]]:
    """Inclusion-minimal logs preserving bounded determinacy.

    Searches subsets of the declared log from small to large; a subset
    ``L'`` qualifies when every removed relation's content is determined
    by ``L'`` alone on all bounded runs.  Returns all minimal subsets
    (there may be several incomparable ones).
    """
    log = tuple(transducer.schema.log)
    runs = list(
        enumerate_logs(
            transducer, database, length, max_facts_per_step, domain
        )
    )

    def determined(kept: Sequence[str]) -> bool:
        removed = [name for name in log if name not in kept]
        if not removed:
            return True
        seen: dict[tuple, tuple] = {}
        for _inputs, logs in runs:
            key = tuple(
                tuple(sorted(entry[name])) for entry in logs for name in kept
            )
            value = tuple(
                tuple(sorted(entry[name])) for entry in logs for name in removed
            )
            if key in seen and seen[key] != value:
                return False
            seen[key] = value
        return True

    minimal: list[tuple[str, ...]] = []
    for size in range(len(log) + 1):
        for kept in itertools.combinations(log, size):
            if any(set(m) <= set(kept) for m in minimal):
                continue
            if determined(kept):
                minimal.append(kept)
        if minimal and size >= max(len(m) for m in minimal):
            # All remaining candidates are supersets of found minima.
            break
    return minimal
