"""The progress advisor (Section 2.1, "Goal reachability and progress").

"A user interested in achieving some goal such as deliver(pc8000) may
wish to be told what is the next action (input) that will make the
system progress toward the goal."  :class:`ProgressAdvisor` answers
exactly that: given a transducer, a database, the state reached so far,
and a goal (a set of ground output facts), it searches bounded input
continuations and returns the first input of a shortest sequence that
reaches the goal.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from repro.core.spocus import SpocusTransducer
from repro.relalg.instance import Instance


@dataclass(frozen=True)
class Suggestion:
    """A recommended next input and the sequence that attains the goal.

    ``next_input`` is the recommended immediate action; ``plan`` is the
    full input sequence (including ``next_input``) whose final output
    satisfies the goal; ``steps`` is its length.
    """

    next_input: dict[str, frozenset[tuple]]
    plan: tuple[dict[str, frozenset[tuple]], ...]
    steps: int


class ProgressAdvisor:
    """Bounded breadth-first search for goal-reaching continuations."""

    def __init__(
        self,
        transducer: SpocusTransducer,
        database: dict[str, set[tuple]] | Instance,
        max_facts_per_step: int = 1,
        extra_domain: Sequence = (),
    ) -> None:
        self._transducer = transducer
        self._database = transducer.coerce_database(database)
        domain = set(self._database.active_domain()) | set(extra_domain)
        self._domain = sorted(domain, key=repr)
        self._max_facts = max_facts_per_step

    def _candidate_steps(self) -> list[dict[str, frozenset[tuple]]]:
        pool: list[tuple[str, tuple]] = []
        for rel in self._transducer.schema.inputs:
            for row in itertools.product(self._domain, repeat=rel.arity):
                pool.append((rel.name, tuple(row)))
        steps: list[dict[str, frozenset[tuple]]] = []
        for size in range(1, self._max_facts + 1):
            for facts in itertools.combinations(pool, size):
                step: dict[str, set[tuple]] = {}
                for name, row in facts:
                    step.setdefault(name, set()).add(row)
                steps.append(
                    {name: frozenset(rows) for name, rows in step.items()}
                )
        return steps

    def _goal_satisfied(
        self, output: Instance, goal: dict[str, set[tuple]]
    ) -> bool:
        return all(
            set(rows) <= set(output[name]) for name, rows in goal.items()
        )

    def advise(
        self,
        goal: dict[str, set[tuple]],
        history: Sequence[dict[str, set[tuple]]] = (),
        max_depth: int = 3,
    ) -> Suggestion | None:
        """Find a shortest goal-reaching continuation after ``history``.

        Returns None when the goal is unreachable within ``max_depth``
        additional steps (with at most ``max_facts_per_step`` new facts
        per step, over the database's active domain).
        """
        transducer = self._transducer
        state = transducer.initial_state()
        for step in history:
            state, _output = transducer.step(self._database, state, step)
        candidates = self._candidate_steps()

        frontier: list[tuple[Instance, tuple]] = [(state, ())]
        for depth in range(1, max_depth + 1):
            next_frontier: list[tuple[Instance, tuple]] = []
            seen: set[Instance] = set()
            for current_state, path in frontier:
                for step in candidates:
                    next_state, output = transducer.step(
                        self._database, current_state, step
                    )
                    if self._goal_satisfied(output, goal):
                        plan = path + (step,)
                        return Suggestion(plan[0], plan, depth)
                    if next_state not in seen:
                        seen.add(next_state)
                        next_frontier.append((next_state, path + (step,)))
            frontier = next_frontier
        return None
