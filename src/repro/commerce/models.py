"""The paper's example business models.

``short`` and ``friendly`` are transcribed verbatim from Section 2.1 of
the paper (transducers SHORT and FRIENDLY).  The run reproduced in
Figures 1 and 2 uses the products Time, Newsweek and Le Monde with
prices $55, $45 and $3.50 (the published scan garbles the dollar signs
to '8'; we use integers 55, 45 and 350 cents).

Two further models support the experiments:

* :func:`build_buggy_store` -- a deliberately broken variant whose
  ``deliver`` rule forgets the payment check; used as the negative
  control in the temporal-verification experiments (E7);
* :func:`build_guarded_store` -- ``short`` with error rules enforcing
  the Tsdi input disciplines of Section 4.1.
"""

from __future__ import annotations

from repro.core.parser import parse_transducer
from repro.core.spocus import SpocusTransducer

SHORT_SOURCE = """
transducer short
schema
  database: price/2, available/1;
  input: order/1, pay/2;
  state: past-order, past-pay;
  output: sendbill/2, deliver/1;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
"""

FRIENDLY_SOURCE = """
transducer friendly
schema
  database: price/2, available/1;
  input: order/1, pay/2, pending-bills/0;
  state: past-order, past-pay;
  output: sendbill/2, deliver/1, unavailable/1,
          rejectpay/1, alreadypaid/1, rebill/2;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
  unavailable(X) :- order(X), NOT available(X);
  rejectpay(X) :- pay(X,Y), NOT past-order(X);
  rejectpay(X) :- pay(X,Y), past-order(X), NOT price(X,Y);
  alreadypaid(X) :- pay(X,Y), past-pay(X,Y);
  rebill(X,Y) :- pending-bills, past-order(X), price(X,Y),
                 NOT past-pay(X,Y);
"""

BUGGY_SOURCE = """
transducer buggy
schema
  database: price/2, available/1;
  input: order/1, pay/2;
  output: sendbill/2, deliver/1;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), NOT past-pay(X,Y);
"""

# Products and prices of the Figure 1/2 runs (prices in cents).
TIME = "time"
NEWSWEEK = "newsweek"
LE_MONDE = "le_monde"
PRICES = {TIME: 55, NEWSWEEK: 45, LE_MONDE: 350}


def build_short() -> SpocusTransducer:
    """The SHORT transducer of Section 2.1 (verbatim rules)."""
    transducer = parse_transducer(SHORT_SOURCE)
    assert isinstance(transducer, SpocusTransducer)
    return transducer


def build_friendly() -> SpocusTransducer:
    """The FRIENDLY transducer of Section 2.1 (verbatim rules)."""
    transducer = parse_transducer(FRIENDLY_SOURCE)
    assert isinstance(transducer, SpocusTransducer)
    return transducer


def build_buggy_store() -> SpocusTransducer:
    """``short`` with the payment check dropped from ``deliver``.

    Negative control: violates "no delivery before payment", which the
    temporal verifier must detect (experiment E7).
    """
    transducer = parse_transducer(BUGGY_SOURCE)
    assert isinstance(transducer, SpocusTransducer)
    return transducer


def build_guarded_store() -> SpocusTransducer:
    """``short`` extended with the Section 4.1 input disciplines.

    The added ``error`` rules are exactly the compilation (Theorem 4.1)
    of the three example Tsdi sentences: payments must match an order
    and the catalog price, and cancellations must follow orders.
    """
    short = build_short()
    return short.with_extra_rules(
        """
        error :- pay(X,Y), NOT price(X,Y);
        error :- pay(X,Y), NOT past-order(X), NOT order(X);
        error :- cancel(X), NOT past-order(X);
        """,
        extra_inputs={"cancel": 1},
        extra_outputs={"error": 0},
    )


def default_database() -> dict[str, set[tuple]]:
    """The catalog used by the Figure 1/2 runs."""
    return {
        "price": {(p, c) for p, c in PRICES.items()},
        "available": {(TIME,), (NEWSWEEK,), (LE_MONDE,)},
    }


#: The input sequence of the Figure 1 run of ``short``.
FIGURE1_INPUTS = [
    {"order": {(TIME,)}},
    {"pay": {(TIME, 55)}},
    {"order": {(LE_MONDE,)}},
    {"pay": {(LE_MONDE, 350)}},
]

#: The input sequence of the Figure 2 run of ``friendly``; exercises
#: every warning relation: an unavailable product, a payment without an
#: order, a double payment, and a pending-bills reminder.
FIGURE2_INPUTS = [
    {"order": {(TIME,), ("vogue",)}},
    {"pay": {(TIME, 55), (NEWSWEEK, 40)}},
    {"order": {(NEWSWEEK,)}, "pay": {(TIME, 55)}},
    {"pending-bills": {()}},
]
