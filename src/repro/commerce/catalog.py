"""Synthetic product catalogs.

The paper's database relations (``price``, ``available``) represent a
product catalog.  :class:`CatalogGenerator` produces deterministic,
seeded catalogs of arbitrary size for the scaling benchmarks -- the
substitute for the "possibly very large, external" databases the paper
mentions (Section 2.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Catalog:
    """A generated catalog: products, prices, availability."""

    products: tuple[str, ...]
    prices: dict[str, int]
    available: frozenset[str]

    def as_database(self) -> dict[str, set[tuple]]:
        """The database instance mapping expected by the transducers."""
        return {
            "price": {(p, self.prices[p]) for p in self.products},
            "available": {(p,) for p in self.available},
        }

    def priced(self, product: str) -> int:
        return self.prices[product]


class CatalogGenerator:
    """Seeded generator of :class:`Catalog` objects.

    Prices are integers in cents, drawn from ``price_range``;
    ``availability`` is the fraction of products in stock.
    """

    def __init__(
        self,
        seed: int = 0,
        price_range: tuple[int, int] = (100, 10_000),
        availability: float = 0.9,
    ) -> None:
        if not 0.0 <= availability <= 1.0:
            raise ValueError("availability must be in [0, 1]")
        self._seed = seed
        self._price_range = price_range
        self._availability = availability

    def generate(self, product_count: int) -> Catalog:
        rng = random.Random(f"catalog:{self._seed}:{product_count}")
        products = tuple(f"product{i}" for i in range(product_count))
        low, high = self._price_range
        prices = {p: rng.randint(low, high) for p in products}
        available = frozenset(
            p for p in products if rng.random() < self._availability
        )
        return Catalog(products, prices, available)
