"""The HTTP front-end of the process-level pod server.

A :class:`PodServer` owns N shard worker processes
(:class:`~repro.server.worker.WorkerHandle` each) and a
:class:`http.server.ThreadingHTTPServer` that speaks the wire format
over five endpoints::

    POST /v1/sessions      create a session (optionally with a chosen id)
    POST /v1/submit        advance one session by one input instance
    POST /v1/submit_batch  advance many sessions; results in request order
    GET  /v1/metrics       merged per-worker runtime counters
    GET  /healthz          worker process liveness (200 ok / 503 degraded)

plus ``POST /v1/snapshot``, ``POST /v1/close``, ``POST /v1/flush`` and
``GET /v1/sessions`` for session lifecycle, and ``GET /v1/audits`` for
the merged audit findings of every worker's auditor (the queryable face
of the per-pod violations ledger).  Requests and responses are
wire messages (see :mod:`repro.server.wire`); errors come back as typed
error envelopes riding the matching HTTP status -- queue overflow is a
``429`` carrying a ``backpressure`` envelope, never a hang.

Sessions route to workers by the same CRC-32
:func:`~repro.pods.service.shard_of` hash the in-process
:class:`~repro.pods.service.ShardedPodService` uses, so moving a
deployment between the two topologies preserves every session's home
shard and on-disk store directory.  A batch fans out per shard -- each
shard's subsequence stays in order inside one worker ``submit_batch``
call (one admission slot per shard) -- and reassembles in request
order, preserving the serial-equivalence guarantee end to end.

Everything is stdlib: ``http.server`` + ``multiprocessing`` +
``threading``.  This is deliberately not a production web stack; it is
the reference topology for the paper's "pods" -- isolated relational
transducers behind a thin router -- with enough supervision (crash
restart + store rehydration, graceful drain on shutdown) to measure
honestly.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

from repro.config import env_int
from repro.errors import (
    AuditViolation,
    ReproError,
    ServerError,
    SessionError,
    WireError,
)
from repro.pods.metrics import merge_snapshots
from repro.pods.service import shard_of
from repro.server import wire
from repro.server.worker import (
    WorkerConfig,
    WorkerHandle,
    database_facts_of,
    default_worker_count,
)

#: Environment overrides for the server knobs, all parsed by the shared
#: :func:`repro.config.env_int` helper (same validation and messages as
#: ``REPRO_BATCH_CONCURRENCY`` / ``REPRO_MAX_RESIDENT``).
WORKERS_ENV = "REPRO_SERVER_WORKERS"
QUEUE_DEPTH_ENV = "REPRO_SERVER_QUEUE_DEPTH"
CONCURRENCY_ENV = "REPRO_SERVER_CONCURRENCY"


def _session_id_of_wire(session) -> str:
    """The session id inside a wire step-request ``session`` field."""
    if isinstance(session, str):
        return session
    if isinstance(session, Mapping) and isinstance(
        session.get("session_id"), str
    ):
        return session["session_id"]
    raise WireError(f"malformed request session: {session!r}")


class PodServer:
    """N worker processes, one router, one HTTP listener.

    ``transducer_factory`` must be a picklable module-level callable
    (each worker process rebuilds its own transducer); ``database`` is
    an instance or facts mapping shared read-only by every shard.
    ``store_root`` is a directory that receives one store per shard
    (``shard-00``, ``shard-01``, ... -- JSONL event directories, or
    ``shard-NN.sqlite`` files with ``store_kind="sqlite"``); ``None``
    uses a temporary directory owned (and deleted) by the server, which
    still exercises write-through -- crash rehydration works, but
    nothing survives the *server* object itself.

    Unset knobs read ``REPRO_SERVER_WORKERS`` /
    ``REPRO_SERVER_QUEUE_DEPTH`` / ``REPRO_SERVER_CONCURRENCY``; the
    queue depth is the per-worker admission bound whose overflow is the
    typed ``backpressure`` rejection.
    """

    def __init__(
        self,
        transducer_factory: "Callable[[], Any]",
        database,
        *,
        workers: "int | None" = None,
        queue_depth: "int | None" = None,
        worker_concurrency: "int | None" = None,
        store_root: "str | None" = None,
        store_kind: str = "jsonl",
        durability: str = "step",
        keep_logs: bool = True,
        auditor_factory: "Callable[[int], Any] | None" = None,
        max_resident_sessions: "int | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
        id_prefix: str = "pod",
        call_timeout: float = 60.0,
    ) -> None:
        if workers is None:
            workers = env_int(
                WORKERS_ENV,
                default=default_worker_count(),
                minimum=1,
                error=ServerError,
            )
        if queue_depth is None:
            queue_depth = env_int(
                QUEUE_DEPTH_ENV, default=64, minimum=1, error=ServerError
            )
        if worker_concurrency is None:
            worker_concurrency = env_int(
                CONCURRENCY_ENV, default=1, minimum=1, error=ServerError
            )
        if store_kind not in ("jsonl", "sqlite"):
            raise ServerError(
                f"unknown store_kind {store_kind!r}: choose jsonl or sqlite"
            )
        self.worker_count = workers
        self.queue_depth = queue_depth
        self.worker_concurrency = worker_concurrency
        self._host = host
        self._port = port
        self._id_prefix = id_prefix
        self._call_timeout = call_timeout
        self._tempdir: "tempfile.TemporaryDirectory | None" = None
        if store_root is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="pod-server-")
            store_root = self._tempdir.name
        self._store_root = str(store_root)
        os.makedirs(self._store_root, exist_ok=True)
        database_facts = database_facts_of(database)
        self._configs = [
            WorkerConfig(
                transducer_factory=transducer_factory,
                database_facts=database_facts,
                store_target=self._shard_store_target(index, store_kind),
                keep_logs=keep_logs,
                batch_concurrency=worker_concurrency,
                auditor_factory=auditor_factory,
                durability=durability,
                id_prefix=id_prefix,
                max_resident_sessions=max_resident_sessions,
            )
            for index in range(workers)
        ]
        self._workers: list[WorkerHandle] = []
        self._httpd: "ThreadingHTTPServer | None" = None
        self._http_thread: "threading.Thread | None" = None
        self._next_id = 0
        self._id_lock = threading.Lock()
        self._started = False
        self._closed = False

    def _shard_store_target(self, index: int, store_kind: str) -> str:
        name = f"shard-{index:02d}"
        if store_kind == "sqlite":
            name += ".sqlite"
        return os.path.join(self._store_root, name)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "PodServer":
        """Spawn the workers, verify each answers a ping, bind HTTP."""
        if self._started:
            return self
        if self._closed:
            raise ServerError("server already shut down")
        self._workers = [
            WorkerHandle(
                index,
                config,
                queue_depth=self.queue_depth,
                call_timeout=self._call_timeout,
            )
            for index, config in enumerate(self._configs)
        ]
        for worker in self._workers:
            worker.call("ping", {})
        self._httpd = ThreadingHTTPServer(
            (self._host, self._port), _PodRequestHandler
        )
        self._httpd.daemon_threads = True
        self._httpd.pod_server = self  # type: ignore[attr-defined]
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="pod-http",
            daemon=True,
        )
        self._http_thread.start()
        self._started = True
        return self

    @property
    def url(self) -> str:
        if self._httpd is None:
            raise ServerError("server not started")
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown(self) -> None:
        """Graceful stop: drain HTTP, then shut every worker down --
        each flushes and closes its store on the way out."""
        if self._closed:
            return
        self._closed = True
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            if self._http_thread is not None:
                self._http_thread.join(5.0)
        for worker in self._workers:
            worker.shutdown()
        if self._tempdir is not None:
            self._tempdir.cleanup()

    def __enter__(self) -> "PodServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- routing and supervision -----------------------------------------------

    def route(self, session_id: str) -> int:
        return shard_of(session_id, self.worker_count)

    def worker(self, index: int) -> WorkerHandle:
        if not 0 <= index < len(self._workers):
            raise ServerError(f"no such worker: {index}")
        return self._workers[index]

    def healthz(self) -> tuple[int, dict]:
        """(HTTP status, payload): process liveness without touching
        the workers' queues -- observability never takes a slot."""
        rows = [
            {
                "shard": worker.shard_index,
                "alive": worker.alive,
                "restarts": worker.restarts,
                "pid": worker.pid(),
            }
            for worker in self._workers
        ]
        healthy = bool(rows) and all(row["alive"] for row in rows)
        status = 200 if healthy else 503
        return status, {
            "status": "ok" if healthy else "degraded",
            "workers": rows,
        }

    # -- the API the HTTP handler (and in-process tests) drive -----------------

    def create(self, body: Mapping) -> dict:
        session_id = body.get("session_id")
        if session_id is not None:
            if not isinstance(session_id, str):
                raise WireError(f"malformed session id: {session_id!r}")
            shard = self.route(session_id)
            reply = self._workers[shard].call(
                "create", {"session_id": session_id}
            )
            return wire.message("handle", reply)
        # Generated ids must be unique across the whole server, so the
        # front-end allocates the counter and routes each candidate to
        # its hash shard; a collision with a stored session just
        # advances the counter.
        while True:
            with self._id_lock:
                candidate = f"{self._id_prefix}-{self._next_id:06d}"
                self._next_id += 1
            shard = self.route(candidate)
            try:
                reply = self._workers[shard].call(
                    "create", {"session_id": candidate}
                )
            except SessionError as error:
                if "already exists" in str(error):
                    continue
                raise
            return wire.message("handle", reply)

    def submit(self, body: Mapping) -> dict:
        session_id = _session_id_of_wire(body.get("session"))
        shard = self.route(session_id)
        reply = self._workers[shard].call("submit", dict(body))
        return wire.message("result", reply)

    def submit_batch(self, body: Mapping) -> dict:
        encoded = body.get("requests")
        if not isinstance(encoded, (list, tuple)):
            raise WireError(f"malformed batch request list: {encoded!r}")
        concurrency = body.get("concurrency")
        # Group by shard, preserving each shard's subsequence order --
        # the same grouping submit_batch does by session, one level up.
        by_shard: dict[int, list[int]] = {}
        for index, entry in enumerate(encoded):
            if not isinstance(entry, Mapping):
                raise WireError(f"malformed batch entry: {entry!r}")
            session_id = _session_id_of_wire(entry.get("session"))
            by_shard.setdefault(self.route(session_id), []).append(index)
        results: list = [None] * len(encoded)
        errors: dict[int, Exception] = {}

        def run_shard(shard: int, indices: list[int]) -> None:
            payload = {
                "requests": [encoded[i] for i in indices],
                "concurrency": concurrency,
            }
            try:
                reply = self._workers[shard].call("batch", payload)
            except Exception as error:  # kept typed; re-raised below
                errors[shard] = error
                return
            for position, result in zip(indices, reply.get("results", ())):
                results[position] = result

        shards = list(by_shard)
        if len(shards) == 1:
            run_shard(shards[0], by_shard[shards[0]])
        elif shards:
            with ThreadPoolExecutor(max_workers=len(shards)) as pool:
                for shard in shards:
                    pool.submit(run_shard, shard, by_shard[shard])
        if errors:
            # Prefer an audit violation (it carries findings the caller
            # must see); otherwise surface the failing shard that owns
            # the earliest request in the batch.
            for error in errors.values():
                if isinstance(error, AuditViolation):
                    raise error
            raise errors[min(errors, key=lambda shard: by_shard[shard][0])]
        return wire.message("results", {"results": results})

    def snapshot(self, body: Mapping) -> dict:
        session_id = body.get("session_id")
        if not isinstance(session_id, str):
            raise WireError(f"malformed session id: {session_id!r}")
        reply = self._workers[self.route(session_id)].call(
            "snapshot", {"session_id": session_id}
        )
        return wire.message("snapshot", reply)

    def close_session(self, body: Mapping) -> dict:
        session_id = body.get("session_id")
        if not isinstance(session_id, str):
            raise WireError(f"malformed session id: {session_id!r}")
        reply = self._workers[self.route(session_id)].call(
            "close", {"session_id": session_id}
        )
        return wire.message("log", reply)

    def session_ids(self) -> dict:
        ids: list[str] = []
        for worker in self._workers:
            ids.extend(worker.call("ids", {}).get("session_ids", ()))
        return wire.message("ids", {"session_ids": sorted(ids)})

    def flush(self) -> dict:
        flushed = sum(
            worker.call("flush", {}).get("flushed", 0)
            for worker in self._workers
        )
        return wire.message("flushed", {"flushed": flushed})

    def audits(self) -> dict:
        """Merged audit findings across workers, (session, step)-ordered.

        Each worker answers with its shard service's recorded findings
        -- which, when the worker's auditor carries a persistent
        ledger, include findings rehydrated from a previous process
        over the same store.
        """
        findings: list = []
        for worker in self._workers:
            findings.extend(
                wire.decode_audit_findings(worker.call("audits", {}))
            )
        findings.sort(key=lambda f: (f.session_id, f.step))
        return wire.message("audits", wire.encode_audit_findings(findings))

    def metrics(self) -> dict:
        per_worker = []
        for worker in self._workers:
            snapshot = worker.call("metrics", {}).get("metrics", {})
            per_worker.append({"shard": worker.shard_index, **snapshot})
        return wire.message(
            "metrics",
            {
                "server": {
                    "workers": self.worker_count,
                    "queue_depth": self.queue_depth,
                    "worker_concurrency": self.worker_concurrency,
                    "restarts": sum(w.restarts for w in self._workers),
                    "cpu_count": os.cpu_count(),
                },
                "pods": merge_snapshots(
                    [
                        {
                            key: value
                            for key, value in row.items()
                            if key != "shard"
                        }
                        for row in per_worker
                    ]
                ),
                "per_worker": per_worker,
            },
        )


class _PodRequestHandler(BaseHTTPRequestHandler):
    """Wire messages over HTTP; every response is a JSON envelope."""

    protocol_version = "HTTP/1.1"
    server_version = "PodServer/1"

    @property
    def pod(self) -> PodServer:
        return self.server.pod_server  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the server is library code; no per-request stderr spam

    def _respond(self, payload: Mapping, status: "int | None" = None) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(
            status if status is not None else wire.http_status_of(payload)
        )
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _respond_error(self, error: BaseException) -> None:
        self._respond(wire.encode_error(error))

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise WireError(f"request body is not JSON: {error}") from None
        return wire.parse_message(payload)

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        routes = {
            "/v1/sessions": self.pod.create,
            "/v1/submit": self.pod.submit,
            "/v1/submit_batch": self.pod.submit_batch,
            "/v1/snapshot": self.pod.snapshot,
            "/v1/close": self.pod.close_session,
            "/v1/flush": lambda body: self.pod.flush(),
        }
        handler = routes.get(self.path)
        if handler is None:
            self._respond(
                wire.message(
                    "error",
                    {
                        "code": "server-error",
                        "message": f"no such endpoint: POST {self.path}",
                        "status": 404,
                    },
                )
            )
            return
        try:
            body = self._read_body()
            response = handler(body)
        except ReproError as error:
            self._respond_error(error)
            return
        except Exception as error:
            self._respond_error(error)
            return
        self._respond(response)

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        try:
            if self.path == "/healthz":
                status, payload = self.pod.healthz()
                self._respond(wire.message("health", payload), status)
            elif self.path == "/v1/metrics":
                self._respond(self.pod.metrics())
            elif self.path == "/v1/sessions":
                self._respond(self.pod.session_ids())
            elif self.path == "/v1/audits":
                self._respond(self.pod.audits())
            else:
                self._respond(
                    wire.message(
                        "error",
                        {
                            "code": "server-error",
                            "message": f"no such endpoint: GET {self.path}",
                            "status": 404,
                        },
                    )
                )
        except ReproError as error:
            self._respond_error(error)
        except Exception as error:
            self._respond_error(error)
