"""The process-level pod server: worker processes behind HTTP.

The paper's pods are isolated relational transducers addressed by
session; :mod:`repro.pods` realizes them inside one process.  This
package lifts the same runtime across process boundaries:

* :mod:`repro.server.wire` -- the versioned JSON codec every boundary
  speaks, with a typed error envelope;
* :mod:`repro.server.worker` -- one ``multiprocessing`` worker per
  shard, each owning a :class:`~repro.pods.service.PodService` over
  its own store, with parent-side admission control (bounded queue ->
  typed :class:`~repro.errors.Backpressure`) and crash supervision
  (restart + rehydrate from the write-through store);
* :mod:`repro.server.frontend` -- the stdlib ``ThreadingHTTPServer``
  front-end routing sessions to workers by the shared CRC-32 hash;
* :mod:`repro.server.client` -- :class:`PodClient`, the in-process
  service surface over HTTP, so workload drivers and parity suites run
  unchanged against a live server.

``python -m repro.server`` starts a server from the command line.
"""

from repro.server.client import ClientSessionView, PodClient
from repro.server.frontend import (
    CONCURRENCY_ENV,
    QUEUE_DEPTH_ENV,
    WORKERS_ENV,
    PodServer,
)
from repro.server.worker import WorkerConfig, WorkerHandle, worker_main
from repro.server.wire import WIRE_VERSION

__all__ = [
    "CONCURRENCY_ENV",
    "ClientSessionView",
    "PodClient",
    "PodServer",
    "QUEUE_DEPTH_ENV",
    "WIRE_VERSION",
    "WORKERS_ENV",
    "WorkerConfig",
    "WorkerHandle",
    "worker_main",
]
