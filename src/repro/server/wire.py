"""The versioned JSON wire format of the pod server.

Every payload that crosses a process boundary -- front-end to worker
over the request queues, server to client over HTTP -- is a *message*::

    {"v": 1, "kind": "<kind>", "body": {...}}

``v`` is :data:`WIRE_VERSION`; a receiver seeing any other version (or
no version at all) rejects the payload with a typed
:class:`~repro.errors.WireError` instead of guessing.  ``kind`` names
the body's schema; :func:`parse_message` validates the envelope, raises
the decoded exception for ``kind == "error"``, and returns the body
otherwise.

Facts travel in the exact sorted-row JSON the session stores persist
(:func:`repro.pods.store.encode_facts`), so a step's output bytes are
identical in a JSONL event file, a SQLite row, and an HTTP response --
the byte-identity the serial-vs-server parity suite asserts.

Errors map to wire codes (and suggested HTTP statuses) by exception
type; :func:`decode_error` reconstructs the *same* typed exception on
the far side, so a :class:`~repro.server.client.PodClient` caller
catches :class:`~repro.errors.SessionError` /
:class:`~repro.errors.AuditViolation` /
:class:`~repro.errors.Backpressure` exactly as an in-process caller
would.  (Audit findings travel as plain ``(session_id, step,
violation)`` records -- counterexample traces and batch partial results
stay server-side.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import (
    AuditViolation,
    Backpressure,
    ReproError,
    ServerError,
    SessionError,
    ShardError,
    StoreError,
    WireError,
)
from repro.pods.api import (
    SessionHandle,
    SessionSnapshot,
    StepRequest,
    StepResult,
    facts_of,
)
from repro.pods.store import decode_facts, encode_facts

if TYPE_CHECKING:
    from repro.relalg.instance import Instance
    from repro.relalg.schema import DatabaseSchema

WIRE_VERSION = 1


# -- envelope ------------------------------------------------------------------


def message(kind: str, body: dict) -> dict:
    """Wrap a body in the versioned envelope."""
    return {"v": WIRE_VERSION, "kind": kind, "body": body}


def parse_message(payload, expect: "str | None" = None) -> dict:
    """Validate an envelope; return its body.

    Raises :class:`~repro.errors.WireError` for non-objects, missing or
    unsupported versions, and unexpected kinds.  An ``error`` message
    raises the decoded typed exception instead of returning.
    """
    if not isinstance(payload, Mapping):
        raise WireError(
            f"wire payload must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("v")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version!r} (this side speaks "
            f"{WIRE_VERSION})"
        )
    kind = payload.get("kind")
    if not isinstance(kind, str):
        raise WireError(f"wire message has no kind: {payload!r}")
    body = payload.get("body")
    if not isinstance(body, Mapping):
        raise WireError(f"wire message {kind!r} has no body object")
    if kind == "error":
        raise decode_error(body)
    if expect is not None and kind != expect:
        raise WireError(f"expected a {expect!r} message, got {kind!r}")
    return dict(body)


# -- facts and the typed API objects -------------------------------------------


def encode_inputs(inputs) -> dict:
    """An :class:`InputLike` (instance or facts mapping) as wire facts."""
    from repro.relalg.instance import Instance

    if isinstance(inputs, Instance):
        return encode_facts(facts_of(inputs))
    if isinstance(inputs, Mapping):
        try:
            return encode_facts(
                {
                    str(name): frozenset(tuple(row) for row in rows)
                    for name, rows in inputs.items()
                }
            )
        except TypeError as error:
            raise WireError(f"unencodable step inputs: {error}") from None
    raise WireError(
        f"step inputs must be an Instance or a facts mapping, "
        f"got {type(inputs).__name__}"
    )


def _facts_body(encoded, label: str) -> dict[str, frozenset[tuple]]:
    """Decode wire facts, rejecting structural garbage with WireError."""
    if not isinstance(encoded, Mapping):
        raise WireError(f"{label} must be a facts object, got {encoded!r}")
    try:
        return decode_facts(
            {
                name: [list(row) for row in rows]
                for name, rows in encoded.items()
            }
        )
    except (TypeError, AttributeError) as error:
        raise WireError(f"malformed {label}: {error}") from None


def encode_handle(handle: SessionHandle) -> dict:
    return {"session_id": handle.session_id, "shard": handle.shard}


def decode_handle(body) -> SessionHandle:
    if not isinstance(body, Mapping) or not isinstance(
        body.get("session_id"), str
    ):
        raise WireError(f"malformed session handle: {body!r}")
    shard = body.get("shard", 0)
    if not isinstance(shard, int) or isinstance(shard, bool):
        raise WireError(f"malformed session handle shard: {body!r}")
    return SessionHandle(body["session_id"], shard)


def encode_step_request(request: StepRequest) -> dict:
    """A :class:`StepRequest` body; the session may be a bare id."""
    session = request.session
    if isinstance(session, SessionHandle):
        encoded_session: "dict | str" = encode_handle(session)
    elif isinstance(session, str):
        encoded_session = session
    else:
        raise WireError(
            f"step request session must be a handle or id string, "
            f"got {type(session).__name__}"
        )
    return {"session": encoded_session, "inputs": encode_inputs(request.inputs)}


def decode_step_request(body) -> StepRequest:
    if not isinstance(body, Mapping) or "session" not in body:
        raise WireError(f"malformed step request: {body!r}")
    session = body["session"]
    if isinstance(session, str):
        decoded: "SessionHandle | str" = session
    else:
        decoded = decode_handle(session)
    return StepRequest(decoded, _facts_body(body.get("inputs"), "step inputs"))


def encode_step_result(result: StepResult) -> dict:
    return {
        "session": encode_handle(result.session),
        "step": result.step,
        "output": encode_facts(facts_of(result.output)),
        "latency_seconds": result.latency_seconds,
    }


def decode_step_result(body, outputs_schema: "DatabaseSchema") -> StepResult:
    """Rebuild a typed :class:`StepResult`; the caller supplies the
    output schema (wire messages carry facts, never schemas)."""
    from repro.relalg.instance import Instance

    if not isinstance(body, Mapping):
        raise WireError(f"malformed step result: {body!r}")
    step = body.get("step")
    if not isinstance(step, int) or isinstance(step, bool):
        raise WireError(f"malformed step result counter: {body!r}")
    return StepResult(
        session=decode_handle(body.get("session")),
        step=step,
        output=Instance(
            outputs_schema, _facts_body(body.get("output"), "step output")
        ),
        latency_seconds=float(body.get("latency_seconds", 0.0)),
    )


def encode_snapshot(snapshot: SessionSnapshot) -> dict:
    return {
        "session_id": snapshot.session_id,
        "steps": snapshot.steps,
        "state": encode_facts(snapshot.state_facts),
        "logs": [encode_facts(entry) for entry in snapshot.log_facts],
    }


def decode_snapshot(body) -> SessionSnapshot:
    if not isinstance(body, Mapping) or not isinstance(
        body.get("session_id"), str
    ):
        raise WireError(f"malformed session snapshot: {body!r}")
    steps = body.get("steps")
    if not isinstance(steps, int) or isinstance(steps, bool):
        raise WireError(f"malformed snapshot step counter: {body!r}")
    logs = body.get("logs", [])
    if not isinstance(logs, (list, tuple)):
        raise WireError(f"malformed snapshot logs: {body!r}")
    return SessionSnapshot(
        session_id=body["session_id"],
        steps=steps,
        state_facts=_facts_body(body.get("state"), "snapshot state"),
        log_facts=tuple(
            _facts_body(entry, "snapshot log entry") for entry in logs
        ),
    )


def encode_log_entries(entries) -> list:
    """Log :class:`Instance` entries as a list of wire facts."""
    return [encode_facts(facts_of(entry)) for entry in entries]


def decode_log_entries(
    entries, log_schema: "DatabaseSchema"
) -> "tuple[Instance, ...]":
    """Wire log entries as :class:`Instance` objects over ``log_schema``."""
    from repro.relalg.instance import Instance

    if not isinstance(entries, (list, tuple)):
        raise WireError(f"malformed log entries: {entries!r}")
    return tuple(
        Instance(log_schema, _facts_body(entry, "log entry"))
        for entry in entries
    )


# -- the typed error envelope --------------------------------------------------

#: exception type -> (wire code, HTTP status).  Ordered most-specific
#: first; the first matching type wins.
_ERROR_CODES: tuple[tuple[type, str, int], ...] = (
    (Backpressure, "backpressure", 429),
    (WireError, "wire-error", 400),
    (ServerError, "server-error", 503),
    (AuditViolation, "audit-violation", 409),
    (ShardError, "shard-error", 400),
    (StoreError, "store-error", 500),
    (SessionError, "session-error", 400),
    (ReproError, "repro-error", 400),
)


@dataclass(frozen=True)
class WireFinding:
    """An audit finding as it survives the wire: the judgment, minus
    the replayable trace (traces carry live instances and stay on the
    server; re-derive them there when needed).  ``property_name`` names
    the violated spec (empty for findings from servers predating the
    audits endpoint)."""

    session_id: str
    step: int
    violation: str
    property_name: str = ""


def _property_name_of(finding) -> str:
    """The violated spec's name, from whichever shape carries it."""
    name = getattr(finding, "property_name", None)
    if name:
        return str(name)
    spec = getattr(finding, "spec", None)
    describe = getattr(spec, "describe", None)
    if callable(describe):
        return str(describe())
    return ""


def encode_audit_findings(findings) -> dict:
    """An ``audits`` body: the service's recorded findings, in order."""
    return {
        "findings": [
            {
                "session_id": str(finding.session_id),
                "step": int(finding.step),
                "violation": str(finding.violation),
                "property": _property_name_of(finding),
            }
            for finding in findings
        ]
    }


def decode_audit_findings(body) -> tuple[WireFinding, ...]:
    """Inverse of :func:`encode_audit_findings`."""
    findings = body.get("findings")
    if not isinstance(findings, (list, tuple)):
        raise WireError(f"audits body has no findings list: {body!r}")
    return tuple(
        WireFinding(
            session_id=str(f.get("session_id", "")),
            step=int(f.get("step", 0)),
            violation=str(f.get("violation", "")),
            property_name=str(f.get("property", "")),
        )
        for f in findings
        if isinstance(f, Mapping)
    )


def error_code_of(error: BaseException) -> tuple[str, int]:
    """(wire code, HTTP status) for an exception."""
    for exc_type, code, status in _ERROR_CODES:
        if isinstance(error, exc_type):
            return code, status
    return "internal", 500


def encode_error(error: BaseException) -> dict:
    """An exception as an ``error`` message."""
    code, status = error_code_of(error)
    details: dict = {}
    if isinstance(error, Backpressure):
        if error.shard is not None:
            details["shard"] = error.shard
        if error.queue_depth is not None:
            details["queue_depth"] = error.queue_depth
    if isinstance(error, AuditViolation):
        details["findings"] = [
            {
                "session_id": str(finding.session_id),
                "step": int(finding.step),
                "violation": str(finding.violation),
            }
            for finding in error.findings
        ]
    body = {"code": code, "message": str(error), "status": status}
    if details:
        details = {key: details[key] for key in sorted(details)}
        body["details"] = details
    return message("error", body)


def decode_error(body) -> Exception:
    """The typed exception an ``error`` body describes.

    Unknown codes decode to :class:`~repro.errors.ServerError` (a
    future server may grow codes this client predates); a structurally
    broken error body decodes to :class:`~repro.errors.WireError`.
    """
    if not isinstance(body, Mapping) or not isinstance(
        body.get("code"), str
    ):
        return WireError(f"malformed error envelope: {body!r}")
    code = body["code"]
    text = str(body.get("message", code))
    details = body.get("details")
    details = details if isinstance(details, Mapping) else {}
    if code == "backpressure":
        return Backpressure(
            text,
            shard=details.get("shard"),
            queue_depth=details.get("queue_depth"),
        )
    if code == "audit-violation":
        findings = tuple(
            WireFinding(
                session_id=str(f.get("session_id", "")),
                step=int(f.get("step", 0)),
                violation=str(f.get("violation", "")),
            )
            for f in details.get("findings", ())
            if isinstance(f, Mapping)
        )
        return AuditViolation(text, findings=findings)
    plain = {
        "wire-error": WireError,
        "server-error": ServerError,
        "shard-error": ShardError,
        "store-error": StoreError,
        "session-error": SessionError,
        "repro-error": ReproError,
    }.get(code)
    if plain is not None:
        return plain(text)
    return ServerError(f"[{code}] {text}")


def http_status_of(payload: Mapping) -> int:
    """The HTTP status an encoded message should ride on (200 unless
    the payload is an error envelope carrying its own status)."""
    if (
        isinstance(payload, Mapping)
        and payload.get("kind") == "error"
        and isinstance(payload.get("body"), Mapping)
    ):
        status = payload["body"].get("status")
        if isinstance(status, int) and not isinstance(status, bool):
            return status
        code = payload["body"].get("code")
        for _exc_type, known, status in _ERROR_CODES:
            if code == known:
                return status
        return 500
    return 200
