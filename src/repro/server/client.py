"""`PodClient`: the in-process service surface, spoken over HTTP.

The client exposes the same traffic API as
:class:`~repro.pods.service.PodService` /
:class:`~repro.pods.service.ShardedPodService` -- ``create_session`` /
``submit`` / ``submit_batch`` / ``run_session`` / ``drive`` /
``session`` / ``close_session`` / ``metrics`` -- so workload drivers
and parity suites written against the in-process services (e.g.
:func:`repro.commerce.workloads.simulate_concurrent_customers`) run
unchanged against a live :class:`~repro.server.frontend.PodServer`.

Wire messages carry facts, never schemas, so the client holds its own
copy of the transducer (cheap: schemas and programs, no session state)
purely to rebuild typed :class:`~repro.relalg.instance.Instance`
objects -- step outputs over the output schema, log entries over the
log schema, state over the state schema.  Equality with in-process
results is therefore exact, which is what the byte-identical parity
tests assert.

Typed errors round-trip: a 4xx/5xx response carries an error envelope,
and the client raises the same exception type an in-process caller
would see -- :class:`~repro.errors.SessionError` for a bad session,
:class:`~repro.errors.AuditViolation` with findings,
:class:`~repro.errors.Backpressure` for queue overflow (HTTP 429).
Transport failures (connection refused, malformed response) raise
:class:`~repro.errors.ServerError`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.errors import ServerError, WireError
from repro.pods.api import (
    SessionHandle,
    SessionSnapshot,
    StepRequest,
    StepResult,
    session_id_of,
)
from repro.pods.session import SessionLog
from repro.server import wire

if TYPE_CHECKING:
    from repro.core.transducer import InputLike, RelationalTransducer
    from repro.relalg.instance import Instance


class ClientSessionView:
    """A read-only session view built from one snapshot fetch.

    Quacks like :class:`~repro.pods.session.Session` where read paths
    care: ``steps``, ``state``, ``log()``, ``snapshot()``.  The view is
    a point-in-time copy -- fetch a fresh one (``client.session(...)``)
    after more traffic.
    """

    def __init__(
        self,
        snapshot: SessionSnapshot,
        transducer: "RelationalTransducer",
    ) -> None:
        from repro.relalg.instance import Instance

        schema = transducer.schema
        self.session_id = snapshot.session_id
        self.steps = snapshot.steps
        self.state: "Instance" = Instance(schema.state, snapshot.state_facts)
        self._entries = tuple(
            Instance(schema.log_schema, entry)
            for entry in snapshot.log_facts
        )
        self._snapshot = snapshot

    def log(self) -> SessionLog:
        return SessionLog(self.session_id, self._entries)

    def snapshot(self) -> SessionSnapshot:
        return self._snapshot


class ClientMetricsView:
    """``client.metrics`` -- duck-types the ``metrics`` attribute of a
    service: ``snapshot()`` returns the merged per-worker counters."""

    def __init__(self, client: "PodClient") -> None:
        self._client = client

    def snapshot(self) -> dict:
        return self._client.metrics_payload()["pods"]


class PodClient:
    """Speak the pod wire protocol to a server at ``base_url``.

    ``transducer`` must be (an equal copy of) the transducer the server
    runs -- typically the same module-level factory the server was
    configured with, called locally.
    """

    def __init__(
        self,
        base_url: str,
        transducer: "RelationalTransducer",
        *,
        timeout: float = 60.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self._transducer = transducer
        self.metrics = ClientMetricsView(self)

    # -- transport -------------------------------------------------------------

    def _request(self, method: str, path: str, payload=None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                raw = response.read()
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                envelope = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                raise ServerError(
                    f"HTTP {error.code} from {method} {path}: "
                    f"{raw[:200]!r}"
                ) from None
            wire.parse_message(envelope)  # raises the typed error
            # A non-error envelope on a 4xx/5xx (e.g. the degraded
            # /healthz payload on 503) is still a valid message; let
            # the caller interpret it.
            return envelope
        except urllib.error.URLError as error:
            raise ServerError(
                f"cannot reach pod server at {url}: {error.reason}"
            ) from None
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise WireError(
                f"non-JSON response from {method} {path}: {error}"
            ) from None

    def _post(self, path: str, kind: str, body: dict, expect: str) -> dict:
        envelope = self._request("POST", path, wire.message(kind, body))
        return wire.parse_message(envelope, expect=expect)

    def _get(self, path: str, expect: str) -> dict:
        return wire.parse_message(self._request("GET", path), expect=expect)

    # -- the service surface ---------------------------------------------------

    def create_session(
        self, session_id: "str | None" = None
    ) -> SessionHandle:
        body = {} if session_id is None else {"session_id": session_id}
        reply = self._post("/v1/sessions", "create", body, "handle")
        return wire.decode_handle(reply)

    def create_sessions(self, count: int) -> list[SessionHandle]:
        return [self.create_session() for _ in range(count)]

    def submit(self, request: StepRequest) -> StepResult:
        reply = self._post(
            "/v1/submit", "submit", wire.encode_step_request(request), "result"
        )
        return wire.decode_step_result(reply, self._transducer.schema.outputs)

    def submit_batch(
        self,
        requests: Iterable[StepRequest],
        *,
        concurrency: "int | None" = None,
    ) -> list[StepResult]:
        encoded = [wire.encode_step_request(r) for r in requests]
        reply = self._post(
            "/v1/submit_batch",
            "batch",
            {"requests": encoded, "concurrency": concurrency},
            "results",
        )
        outputs = self._transducer.schema.outputs
        return [
            wire.decode_step_result(body, outputs)
            for body in reply.get("results", ())
        ]

    def run_session(
        self,
        session: "SessionHandle | str",
        input_sequence: "Sequence[InputLike]",
    ) -> list[StepResult]:
        return self.submit_batch(
            StepRequest(session, inputs) for inputs in input_sequence
        )

    def drive(
        self,
        workload: "Mapping[SessionHandle | str, Sequence[InputLike]]",
        round_robin: bool = True,
    ) -> None:
        """Same semantics as the in-process ``drive``; the round-robin
        interleaving travels as one batch (per-session order is what
        the runtime guarantees, and it is preserved either way)."""
        items = sorted(
            workload.items(), key=lambda item: session_id_of(item[0])
        )
        requests: list[StepRequest] = []
        if round_robin:
            position = 0
            remaining = True
            while remaining:
                remaining = False
                for session, sequence in items:
                    if position < len(sequence):
                        requests.append(
                            StepRequest(session, sequence[position])
                        )
                        remaining = (
                            remaining or position + 1 < len(sequence)
                        )
                position += 1
        else:
            for session, sequence in items:
                requests.extend(
                    StepRequest(session, inputs) for inputs in sequence
                )
        if requests:
            self.submit_batch(requests)

    def session(self, session: "SessionHandle | str") -> ClientSessionView:
        body = {"session_id": session_id_of(session)}
        reply = self._post("/v1/snapshot", "snapshot", body, "snapshot")
        return ClientSessionView(
            wire.decode_snapshot(reply), self._transducer
        )

    def has_session(self, session: "SessionHandle | str") -> bool:
        return session_id_of(session) in self.session_ids()

    def session_ids(self) -> list[str]:
        reply = self._get("/v1/sessions", "ids")
        return list(reply.get("session_ids", ()))

    def close_session(self, session: "SessionHandle | str") -> SessionLog:
        body = {"session_id": session_id_of(session)}
        reply = self._post("/v1/close", "close", body, "log")
        return SessionLog(
            reply.get("session_id", body["session_id"]),
            wire.decode_log_entries(
                reply.get("entries", ()), self._transducer.schema.log_schema
            ),
        )

    def flush(self) -> int:
        reply = self._post("/v1/flush", "flush", {}, "flushed")
        return int(reply.get("flushed", 0))

    # -- observability ---------------------------------------------------------

    def audit_findings(
        self, session: "SessionHandle | str | None" = None
    ) -> "list[wire.WireFinding]":
        """``GET /v1/audits``: the server's recorded audit findings.

        The merged, (session, step)-ordered view across every worker's
        auditor -- including findings rehydrated from a persistent
        ledger after a server restart.  Mirrors the in-process
        ``service.audit_findings()`` signature, minus the traces (they
        stay server-side).
        """
        reply = self._get("/v1/audits", "audits")
        findings = wire.decode_audit_findings(reply)
        if session is None:
            return list(findings)
        session_id = session_id_of(session)
        return [f for f in findings if f.session_id == session_id]

    def metrics_payload(self) -> dict:
        """The full ``/v1/metrics`` body: ``server`` config + merged
        ``pods`` counters + ``per_worker`` breakdown."""
        return self._get("/v1/metrics", "metrics")

    def healthz(self) -> dict:
        """The ``/healthz`` body -- degraded servers answer 503 with
        the same payload shape (``status`` says so), not an error."""
        return self._get("/healthz", "health")
