"""``python -m repro.server`` -- run a pod server from the shell.

Starts a :class:`~repro.server.frontend.PodServer` over one of the
commerce models, prints the listening URL on stdout (machine-readable:
the last whitespace-separated token of the first line), and serves
until SIGINT/SIGTERM, then drains: HTTP stops, every worker shuts down
and flushes its store, and the process exits 0.

    $ python -m repro.server --workers 2 --port 8080 --store /tmp/pods
    pod server listening on http://127.0.0.1:8080
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.commerce.models import (
    build_buggy_store,
    build_friendly,
    build_guarded_store,
    build_short,
    default_database,
)
from repro.server.frontend import PodServer

#: name -> module-level transducer factory (must stay picklable for
#: the spawn-context workers).
MODELS = {
    "short": build_short,
    "friendly": build_friendly,
    "buggy": build_buggy_store,
    "guarded": build_guarded_store,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve commerce-model pods over HTTP.",
    )
    what = parser.add_mutually_exclusive_group()
    what.add_argument(
        "--model",
        choices=sorted(MODELS),
        default=None,
        help="which commerce transducer the pods run (default: short)",
    )
    what.add_argument(
        "--scenario",
        metavar="NAME",
        default=None,
        help="serve a registered scenario's transducer + database "
        "instead (see `python -m repro.scenarios --list`)",
    )
    parser.add_argument(
        "--db-seed",
        type=int,
        default=0,
        help="scenario database seed (with --scenario; default 0)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="scenario database size knob (with --scenario)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: pick a free one and print it)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard worker processes (default: REPRO_SERVER_WORKERS "
        "or one per CPU, max 4)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="per-worker admission bound; overflow answers 429 "
        "(default: REPRO_SERVER_QUEUE_DEPTH or 64)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=None,
        help="in-worker submit_batch threads "
        "(default: REPRO_SERVER_CONCURRENCY or 1)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="store root; one store per shard inside "
        "(default: a temporary directory)",
    )
    parser.add_argument(
        "--store-kind", choices=("jsonl", "sqlite"), default="jsonl"
    )
    parser.add_argument(
        "--durability",
        choices=("full", "step", "batched"),
        default="step",
        help="SQLite durability mode (ignored for jsonl stores)",
    )
    parser.add_argument(
        "--no-logs",
        action="store_true",
        help="disable per-session log retention (load generation)",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.scenario is not None:
        # functools.partial over the module-level registry lookup stays
        # picklable for the spawn-context workers; the database is a
        # pure function of (name, seed, scale), so clients rebuild the
        # identical world locally for parity checks.
        from functools import partial

        from repro.scenarios import scenario_database, scenario_transducer

        factory = partial(scenario_transducer, args.scenario)
        database = scenario_database(
            args.scenario, seed=args.db_seed, scale=args.scale
        )
    else:
        factory = MODELS[args.model or "short"]
        database = default_database()
    server = PodServer(
        factory,
        database,
        workers=args.workers,
        queue_depth=args.queue_depth,
        worker_concurrency=args.concurrency,
        store_root=args.store,
        store_kind=args.store_kind,
        durability=args.durability,
        keep_logs=not args.no_logs,
        host=args.host,
        port=args.port,
    )
    server.start()
    print(f"pod server listening on {server.url}", flush=True)

    stop = threading.Event()

    def request_stop(signum, frame):
        stop.set()

    signal.signal(signal.SIGINT, request_stop)
    signal.signal(signal.SIGTERM, request_stop)
    # Poll so a signal delivered to a non-main thread is still acted
    # on promptly (the handler only runs when the main thread wakes).
    while not stop.wait(0.5):
        pass
    server.shutdown()
    print("pod server shut down cleanly", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
