"""Shard worker processes and their parent-side handles.

The process-level server runs each shard as its own
:mod:`multiprocessing` worker: a child process that owns one
:class:`~repro.pods.service.PodService` over its own store directory
and serves wire-format requests from a queue.  Session ids route to
workers with the same CRC-32 :func:`~repro.pods.service.shard_of` hash
a :class:`~repro.pods.service.ShardedPodService` uses, so a session's
home shard -- and its on-disk store layout -- is identical whether the
shards are threads in one process or separate processes behind HTTP.

Workers always start via the ``spawn`` context: the front-end is
threaded (HTTP handler threads, per-worker dispatcher threads), and
forking a threaded parent -- which a crash restart would do constantly
-- is a deadlock lottery.  Spawn also forces the picklability
discipline that keeps :class:`WorkerConfig` honest: a worker is rebuilt
from scratch (factory callable + plain facts), never from leaked parent
state.

Backpressure is enforced on the *parent* side: each
:class:`WorkerHandle` holds a semaphore of ``queue_depth`` admission
slots, and a request that cannot take a slot without blocking is
rejected immediately with a typed :class:`~repro.errors.Backpressure`
-- the transport queues themselves stay unbounded, so an admitted
request never blocks on ``put``.  Overload is therefore a fast, typed
"try again later", never a hang.

Supervision: the handle detects a dead worker process on the next call
(or via :meth:`WorkerHandle.check`), fails the calls that were in
flight with :class:`~repro.errors.ServerError`, and restarts the
worker, which rehydrates every session from the write-through store --
logs and snapshots afterwards are byte-identical to an uninterrupted
run, because nothing observable ever lived only in worker memory.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.errors import Backpressure, ReproError, ServerError, WireError
from repro.pods.api import SessionHandle, facts_of
from repro.pods.service import PodService
from repro.server import wire

if TYPE_CHECKING:
    from repro.core.transducer import RelationalTransducer

#: Wait granularity while a call polls for its response; short enough
#: that a worker crash is noticed promptly, long enough to stay cheap.
_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs to rebuild its shard.

    Must stay picklable under the ``spawn`` context: the transducer
    travels as a module-level *factory* callable (e.g.
    :func:`repro.commerce.models.build_short`), the database as plain
    facts, the store as a filesystem target -- never live objects.
    """

    transducer_factory: "Callable[[], RelationalTransducer]"
    database_facts: Mapping[str, frozenset]
    #: This worker's store: a directory (JSONL event store), a
    #: ``.sqlite`` file path, or ``None`` for in-memory (no restart
    #: durability -- test use only).
    store_target: "str | None"
    keep_logs: bool = True
    #: Threads the worker's own ``submit_batch`` may fan out to.
    batch_concurrency: int = 1
    #: Optional module-level ``factory(shard_index) -> OnlineAuditor``.
    auditor_factory: "Callable[[int], Any] | None" = None
    #: Durability mode for SQLite store targets.
    durability: str = "step"
    id_prefix: str = "pod"
    max_resident_sessions: "int | None" = None


def _open_worker_store(config: WorkerConfig):
    target = config.store_target
    if target is None:
        return None
    if str(target).endswith((".sqlite", ".sqlite3", ".db")):
        from repro.pods.sqlite_store import SqliteStore

        return SqliteStore(target, durability=config.durability)
    return target


def _build_service(shard_index: int, config: WorkerConfig) -> PodService:
    transducer = config.transducer_factory()
    auditor = None
    if config.auditor_factory is not None:
        auditor = config.auditor_factory(shard_index)
    return PodService(
        transducer,
        dict(config.database_facts),
        store=_open_worker_store(config),
        keep_logs=config.keep_logs,
        shard_index=shard_index,
        id_prefix=config.id_prefix,
        auditor=auditor,
        max_resident_sessions=config.max_resident_sessions,
    )


# -- the worker process --------------------------------------------------------


def _handle_op(service: PodService, shard_index: int, op: str, body) -> dict:
    """Execute one wire op against the shard's service; return a body."""
    if op == "create":
        session_id = body.get("session_id")
        if session_id is not None and not isinstance(session_id, str):
            raise WireError(f"malformed session id: {session_id!r}")
        handle = service.create_session(session_id)
        # The service stamps shard 0 on its own handles; the worker
        # speaks for a shard of the larger server, so re-stamp.
        handle = SessionHandle(handle.session_id, shard_index)
        return wire.message("handle", wire.encode_handle(handle))
    if op == "submit":
        result = service.submit(wire.decode_step_request(body))
        stamped = wire.encode_step_result(result)
        stamped["session"]["shard"] = shard_index
        return wire.message("result", stamped)
    if op == "batch":
        encoded = body.get("requests")
        if not isinstance(encoded, (list, tuple)):
            raise WireError(f"malformed batch request list: {encoded!r}")
        requests = [wire.decode_step_request(entry) for entry in encoded]
        concurrency = body.get("concurrency")
        if concurrency is None:
            concurrency = _WORKER_BATCH_CONCURRENCY[0]
        elif (
            not isinstance(concurrency, int)
            or isinstance(concurrency, bool)
            or concurrency < 1
        ):
            raise WireError(f"malformed batch concurrency: {concurrency!r}")
        results = service.submit_batch(requests, concurrency=concurrency)
        encoded_results = []
        for result in results:
            stamped = wire.encode_step_result(result)
            stamped["session"]["shard"] = shard_index
            encoded_results.append(stamped)
        return wire.message("results", {"results": encoded_results})
    if op == "snapshot":
        session_id = body.get("session_id")
        if not isinstance(session_id, str):
            raise WireError(f"malformed session id: {session_id!r}")
        snapshot = service.session(session_id).snapshot()
        return wire.message("snapshot", wire.encode_snapshot(snapshot))
    if op == "close":
        session_id = body.get("session_id")
        if not isinstance(session_id, str):
            raise WireError(f"malformed session id: {session_id!r}")
        log = service.close_session(session_id)
        return wire.message(
            "log",
            {
                "session_id": str(log.session_id),
                "entries": wire.encode_log_entries(log.entries),
            },
        )
    if op == "ids":
        return wire.message("ids", {"session_ids": service.session_ids()})
    if op == "metrics":
        return wire.message(
            "metrics", {"metrics": service.metrics.snapshot()}
        )
    if op == "flush":
        return wire.message("flushed", {"flushed": service.flush()})
    if op == "audits":
        return wire.message(
            "audits", wire.encode_audit_findings(service.audit_findings())
        )
    if op == "ping":
        return wire.message("pong", {"shard": shard_index})
    if op == "sleep":
        # Test/ops aid: hold this worker's single dispatch loop busy so
        # admission slots saturate deterministically (backpressure
        # tests) without patching timing internals.
        seconds = float(body.get("seconds", 0.0))
        time.sleep(min(seconds, 30.0))
        return wire.message("slept", {"seconds": seconds})
    raise WireError(f"unknown worker op {op!r}")


#: The worker's resolved default batch concurrency, set by worker_main
#: (a module-level cell so _handle_op stays a pure function of its
#: arguments otherwise).
_WORKER_BATCH_CONCURRENCY = [1]


def worker_main(
    shard_index: int,
    config: WorkerConfig,
    requests: "multiprocessing.Queue",
    responses: "multiprocessing.Queue",
) -> None:
    """Entry point of a shard worker process.

    Serves ``(request_id, op, wire_message)`` tuples until a
    ``shutdown`` op arrives; every response -- success or typed error
    envelope -- is tagged with its request id.  The service's store is
    flushed and closed on *any* exit path, including SIGTERM.
    """
    # Graceful SIGTERM: raise SystemExit so the finally below closes
    # the store.  Installed before the store exists, so the SQLite
    # write-behind exit hooks (which only claim a default SIGTERM
    # disposition) defer to this handler.
    signal.signal(signal.SIGTERM, lambda signum, frame: sys.exit(0))
    _WORKER_BATCH_CONCURRENCY[0] = max(1, int(config.batch_concurrency))
    service = _build_service(shard_index, config)
    import queue as queue_module

    try:
        while True:
            # Poll with a timeout rather than blocking forever: the OS
            # may deliver SIGTERM to a non-main thread (the queue
            # feeder), in which case the handler only runs once the
            # main thread wakes -- a bounded wait makes that prompt.
            try:
                request_id, op, payload = requests.get(timeout=0.5)
            except queue_module.Empty:
                continue
            if op == "shutdown":
                responses.put(
                    (request_id, wire.message("bye", {"shard": shard_index}))
                )
                break
            try:
                body = wire.parse_message(payload, expect=op)
                response = _handle_op(service, shard_index, op, body)
            except ReproError as error:
                response = wire.encode_error(error)
            except Exception as error:  # never let a request kill the worker
                response = wire.encode_error(error)
            responses.put((request_id, response))
    finally:
        try:
            service.close()
        except Exception:
            pass


# -- the parent-side handle ----------------------------------------------------


@dataclass
class _Pending:
    event: threading.Event = field(default_factory=threading.Event)
    response: Any = None
    generation: int = 0


class WorkerHandle:
    """The front-end's view of one shard worker process.

    Thread-safe: HTTP handler threads call :meth:`call` concurrently;
    a per-handle lock guards the pending-call table and the
    restart-on-crash transition, and a bounded semaphore enforces the
    admission limit (``queue_depth`` requests in flight per worker).
    """

    def __init__(
        self,
        shard_index: int,
        config: WorkerConfig,
        *,
        queue_depth: int = 64,
        call_timeout: float = 60.0,
    ) -> None:
        if queue_depth < 1:
            raise ServerError(f"queue_depth must be >= 1, got {queue_depth}")
        self.shard_index = shard_index
        self.queue_depth = queue_depth
        self.call_timeout = call_timeout
        self.restarts = 0
        self._config = config
        self._ctx = multiprocessing.get_context("spawn")
        self._admission = threading.BoundedSemaphore(queue_depth)
        self._lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._request_ids = itertools.count(1)
        self._generation = 0
        self._process: "multiprocessing.process.BaseProcess | None" = None
        self._requests = None
        self._responses = None
        self._spawn_locked()

    # -- lifecycle -------------------------------------------------------------

    def _spawn_locked(self) -> None:
        """Start (or restart) the worker process.  Caller holds no lock
        on first spawn; restarts hold ``self._lock``."""
        self._generation += 1
        generation = self._generation
        self._requests = self._ctx.Queue()
        self._responses = self._ctx.Queue()
        self._process = self._ctx.Process(
            target=worker_main,
            args=(
                self.shard_index,
                self._config,
                self._requests,
                self._responses,
            ),
            name=f"pod-worker-{self.shard_index}",
            daemon=True,
        )
        self._process.start()
        dispatcher = threading.Thread(
            target=self._dispatch,
            args=(generation, self._responses),
            name=f"pod-dispatch-{self.shard_index}",
            daemon=True,
        )
        dispatcher.start()

    def _dispatch(self, generation: int, responses) -> None:
        """Deliver worker responses to their waiting callers."""
        import queue as queue_module

        while True:
            with self._lock:
                if generation != self._generation:
                    return
            try:
                request_id, payload = responses.get(timeout=0.2)
            except queue_module.Empty:
                continue
            except (EOFError, OSError, ValueError):
                return
            with self._lock:
                pending = self._pending.pop(request_id, None)
            if pending is not None:
                pending.response = payload
                pending.event.set()

    @property
    def alive(self) -> bool:
        process = self._process
        return process is not None and process.is_alive()

    def check(self) -> bool:
        """Detect a dead worker and restart it; True if it was alive."""
        if self.alive:
            return True
        with self._lock:
            self._restart_locked()
        return False

    def _restart_locked(self) -> None:
        if self._process is not None and self._process.is_alive():
            return
        # Fail everything in flight on the dead generation: the caller
        # cannot know whether its request was applied, and the typed
        # error says exactly that.
        crashed = wire.encode_error(
            ServerError(
                f"worker {self.shard_index} died with request in flight; "
                f"restarted -- retry against the rehydrated shard"
            )
        )
        for pending in self._pending.values():
            pending.response = crashed
            pending.event.set()
        self._pending.clear()
        self.restarts += 1
        self._spawn_locked()

    # -- calls -----------------------------------------------------------------

    def call(self, op: str, body: dict, *, timeout: "float | None" = None):
        """Send one op; return the response body (or raise its error).

        Rejects immediately with :class:`~repro.errors.Backpressure`
        when all ``queue_depth`` admission slots are taken.
        """
        if not self._admission.acquire(blocking=False):
            raise Backpressure(
                f"worker {self.shard_index} is saturated "
                f"({self.queue_depth} requests in flight); retry later",
                shard=self.shard_index,
                queue_depth=self.queue_depth,
            )
        try:
            return self._call_admitted(op, body, timeout)
        finally:
            self._admission.release()

    def _call_admitted(self, op: str, body: dict, timeout: "float | None"):
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.call_timeout
        )
        pending = _Pending()
        with self._lock:
            if self._process is None or not self._process.is_alive():
                self._restart_locked()
            request_id = next(self._request_ids)
            pending.generation = self._generation
            self._pending[request_id] = pending
            requests = self._requests
        requests.put((request_id, op, wire.message(op, body)))
        while not pending.event.wait(_POLL_SECONDS):
            if not self.alive:
                with self._lock:
                    self._restart_locked()
                # _restart_locked set and answered our pending entry
                # (crash error) if it was still registered.
                if not pending.event.is_set():
                    raise ServerError(
                        f"worker {self.shard_index} died before replying"
                    )
            if time.monotonic() > deadline:
                with self._lock:
                    self._pending.pop(request_id, None)
                raise ServerError(
                    f"worker {self.shard_index} timed out after "
                    f"{timeout if timeout is not None else self.call_timeout}s "
                    f"on {op!r}"
                )
        return wire.parse_message(pending.response)

    # -- shutdown --------------------------------------------------------------

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop the worker: graceful shutdown op, then escalate.

        Bypasses admission (shutdown must succeed under saturation).
        The store is flushed/closed by the worker's exit path.
        """
        process = self._process
        if process is None:
            return
        with self._lock:
            self._generation += 1  # retire the dispatcher
            for pending in self._pending.values():
                pending.response = wire.encode_error(
                    ServerError(
                        f"worker {self.shard_index} shut down with the "
                        f"request in flight"
                    )
                )
                pending.event.set()
            self._pending.clear()
            requests = self._requests
        if process.is_alive():
            try:
                requests.put((0, "shutdown", wire.message("shutdown", {})))
            except (OSError, ValueError):
                pass
            process.join(timeout)
        if process.is_alive():
            process.terminate()
            process.join(5.0)
        if process.is_alive() and hasattr(process, "kill"):
            process.kill()
            process.join(1.0)
        for queue in (self._requests, self._responses):
            try:
                queue.close()
            except (OSError, ValueError):
                pass

    def kill(self) -> None:
        """Hard-kill the worker process (supervision tests): no flush,
        no goodbye -- the next call detects the corpse and restarts."""
        process = self._process
        if process is not None and process.is_alive():
            process.terminate()
            process.join(5.0)

    def pid(self) -> "int | None":
        process = self._process
        return process.pid if process is not None else None


def default_worker_count() -> int:
    """Workers to start when the caller does not say: one per CPU, at
    least 1, at most 4 (the front-end is I/O bound; shards beyond the
    CPU count only add queue hops)."""
    return max(1, min(4, os.cpu_count() or 1))


def database_facts_of(database) -> dict:
    """An :class:`InputLike` database as the plain picklable facts a
    :class:`WorkerConfig` carries."""
    from repro.relalg.instance import Instance

    if isinstance(database, Instance):
        return dict(facts_of(database))
    return {
        str(name): frozenset(tuple(row) for row in rows)
        for name, rows in database.items()
    }
