"""The persistent violations ledger: findings through the store seam.

An :class:`AuditLedger` persists :class:`~repro.verify.api.AuditFinding`
and :class:`~repro.shadow.report.DivergenceReport` records through the
exact :class:`~repro.pods.store.SessionStore` protocol the pod runtime
already trusts with session state -- memory, JSONL directory, or SQLite,
all three unchanged.  Each *audited session* owns one ledger "session"
whose synthetic log entries are the encoded records: appending a
finding is one ``record_step``, pruning a closed session is one
``record_closed``, and rehydration after a process restart is the plain
``session_ids`` + ``load`` walk every store already supports.

Records are encoded deterministically -- each becomes a single-relation
fact ``{"__finding__": {(json,)}}`` whose JSON payload is
``sort_keys``-canonical and whose facts travel through
:func:`~repro.pods.store.encode_facts`, the runtime's one fact codec --
so a finding's bytes are identical in a JSONL event file, a SQLite row,
and back out of either, which is what the restart-durability suite
asserts.

The compiled :class:`~repro.verify.api.specs.PropertySpec` object does
not survive the trip (specs hold live formulas); its ``describe()``
string does, carried back on a :class:`LedgerSpec` placeholder, and the
replayable :class:`~repro.verify.api.trace.CounterexampleTrace` rides
along in full -- a rehydrated finding still replays.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.config import parse_int
from repro.errors import StoreError
from repro.pods.store import decode_facts, encode_facts, open_store
from repro.verify.api.auditor import AuditFinding
from repro.verify.api.trace import CounterexampleTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pods.store import SessionStore, StoreStats

__all__ = [
    "AuditLedger",
    "LedgerSpec",
    "LEDGER_RELATION",
    "encode_record",
    "decode_record",
]

#: The single synthetic relation ledger entries live in.  The dunder
#: name cannot collide with a transducer schema (relation names come
#: from the Spocus grammar), so a ledger can even share a store file
#: with real sessions without ambiguity.
LEDGER_RELATION = "__finding__"


@dataclass(frozen=True)
class LedgerSpec:
    """Stand-in spec on a rehydrated finding: the name, not the formula.

    ``AuditFinding.spec`` is excluded from equality, so findings compare
    the same before and after the round trip; ``describe()`` keeps the
    property name flowing into re-encoding and wire codecs.
    """

    name: str = ""

    def describe(self) -> str:
        return self.name


def _property_of(record) -> str:
    spec = getattr(record, "spec", None)
    describe = getattr(spec, "describe", None)
    if callable(describe):
        return str(describe())
    trace = getattr(record, "trace", None)
    return str(getattr(trace, "property_name", "") or "")


def _encode_trace(trace: "CounterexampleTrace | None"):
    if trace is None:
        return None
    return {
        "kind": trace.kind,
        "inputs": [encode_facts(step) for step in trace.inputs],
        "log": [encode_facts(entry) for entry in trace.log],
        "database": (
            encode_facts(trace.database) if trace.database is not None else None
        ),
        "step": trace.step,
        "violation": trace.violation,
        "property_name": trace.property_name,
        "resume_steps": trace.resume_steps,
        "resume_state": (
            encode_facts(trace.resume_state)
            if trace.resume_state is not None
            else None
        ),
    }


def _decode_trace(body) -> "CounterexampleTrace | None":
    if body is None:
        return None
    return CounterexampleTrace(
        kind=str(body.get("kind", "")),
        inputs=tuple(decode_facts(step) for step in body.get("inputs", ())),
        log=tuple(decode_facts(entry) for entry in body.get("log", ())),
        database=(
            decode_facts(body["database"])
            if body.get("database") is not None
            else None
        ),
        step=body.get("step"),
        violation=str(body.get("violation", "")),
        property_name=str(body.get("property_name", "")),
        resume_steps=int(body.get("resume_steps", 0)),
        resume_state=(
            decode_facts(body["resume_state"])
            if body.get("resume_state") is not None
            else None
        ),
    )


def encode_record(record) -> dict:
    """A finding or divergence report as a canonical JSON-ready dict."""
    from repro.shadow.report import DivergenceReport

    if isinstance(record, AuditFinding):
        return {
            "type": "finding",
            "session_id": record.session_id,
            "step": record.step,
            "property": _property_of(record),
            "violation": record.violation,
            "trace": _encode_trace(record.trace),
        }
    if isinstance(record, DivergenceReport):
        return {
            "type": "divergence",
            "session_id": record.session_id,
            "step": record.step,
            "first_divergent_step": record.first_divergent_step,
            "kind": record.kind,
            "detail": record.detail,
            "policy": record.policy,
            "incumbent": encode_facts(record.incumbent),
            "candidate": encode_facts(record.candidate),
            "trace": _encode_trace(record.trace),
        }
    raise StoreError(
        f"the audit ledger stores AuditFinding / DivergenceReport "
        f"records, got {type(record).__name__}"
    )


def decode_record(payload: Mapping):
    """Inverse of :func:`encode_record`."""
    from repro.shadow.report import DivergenceReport

    record_type = payload.get("type")
    if record_type == "finding":
        return AuditFinding(
            session_id=str(payload.get("session_id", "")),
            step=int(payload.get("step", 0)),
            spec=LedgerSpec(str(payload.get("property", ""))),
            violation=str(payload.get("violation", "")),
            trace=_decode_trace(payload.get("trace")),
        )
    if record_type == "divergence":
        return DivergenceReport(
            session_id=str(payload.get("session_id", "")),
            step=int(payload.get("step", 0)),
            first_divergent_step=int(payload.get("first_divergent_step", 0)),
            kind=str(payload.get("kind", "")),
            detail=str(payload.get("detail", "")),
            policy=str(payload.get("policy", "")),
            incumbent=decode_facts(payload.get("incumbent", {})),
            candidate=decode_facts(payload.get("candidate", {})),
            trace=_decode_trace(payload.get("trace")),
        )
    raise StoreError(f"unknown ledger record type {record_type!r}")


class AuditLedger:
    """Per-session violation records over any :class:`SessionStore`.

    ``store`` accepts everything :func:`~repro.pods.store.open_store`
    does: ``None`` (in-memory -- survives service instances, not the
    process), a directory path (JSONL), a ``.sqlite`` path, or a live
    store object.  Thread-safe: appends arrive concurrently from the
    workers of a concurrent ``submit_batch``.

    ``max_findings_per_session`` bounds retention: when an append would
    exceed the bound, the oldest records of that session are pruned on
    the write path (every store backend truncates a recreated session
    id, so pruning is a rewrite of the newest ``max - 1`` records plus
    the new one).  The bound survives restarts -- a rehydrated ledger
    keeps pruning from the persisted counts -- and ``None`` (the
    default) retains everything, as before.
    """

    def __init__(
        self,
        store: "SessionStore | str | None" = None,
        *,
        max_findings_per_session: "int | None" = None,
    ) -> None:
        if max_findings_per_session is not None:
            max_findings_per_session = parse_int(
                "max_findings_per_session",
                max_findings_per_session,
                minimum=1,
                error=StoreError,
            )
        self._max = max_findings_per_session
        self._store = open_store(store)
        self._lock = threading.Lock()
        # Appended-record count per ledger session; primed from the
        # store so a rehydrated ledger keeps appending, not truncating.
        self._counts: dict[str, int] = {}
        for session_id in self._store.session_ids():
            snapshot = self._store.load(session_id)
            if snapshot is not None:
                self._counts[session_id] = snapshot.steps

    @property
    def store(self) -> "SessionStore":
        return self._store

    def session_ids(self) -> list[str]:
        """Sorted ids of every session with retained records."""
        with self._lock:
            return sorted(self._counts)

    def append(self, session_id: str, record) -> None:
        """Persist one finding/report under the audited session's id.

        With a retention bound, an append that would exceed it first
        drops the session's oldest records (oldest-first pruning on the
        write path).
        """
        blob = json.dumps(encode_record(record), sort_keys=True)
        entry = {LEDGER_RELATION: frozenset({(blob,)})}
        with self._lock:
            count = self._counts.get(session_id)
            if count is None:
                self._store.record_created(session_id)
                count = 0
            if self._max is not None and count >= self._max:
                count = self._prune_to(session_id, self._max - 1)
            count += 1
            self._counts[session_id] = count
            self._store.record_step(session_id, count, {}, entry)

    def _prune_to(self, session_id: str, keep: int) -> int:
        """Rewrite one session retaining only its newest ``keep`` records.

        Relies on the store contract shared by all three backends:
        ``record_created`` on an existing id truncates its history, so
        the rewrite is truncate + re-append (renumbered from 1).  Called
        under the lock.  Returns the retained count.
        """
        blobs: list[str] = []
        snapshot = self._store.load(session_id)
        if snapshot is not None:
            for entry in snapshot.log_facts:
                for row in entry.get(LEDGER_RELATION, ()):
                    blobs.append(row[0])
        kept = blobs[max(0, len(blobs) - keep):] if keep > 0 else []
        self._store.record_created(session_id)
        for number, blob in enumerate(kept, 1):
            self._store.record_step(
                session_id, number, {}, {LEDGER_RELATION: frozenset({(blob,)})}
            )
        return len(kept)

    def records(self, session_id: str) -> list:
        """The decoded records of one session, in append order."""
        snapshot = self._store.load(session_id)
        if snapshot is None:
            return []
        out = []
        for entry in snapshot.log_facts:
            for row in entry.get(LEDGER_RELATION, ()):
                out.append(decode_record(json.loads(row[0])))
        return out

    def all_records(self) -> list:
        """Every retained record, ordered by (session id, append order)."""
        out = []
        for session_id in self.session_ids():
            out.extend(self.records(session_id))
        return out

    def forget(self, session_id: str) -> None:
        """Prune one session's records (the session was closed)."""
        with self._lock:
            self._counts.pop(session_id, None)
            self._store.record_closed(session_id)

    # -- lifecycle (delegates to the backing store) ----------------------------

    def flush(self) -> int:
        return self._store.flush()

    def close(self) -> None:
        self._store.close()

    def stats(self) -> "StoreStats":
        return self._store.stats()

    def __enter__(self) -> "AuditLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
