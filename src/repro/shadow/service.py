"""ShadowService: mirror live traffic to a candidate and diff the runs.

The paper's verification questions -- is candidate T₂'s log contained
in incumbent T₁'s, are they log-equivalent? -- are decidable *offline*
only for restricted classes.  A shadow deploy answers the online
complement: fan every production request to both services, compute each
side's log entry ``(I_i ∪ O_i)|log`` for the step, and diff them under
a :class:`~repro.shadow.policy.ComparisonPolicy`.  No false positives
are possible (a reported divergence carries a replayable
counterexample); completeness is bounded by the traffic actually seen
-- exactly the cheap-check-first, replay-to-confirm escalation the
abstraction-refinement tradition prescribes.

A :class:`ShadowService` *is* a pod service: it subclasses the
:class:`~repro.pods.service._PodApi` traffic mixin, so ``submit_batch``
(with session-grouped concurrency), ``run_session``, and ``drive`` work
unchanged, and it can be dropped anywhere a
:class:`~repro.pods.service.PodService` goes -- including
``run_scenario``.  The incumbent stays authoritative: its results are
what callers receive, its errors propagate untouched, and a fail-open
policy never lets candidate trouble (divergence *or* crash) disturb
serving.  Either side may be a local :class:`PodService`, a
:class:`ShardedPodService`, or a :class:`~repro.server.client.PodClient`
speaking HTTP to a remote pod server.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.core.run import log_of_step
from repro.errors import SessionError, ShadowDivergence, SpecError
from repro.pods.api import (
    SessionHandle,
    StepRequest,
    StepResult,
    facts_of,
    session_id_of,
)
from repro.pods.service import _PodApi
from repro.shadow.policy import CONTAINMENT, STRICT, ComparisonPolicy
from repro.shadow.report import (
    KIND_CANDIDATE_ERROR,
    KIND_LOG_DIVERGENCE,
    KIND_OUTPUT_MISMATCH,
    KIND_STEP_COUNTER,
    DivergenceReport,
)
from repro.verify.api.trace import KIND_COUNTEREXAMPLE, CounterexampleTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.transducer import RelationalTransducer
    from repro.pods.api import Facts
    from repro.shadow.ledger import AuditLedger
    from repro.verify.containment import ContainmentVerdict

__all__ = ["ShadowService"]


class _ShadowSession:
    """Per-session mirror state: the recorded prefixes of both runs."""

    __slots__ = ("inputs", "incumbent_log", "candidate_log", "detached")

    def __init__(self) -> None:
        self.inputs: "list[Facts]" = []
        self.incumbent_log: "list[Facts]" = []
        self.candidate_log: "list[Facts]" = []
        self.detached = False


def _entry_diverges(incumbent: "Facts", candidate: "Facts", mode: str) -> bool:
    """Whether one step's log entries diverge under ``mode``."""
    if mode == CONTAINMENT:
        names = set(incumbent) | set(candidate)
        return any(
            not candidate.get(name, frozenset())
            <= incumbent.get(name, frozenset())
            for name in names
        )
    return incumbent != candidate


def _nonempty(facts: "Facts") -> "dict[str, frozenset[tuple]]":
    """Drop empty relations: what a step actually *said*.

    Incumbent and candidate may have different output schemas (FRIENDLY
    adds warning relations to SHORT's); an extra relation that stayed
    empty is not a behavioural difference, a non-empty one is.
    """
    return {name: rows for name, rows in facts.items() if rows}


class ShadowService(_PodApi):
    """Serve from the incumbent while mirroring every step to a candidate.

    ``transducer`` defaults to the incumbent's (both local services and
    :class:`~repro.server.client.PodClient` carry one); it supplies the
    input/log schemas the comparison and the replay traces are phrased
    in.  ``database`` (facts for traces; defaults to the incumbent's
    when it exposes one) makes reported traces self-contained --
    ``trace.replay()`` with no arguments re-runs the divergence.
    ``ledger`` (anything :class:`~repro.shadow.ledger.AuditLedger`
    accepts as a store) persists every divergence; reports recorded by
    a previous process over the same store are rehydrated into
    :meth:`divergences` at construction.
    """

    def __init__(
        self,
        incumbent,
        candidate,
        *,
        policy: "ComparisonPolicy | None" = None,
        transducer: "RelationalTransducer | None" = None,
        database=None,
        ledger: "AuditLedger | str | None" = None,
    ) -> None:
        self.incumbent = incumbent
        self.candidate = candidate
        self.policy = policy if policy is not None else ComparisonPolicy()
        if transducer is None:
            transducer = getattr(incumbent, "_transducer", None)
        if transducer is None:
            raise SpecError(
                "the incumbent carries no transducer; pass transducer= "
                "so the shadow can phrase comparisons and traces"
            )
        self._transducer = transducer
        if database is None:
            database = getattr(incumbent, "database", None)
        self._database_facts = (
            facts_of(database) if database is not None else None
        )
        self._lock = threading.Lock()
        self._sessions: dict[str, _ShadowSession] = {}
        self._divergences: list[DivergenceReport] = []
        self._ledger: "AuditLedger | None"
        if ledger is None:
            self._ledger = None
        else:
            from repro.shadow.ledger import AuditLedger

            self._ledger = (
                ledger if isinstance(ledger, AuditLedger) else AuditLedger(ledger)
            )
            # Reports persisted by a previous process over this store.
            self._divergences.extend(
                record
                for record in self._ledger.all_records()
                if isinstance(record, DivergenceReport)
            )

    # -- session lifecycle (mirrored) ------------------------------------------

    @property
    def database(self):
        return getattr(self.incumbent, "database", None)

    def create_session(self, session_id: str | None = None) -> SessionHandle:
        """Open the session on both sides; the incumbent's handle wins.

        When the id is service-generated, the incumbent picks it and the
        candidate follows, so the two runs share session names.
        """
        handle = self.incumbent.create_session(session_id)
        shadow = _ShadowSession()
        try:
            self.candidate.create_session(handle.session_id)
        except Exception as error:  # noqa: BLE001 - candidate faults contained
            shadow.detached = True
            self._record(
                DivergenceReport(
                    session_id=handle.session_id,
                    step=0,
                    first_divergent_step=0,
                    kind=KIND_CANDIDATE_ERROR,
                    detail=f"create_session failed: {error}",
                    policy=self.policy.mode,
                )
            )
        with self._lock:
            self._sessions[handle.session_id] = shadow
        return handle

    def create_sessions(self, count: int) -> list[SessionHandle]:
        return [self.create_session() for _ in range(count)]

    def session(self, session: "SessionHandle | str"):
        return self.incumbent.session(session)

    def has_session(self, session: "SessionHandle | str") -> bool:
        return self.incumbent.has_session(session)

    def session_ids(self) -> list[str]:
        return self.incumbent.session_ids()

    def close_session(self, session: "SessionHandle | str"):
        session_id = session_id_of(session)
        log = self.incumbent.close_session(session_id)
        with self._lock:
            shadow = self._sessions.pop(session_id, None)
        if shadow is not None:
            # Even a detached session may exist on the candidate side
            # (detachment stops mirroring, not the candidate's session).
            try:
                self.candidate.close_session(session_id)
            except Exception:  # noqa: BLE001 - already retired on our side
                pass
        # Divergences are kept: closing a session retires its state, not
        # the evidence it produced.
        return log

    def snapshot(self, session: "SessionHandle | str"):
        """The incumbent's view of the session (it is authoritative)."""
        snapshot = getattr(self.incumbent, "snapshot", None)
        if snapshot is not None:
            return snapshot(session)
        raise SessionError(
            f"{type(self.incumbent).__name__} does not expose snapshots"
        )

    def flush(self) -> int:
        flushed = self.incumbent.flush()
        try:
            flushed += self.candidate.flush()
        except Exception:  # noqa: BLE001 - candidate faults contained
            pass
        if self._ledger is not None:
            self._ledger.flush()
        return flushed

    def close(self) -> None:
        self.incumbent.close()
        try:
            self.candidate.close()
        except Exception:  # noqa: BLE001 - candidate faults contained
            pass
        if self._ledger is not None:
            self._ledger.close()

    def logs(self):
        return self.incumbent.logs()

    @property
    def metrics(self):
        return self.incumbent.metrics

    def audit_findings(self, session: "SessionHandle | str | None" = None):
        return self.incumbent.audit_findings(session)

    # -- divergences -----------------------------------------------------------

    @property
    def ledger(self) -> "AuditLedger | None":
        return self._ledger

    def divergences(
        self, session_id: "str | None" = None
    ) -> list[DivergenceReport]:
        """Recorded divergence reports, in detection order."""
        with self._lock:
            if session_id is None:
                return list(self._divergences)
            return [
                report
                for report in self._divergences
                if report.session_id == session_id
            ]

    def divergence_count(self) -> int:
        with self._lock:
            return len(self._divergences)

    def first_divergence(self) -> "DivergenceReport | None":
        with self._lock:
            return self._divergences[0] if self._divergences else None

    def _record(self, report: DivergenceReport) -> None:
        with self._lock:
            self._divergences.append(report)
        if self._ledger is not None:
            self._ledger.append(report.session_id, report)
        if self.policy.fail_closed:
            raise ShadowDivergence(
                f"session {report.session_id!r} step {report.step}: "
                f"{report.kind}"
                + (f" ({report.detail})" if report.detail else ""),
                report=report,
            )

    def containment_verdict(self) -> "ContainmentVerdict | None":
        """The *offline* answer next to the online one, when decidable.

        When both sides expose their transducers (local services do;
        remote clients carry the schema-bearing one the caller gave
        them), decide pointwise log equality of candidate against
        incumbent over the shared database with the Theorem 3.5
        machinery -- the static claim the per-step diffs are sampling.
        Returns ``None`` when either transducer is unavailable.
        """
        from repro.verify.containment import check_pointwise_log_equality

        incumbent_t = getattr(self.incumbent, "_transducer", None)
        candidate_t = getattr(self.candidate, "_transducer", None)
        if incumbent_t is None or candidate_t is None:
            return None
        return check_pointwise_log_equality(
            incumbent_t, candidate_t, self._database_facts
        )

    # -- traffic ---------------------------------------------------------------

    def submit(self, request: StepRequest) -> StepResult:
        """Serve from the incumbent, mirror to the candidate, diff.

        The incumbent goes first and its result is returned unchanged;
        a session the shadow has not seen (created directly on the
        incumbent, or resumed from its store) passes through unmirrored.
        The candidate's log entry is recorded on *every* mirrored step
        -- even ones a sampled policy skips -- so localization can
        backscan to the true first divergent step.
        """
        result = self.incumbent.submit(request)
        session_id = result.session.session_id
        with self._lock:
            shadow = self._sessions.get(session_id)
        if shadow is None or shadow.detached:
            return result
        schema = self._transducer.schema
        inputs_instance = self._transducer.coerce_input(request.inputs)
        incumbent_entry = facts_of(
            log_of_step(inputs_instance, result.output, schema.log_schema)
        )
        shadow.inputs.append(facts_of(inputs_instance))
        shadow.incumbent_log.append(incumbent_entry)
        try:
            mirrored = self.candidate.submit(
                StepRequest(session_id, request.inputs)
            )
        except Exception as error:  # noqa: BLE001 - candidate faults contained
            shadow.detached = True
            self._record(
                self._report(
                    shadow,
                    session_id,
                    result.step,
                    KIND_CANDIDATE_ERROR,
                    f"candidate submit failed: {error}",
                    incumbent_entry,
                    {},
                )
            )
            return result
        candidate_entry = facts_of(
            log_of_step(inputs_instance, mirrored.output, schema.log_schema)
        )
        shadow.candidate_log.append(candidate_entry)
        if not self.policy.should_check(session_id, result.step):
            return result
        report = self._diff(
            shadow, session_id, result, mirrored, incumbent_entry,
            candidate_entry,
        )
        if report is not None:
            shadow.detached = True
            self._record(report)
        return result

    def _diff(
        self,
        shadow: _ShadowSession,
        session_id: str,
        result: StepResult,
        mirrored: StepResult,
        incumbent_entry: "Facts",
        candidate_entry: "Facts",
    ) -> "DivergenceReport | None":
        """Compare one checked step; None when the sides agree."""
        mode = self.policy.mode
        if _entry_diverges(incumbent_entry, candidate_entry, mode):
            return self._report(
                shadow,
                session_id,
                result.step,
                KIND_LOG_DIVERGENCE,
                f"log entries diverge under {mode} comparison",
                incumbent_entry,
                candidate_entry,
            )
        if mode == STRICT and _nonempty(facts_of(result.output)) != _nonempty(
            facts_of(mirrored.output)
        ):
            return self._report(
                shadow,
                session_id,
                result.step,
                KIND_OUTPUT_MISMATCH,
                "log entries agree but full output instances differ",
                incumbent_entry,
                candidate_entry,
            )
        if mirrored.step != result.step:
            return self._report(
                shadow,
                session_id,
                result.step,
                KIND_STEP_COUNTER,
                f"candidate step counter {mirrored.step} != "
                f"incumbent {result.step}",
                incumbent_entry,
                candidate_entry,
            )
        return None

    def _report(
        self,
        shadow: _ShadowSession,
        session_id: str,
        step: int,
        kind: str,
        detail: str,
        incumbent_entry: "Facts",
        candidate_entry: "Facts",
    ) -> DivergenceReport:
        return DivergenceReport(
            session_id=session_id,
            step=step,
            first_divergent_step=self._localize(shadow, step),
            kind=kind,
            detail=detail,
            incumbent=incumbent_entry,
            candidate=candidate_entry,
            policy=self.policy.mode,
            trace=CounterexampleTrace(
                kind=KIND_COUNTEREXAMPLE,
                inputs=tuple(shadow.inputs),
                log=tuple(shadow.incumbent_log),
                database=self._database_facts,
                step=step,
                violation=detail,
                property_name=f"shadow-{self.policy.mode}",
            ),
        )

    def _localize(self, shadow: _ShadowSession, detected_step: int) -> int:
        """First step (1-based) on which the recorded prefixes fork.

        Under a sampled policy the detection step may trail the true
        fork; both prefixes were recorded on every mirrored step, so a
        forward scan finds it exactly.  A candidate crash (no entry on
        its side) localizes to the detection step.
        """
        mode = self.policy.mode
        for index, (ours, theirs) in enumerate(
            zip(shadow.incumbent_log, shadow.candidate_log)
        ):
            if _entry_diverges(ours, theirs, mode):
                return index + 1
        return detected_step
