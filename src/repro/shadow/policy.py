"""Comparison policies: how strictly, how often, and how loudly.

A :class:`ComparisonPolicy` is the knob bundle of a
:class:`~repro.shadow.service.ShadowService`:

* **mode** -- ``strict`` demands per-step log *equality* plus equal
  output instances (the online face of log equivalence, Theorem 3.5);
  ``containment`` only demands that the candidate's log entries are
  contained in the incumbent's (log containment, Theorem 3.4) -- a
  candidate that logs *less* passes, one that invents log facts fails.
* **sample_rate** -- compare every step (1.0) or a deterministic hash
  sample of them; divergence localization backscans the recorded
  prefixes, so a sampled policy still reports the true first divergent
  step, it just detects it later.
* **fail_open / fail_closed** -- fail-open records the divergence and
  keeps serving from the incumbent (the production posture); fail-closed
  raises :class:`~repro.errors.ShadowDivergence` on the spot (the CI
  gate posture).

Sampling is hash-based (CRC-32 of ``session:step``), not RNG-based, so
whether a given step is compared is a pure function of the policy --
re-running a workload re-compares exactly the same steps.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.errors import SpecError

__all__ = ["ComparisonPolicy", "STRICT", "CONTAINMENT"]

STRICT = "strict"
CONTAINMENT = "containment"

_MODES = (STRICT, CONTAINMENT)


@dataclass(frozen=True)
class ComparisonPolicy:
    """How a shadow service diffs incumbent and candidate steps."""

    mode: str = STRICT
    sample_rate: float = 1.0
    fail_open: bool = True

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise SpecError(
                f"unknown comparison mode {self.mode!r}; "
                f"expected one of {_MODES}"
            )
        if not 0.0 < self.sample_rate <= 1.0:
            raise SpecError(
                f"sample_rate must be in (0, 1], got {self.sample_rate!r}"
            )

    @property
    def fail_closed(self) -> bool:
        return not self.fail_open

    def should_check(self, session_id: str, step: int) -> bool:
        """Whether this (session, step) is compared under the policy."""
        if self.sample_rate >= 1.0:
            return True
        bucket = zlib.crc32(f"{session_id}:{step}".encode()) % 1_000_000
        return bucket < self.sample_rate * 1_000_000

    @classmethod
    def strict(cls, *, fail_open: bool = True) -> "ComparisonPolicy":
        """Per-step log + output equality on every step."""
        return cls(mode=STRICT, fail_open=fail_open)

    @classmethod
    def containment(cls, *, fail_open: bool = True) -> "ComparisonPolicy":
        """Per-step log containment (candidate ⊆ incumbent) on every step."""
        return cls(mode=CONTAINMENT, fail_open=fail_open)

    @classmethod
    def sampled(
        cls,
        sample_rate: float,
        *,
        mode: str = STRICT,
        fail_open: bool = True,
    ) -> "ComparisonPolicy":
        """Compare a deterministic hash sample of steps."""
        return cls(mode=mode, sample_rate=sample_rate, fail_open=fail_open)
