"""Shadow-deploy containment audits.

The online complement of :mod:`repro.verify.containment`: where the
offline machinery *decides* log containment/equivalence between two
transducers (Theorems 3.4/3.5, for restricted classes), a
:class:`ShadowService` *observes* it on live traffic -- mirroring every
request to an incumbent and a candidate, diffing log entries per step
under a :class:`ComparisonPolicy`, and turning each divergence into a
replayable :class:`DivergenceReport`.  The :class:`AuditLedger`
persists findings and reports through the
:class:`~repro.pods.store.SessionStore` seam so the evidence survives
restarts and is queryable over the pod server (``GET /v1/audits``).

>>> from repro.scenarios import run_scenario
>>> report = run_scenario("commerce", shadow_candidate="adversarial")
>>> report.divergences >= 1
True
"""

from repro.shadow.ledger import (
    LEDGER_RELATION,
    AuditLedger,
    LedgerSpec,
    decode_record,
    encode_record,
)
from repro.shadow.policy import CONTAINMENT, STRICT, ComparisonPolicy
from repro.shadow.report import (
    KIND_CANDIDATE_ERROR,
    KIND_LOG_DIVERGENCE,
    KIND_OUTPUT_MISMATCH,
    KIND_STEP_COUNTER,
    DivergenceReport,
)
from repro.shadow.service import ShadowService

__all__ = [
    "AuditLedger",
    "LedgerSpec",
    "LEDGER_RELATION",
    "encode_record",
    "decode_record",
    "ComparisonPolicy",
    "STRICT",
    "CONTAINMENT",
    "DivergenceReport",
    "KIND_LOG_DIVERGENCE",
    "KIND_OUTPUT_MISMATCH",
    "KIND_STEP_COUNTER",
    "KIND_CANDIDATE_ERROR",
    "ShadowService",
]
