"""Divergence reports: what a shadow comparison found, replayably.

A :class:`DivergenceReport` is the shadow subsystem's counterpart to
:class:`~repro.verify.api.AuditFinding`: one mirrored step on which the
candidate's behaviour left the incumbent's.  It records *where* the
divergence was detected (``step``), *where* the logs actually forked
(``first_divergent_step`` -- under a sampled policy these differ), the
offending log entries from both sides, and a replayable
:class:`~repro.verify.api.trace.CounterexampleTrace` built from the
incumbent's inputs: ``trace.reproduces(incumbent_transducer)`` holds and
``trace.reproduces(candidate_transducer)`` fails, which is the
machine-checkable statement "these two transducers are not
log-equivalent on this run" (the online face of the paper's Theorem 3.5
question).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pods.api import Facts
    from repro.verify.api.trace import CounterexampleTrace

__all__ = [
    "DivergenceReport",
    "KIND_LOG_DIVERGENCE",
    "KIND_OUTPUT_MISMATCH",
    "KIND_STEP_COUNTER",
    "KIND_CANDIDATE_ERROR",
]

#: The step's log entries differ (strict) or the candidate logged
#: something the incumbent would not (containment).
KIND_LOG_DIVERGENCE = "log-divergence"
#: Log entries agree but the full output instances do not (strict only).
KIND_OUTPUT_MISMATCH = "output-mismatch"
#: The candidate's step counter drifted from the incumbent's.
KIND_STEP_COUNTER = "step-counter"
#: The candidate raised where the incumbent served.
KIND_CANDIDATE_ERROR = "candidate-error"


@dataclass(frozen=True)
class DivergenceReport:
    """One step on which the candidate diverged from the incumbent.

    ``step`` is where the policy *detected* the divergence (1-based,
    the incumbent's step counter); ``first_divergent_step`` is where the
    recorded log prefixes actually fork, found by backscan -- equal to
    ``step`` under an every-step policy, possibly earlier under a
    sampled one.  ``incumbent``/``candidate`` hold the two sides' log
    entries (plain facts) at the detection step.  ``trace`` is excluded
    from equality so reports compare by what diverged, not by the
    replay vehicle attached to it.
    """

    session_id: str
    step: int
    first_divergent_step: int
    kind: str
    detail: str = ""
    incumbent: "Facts" = field(default_factory=dict)
    candidate: "Facts" = field(default_factory=dict)
    policy: str = "strict"
    trace: "CounterexampleTrace | None" = field(default=None, compare=False)

    def as_dict(self) -> dict:
        """A JSON-ready summary (facts elided; use the ledger codec
        for the full record)."""
        return {
            "session_id": self.session_id,
            "step": self.step,
            "first_divergent_step": self.first_divergent_step,
            "kind": self.kind,
            "detail": self.detail,
            "policy": self.policy,
            "replayable": self.trace is not None,
        }
