"""Regular-language constructors.

Small combinator kit used by the propositional-transducer experiments:
literals, union, concatenation, star, explicit finite languages, and
prefix closure.  Everything returns an :class:`~repro.automata.nfa.NFA`
(convert with ``.to_dfa()`` as needed).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.automata.dfa import DFA
from repro.automata.nfa import EPSILON, NFA

_counter = itertools.count()


def _fresh() -> str:
    return f"s{next(_counter)}"


def literal(word: Sequence[str]) -> NFA:
    """The single-word language {word} (word = sequence of symbols)."""
    states = [_fresh() for _ in range(len(word) + 1)]
    nfa = NFA(set(states), set(word), {}, states[0], {states[-1]})
    for i, symbol in enumerate(word):
        nfa.add_transition(states[i], symbol, states[i + 1])
    return nfa


def union(*parts: NFA) -> NFA:
    start = _fresh()
    nfa = NFA({start}, set(), {}, start, set())
    for part in parts:
        nfa.states |= part.states
        nfa.alphabet |= part.alphabet
        for key, targets in part.transitions.items():
            nfa.transitions.setdefault(key, set()).update(targets)
        nfa.accepting |= part.accepting
        nfa.add_transition(start, EPSILON, part.start)
    return nfa


def concat(*parts: NFA) -> NFA:
    if not parts:
        start = _fresh()
        return NFA({start}, set(), {}, start, {start})
    result = parts[0]
    merged = NFA(
        set(result.states),
        set(result.alphabet),
        {k: set(v) for k, v in result.transitions.items()},
        result.start,
        set(result.accepting),
    )
    for part in parts[1:]:
        merged.states |= part.states
        merged.alphabet |= part.alphabet
        for key, targets in part.transitions.items():
            merged.transitions.setdefault(key, set()).update(targets)
        for state in merged.accepting:
            merged.transitions.setdefault((state, EPSILON), set()).add(
                part.start
            )
        merged.accepting = set(part.accepting)
    return merged


def star(part: NFA) -> NFA:
    start = _fresh()
    nfa = NFA(
        set(part.states) | {start},
        set(part.alphabet),
        {k: set(v) for k, v in part.transitions.items()},
        start,
        set(part.accepting) | {start},
    )
    nfa.add_transition(start, EPSILON, part.start)
    for state in part.accepting:
        nfa.transitions.setdefault((state, EPSILON), set()).add(part.start)
    return nfa


def from_words(words: Iterable[Sequence[str]]) -> NFA:
    """The finite language consisting exactly of ``words``."""
    parts = [literal(tuple(w)) for w in words]
    if not parts:
        start = _fresh()
        return NFA({start}, set(), {}, start, set())
    return union(*parts)


def prefix_closure(dfa: DFA) -> DFA:
    """The prefix closure: make every useful state accepting."""
    trimmed = dfa.trim()
    return DFA(
        set(trimmed.states),
        set(trimmed.alphabet),
        dict(trimmed.transitions),
        trimmed.start,
        set(trimmed.reachable_states() & trimmed.coaccessible_states())
        or {trimmed.start},
    )
