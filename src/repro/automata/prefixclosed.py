"""The Section 3.1 characterization of propositional Spocus languages.

"They are the prefix-closed regular languages accepted by finite
automata with no cycles except self loops.  Intuitively, this is due to
the inflationary nature of states in Spocus transducers: one can never
return to a previous state."

This module provides the two structural predicates and the combined
:func:`is_generable_language` test: prefix-closure of the (trimmed)
language and acyclicity of the (trimmed, minimized) automaton modulo
self-loops.  The prefix closure of ``ab*c`` passes; the prefix closure
of ``(ab)*`` fails, exactly as the paper observes.
"""

from __future__ import annotations

from repro.automata.dfa import DFA


def is_prefix_closed(dfa: DFA) -> bool:
    """A trimmed DFA accepts a prefix-closed language iff every useful
    state is accepting (including the start state, unless the language
    is empty)."""
    trimmed = dfa.trim()
    useful = trimmed.reachable_states() & trimmed.coaccessible_states()
    if not trimmed.accepting:
        return True  # the empty language is (vacuously) prefix closed
    return useful <= trimmed.accepting and trimmed.start in trimmed.accepting


def has_only_self_loop_cycles(dfa: DFA) -> bool:
    """True if every cycle of the trimmed transition graph is a self-loop.

    Checked by deleting self-loops and testing acyclicity with a DFS
    three-coloring.
    """
    trimmed = dfa.trim()
    edges: dict[object, set[object]] = {}
    for (src, _symbol), dst in trimmed.transitions.items():
        if src != dst:
            edges.setdefault(src, set()).add(dst)
    color: dict[object, int] = {}

    def visit(node: object) -> bool:
        color[node] = 1
        for nxt in edges.get(node, ()):
            state = color.get(nxt, 0)
            if state == 1:
                return True
            if state == 0 and visit(nxt):
                return True
        color[node] = 2
        return False

    return not any(
        color.get(node, 0) == 0 and visit(node)
        for node in sorted(trimmed.states, key=repr)
    )


def is_generable_language(dfa: DFA) -> bool:
    """Can a propositional Spocus transducer generate this language?

    Section 3.1's characterization: the language must be prefix-closed
    and its *minimal* automaton must have no cycles other than
    self-loops.  (Minimization matters: a non-minimal automaton may
    contain spurious structure.)
    """
    minimal = dfa.minimize()
    return is_prefix_closed(minimal) and has_only_self_loop_cycles(minimal)
