"""Deterministic finite automata."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

State = Hashable
Symbol = str


@dataclass
class DFA:
    """A (possibly partial) DFA; missing transitions reject."""

    states: set[State]
    alphabet: set[Symbol]
    transitions: dict[tuple[State, Symbol], State]
    start: State
    accepting: set[State]

    def __post_init__(self) -> None:
        self.states = set(self.states)
        self.alphabet = set(self.alphabet)
        self.accepting = set(self.accepting)

    def step(self, state: State, symbol: Symbol) -> State | None:
        return self.transitions.get((state, symbol))

    def accepts(self, word: Iterable[Symbol]) -> bool:
        state: State | None = self.start
        for symbol in word:
            state = self.step(state, symbol)
            if state is None:
                return False
        return state in self.accepting

    # -- structural helpers -------------------------------------------------------

    def reachable_states(self) -> set[State]:
        seen = {self.start}
        stack = [self.start]
        while stack:
            state = stack.pop()
            for symbol in self.alphabet:
                nxt = self.step(state, symbol)
                if nxt is not None and nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    def coaccessible_states(self) -> set[State]:
        """States from which an accepting state is reachable."""
        inverse: dict[State, set[State]] = {}
        for (src, _symbol), dst in self.transitions.items():
            inverse.setdefault(dst, set()).add(src)
        seen = set(self.accepting)
        stack = list(self.accepting)
        while stack:
            state = stack.pop()
            for prev in inverse.get(state, ()):
                if prev not in seen:
                    seen.add(prev)
                    stack.append(prev)
        return seen

    def trim(self) -> "DFA":
        """Keep only reachable states that can still accept."""
        useful = self.reachable_states() & self.coaccessible_states()
        transitions = {
            (src, symbol): dst
            for (src, symbol), dst in self.transitions.items()
            if src in useful and dst in useful
        }
        if self.start not in useful:
            # Empty language: a single non-accepting state.
            return DFA({self.start}, set(self.alphabet), {}, self.start, set())
        return DFA(
            useful, set(self.alphabet), transitions, self.start,
            self.accepting & useful,
        )

    def minimize(self) -> "DFA":
        """Moore's partition-refinement minimization (on the trim part)."""
        trimmed = self.trim()
        states = sorted(trimmed.states, key=repr)
        if not states:
            return trimmed
        partition: dict[State, int] = {
            s: (0 if s in trimmed.accepting else 1) for s in states
        }
        alphabet = sorted(trimmed.alphabet)
        while True:
            signatures: dict[State, tuple] = {}
            for s in states:
                signature = (partition[s],) + tuple(
                    partition.get(trimmed.step(s, a), -1) for a in alphabet
                )
                signatures[s] = signature
            renumber: dict[tuple, int] = {}
            new_partition: dict[State, int] = {}
            for s in states:
                block = renumber.setdefault(signatures[s], len(renumber))
                new_partition[s] = block
            if new_partition == partition:
                break
            partition = new_partition
        transitions: dict[tuple[int, Symbol], int] = {}
        for (src, symbol), dst in trimmed.transitions.items():
            transitions[(partition[src], symbol)] = partition[dst]
        return DFA(
            states=set(partition.values()),
            alphabet=set(trimmed.alphabet),
            transitions=transitions,
            start=partition[trimmed.start],
            accepting={partition[s] for s in trimmed.accepting},
        )

    def words_up_to(self, max_length: int) -> set[tuple[Symbol, ...]]:
        """All accepted words of length ≤ max_length."""
        results: set[tuple[Symbol, ...]] = set()
        frontier: list[tuple[tuple[Symbol, ...], State]] = [((), self.start)]
        while frontier:
            word, state = frontier.pop()
            if state in self.accepting:
                results.add(word)
            if len(word) == max_length:
                continue
            for symbol in sorted(self.alphabet):
                nxt = self.step(state, symbol)
                if nxt is not None:
                    frontier.append((word + (symbol,), nxt))
        return results

    def iter_transitions(self) -> Iterator[tuple[State, Symbol, State]]:
        for (src, symbol), dst in sorted(self.transitions.items(), key=repr):
            yield src, symbol, dst

    def product(self, other: "DFA", accept_both: bool) -> "DFA":
        """Product automaton: intersection (True) or union semantics."""
        alphabet = self.alphabet | other.alphabet
        start = (self.start, other.start)
        states = {start}
        transitions: dict[tuple[State, Symbol], State] = {}
        stack = [start]
        while stack:
            pair = stack.pop()
            for symbol in alphabet:
                left = self.step(pair[0], symbol)
                right = other.step(pair[1], symbol)
                if accept_both and (left is None or right is None):
                    continue
                nxt = (left, right)
                transitions[(pair, symbol)] = nxt
                if nxt not in states:
                    states.add(nxt)
                    stack.append(nxt)
        if accept_both:
            accepting = {
                (a, b)
                for (a, b) in states
                if a in self.accepting and b in other.accepting
            }
        else:
            accepting = {
                (a, b)
                for (a, b) in states
                if a in self.accepting or b in other.accepting
            }
        return DFA(states, alphabet, transitions, start, accepting)

    def equivalent_to(self, other: "DFA", probe_length: int = 8) -> bool:
        """Language equivalence via minimized-automaton word probing.

        Exact when ``probe_length`` ≥ the product automaton's state
        count; the default suffices for the library's small automata.
        """
        return self.words_up_to(probe_length) == other.words_up_to(probe_length)
