"""Nondeterministic Turing machines (word generators).

Theorem 4.2 uses NTMs that *generate* languages: started on a blank
right-infinite tape, a machine nondeterministically writes a word and
halts with the word beginning at the leftmost cell and the head parked
there.  :class:`NTM` implements exactly this convention, with bounded
exhaustive exploration for tests (the machines in the experiments
generate finite/regular languages, so bounds are easy to pick).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

BLANK = "b"
LEFT = "L"
RIGHT = "R"
STAY = "S"


@dataclass(frozen=True)
class TMConfig:
    """A configuration: control state, tape contents, head position.

    The tape is a fixed-length tuple (the compiled simulation also uses
    a fixed tape, chosen at stage 1); blanks pad the right end.
    """

    state: str
    tape: tuple[str, ...]
    head: int

    def word(self) -> tuple[str, ...]:
        """The generated word: cells up to the first blank."""
        out = []
        for symbol in self.tape:
            if symbol == BLANK:
                break
            out.append(symbol)
        return tuple(out)


@dataclass
class NTM:
    """A nondeterministic TM over a right-infinite (here: bounded) tape.

    ``transitions`` maps (state, read symbol) to a list of
    (new state, written symbol, direction) triples; directions are
    ``"L"``, ``"R"``, ``"S"``.  ``halt_state`` has no outgoing
    transitions.  The instruction list is also exposed *numbered* (for
    the Theorem 4.2 compiler, whose ``move`` relation carries the
    instruction number).
    """

    states: set[str]
    alphabet: set[str]  # tape alphabet, must contain BLANK
    transitions: dict[tuple[str, str], list[tuple[str, str, str]]]
    start_state: str
    halt_state: str

    def __post_init__(self) -> None:
        self.alphabet = set(self.alphabet) | {BLANK}
        for (state, symbol), options in self.transitions.items():
            if state == self.halt_state:
                raise ValueError("halt state must have no transitions")
            for (_new, written, direction) in options:
                if direction not in (LEFT, RIGHT, STAY):
                    raise ValueError(f"bad direction {direction!r}")
                if written not in self.alphabet or symbol not in self.alphabet:
                    raise ValueError("transition uses unknown symbol")

    def numbered_instructions(
        self,
    ) -> list[tuple[int, str, str, str, str, str]]:
        """(number, state, read, new state, written, direction), 1-based."""
        numbered = []
        counter = 1
        for (state, read), options in sorted(self.transitions.items()):
            for (new_state, written, direction) in options:
                numbered.append((counter, state, read, new_state, written, direction))
                counter += 1
        return numbered

    def initial_config(self, tape_length: int) -> TMConfig:
        return TMConfig(self.start_state, (BLANK,) * tape_length, 0)

    def successors(self, config: TMConfig) -> Iterator[tuple[int, TMConfig]]:
        """Yield (instruction number, next configuration) pairs."""
        lookup = {
            (state, read): number
            for number, state, read, _n, _w, _d in self.numbered_instructions()
        }
        del lookup  # numbering must enumerate duplicates; recompute below
        for (number, state, read, new_state, written, direction) in (
            self.numbered_instructions()
        ):
            if state != config.state:
                continue
            if config.tape[config.head] != read:
                continue
            tape = list(config.tape)
            tape[config.head] = written
            if direction == RIGHT:
                head = config.head + 1
            elif direction == LEFT:
                head = config.head - 1
            else:
                head = config.head
            if not 0 <= head < len(tape):
                continue  # fell off the available tape
            yield number, TMConfig(new_state, tuple(tape), head)

    def computations(
        self, tape_length: int, max_steps: int
    ) -> Iterator[list[tuple[int | None, TMConfig]]]:
        """Yield halting computations as [(instr, config), ...] lists.

        The first entry carries instruction ``None`` (the initial
        configuration); each later entry records the instruction that
        produced it.  A computation qualifies when the machine reaches
        the halt state with the head on cell 0.
        """

        def explore(
            trace: list[tuple[int | None, TMConfig]]
        ) -> Iterator[list[tuple[int | None, TMConfig]]]:
            _instr, config = trace[-1]
            if config.state == self.halt_state:
                if config.head == 0:
                    yield list(trace)
                return
            if len(trace) > max_steps:
                return
            for number, nxt in self.successors(config):
                trace.append((number, nxt))
                yield from explore(trace)
                trace.pop()

        yield from explore([(None, self.initial_config(tape_length))])

    def generated_words(
        self, tape_length: int, max_steps: int
    ) -> set[tuple[str, ...]]:
        """All words generated within the given bounds."""
        return {
            trace[-1][1].word()
            for trace in self.computations(tape_length, max_steps)
        }


def word_writer_ntm(words: Sequence[Sequence[str]]) -> NTM:
    """An NTM generating exactly ``words`` (a finite language).

    The machine nondeterministically commits to one word, writes it left
    to right, then walks back to cell 0 and halts.  This exercises
    right, left, and stay moves in the Theorem 4.2 simulation.
    """
    words = [tuple(w) for w in words]
    alphabet = {symbol for word in words for symbol in word} | {BLANK}
    states: set[str] = {"qstart", "qback", "qhalt"}
    transitions: dict[tuple[str, str], list[tuple[str, str, str]]] = {}

    def add(state: str, read: str, new: str, write: str, direction: str) -> None:
        states.add(state)
        states.add(new)
        transitions.setdefault((state, read), []).append((new, write, direction))

    for index, word in enumerate(words):
        if not word:
            add("qstart", BLANK, "qhalt", BLANK, STAY)
            continue
        previous = "qstart"
        for position, symbol in enumerate(word):
            if position == len(word) - 1:
                add(previous, BLANK, "qback", symbol, LEFT if position else STAY)
            else:
                nxt = f"q{index}_{position + 1}"
                add(previous, BLANK, nxt, symbol, RIGHT)
                previous = nxt
    # Walk back to the left end: on any non-blank symbol, keep moving
    # left; halting happens when a left move from cell 1 lands on cell 0
    # -- detected by looking at the symbol under the head after moving.
    for symbol in sorted(alphabet - {BLANK}):
        add("qback", symbol, "qback", symbol, LEFT)
    # The walk-left loop overshoots: add halting via a marker-free trick
    # is impossible without sensing the edge, so instead the machine
    # halts by *stay* transitions nondeterministically guessed at cell 0.
    for symbol in sorted(alphabet - {BLANK}):
        add("qback", symbol, "qhalt", symbol, STAY)
    return NTM(states, alphabet, transitions, "qstart", "qhalt")
