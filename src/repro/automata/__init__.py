"""Automata-theoretic substrate.

Supports the expressiveness results of the paper: the characterization
of the output languages of propositional Spocus transducers
(Section 3.1), and the Turing-machine simulation by error-free runs
(Theorem 4.2).
"""

from repro.automata.nfa import NFA
from repro.automata.dfa import DFA
from repro.automata.regular import (
    concat,
    from_words,
    literal,
    prefix_closure,
    star,
    union,
)
from repro.automata.prefixclosed import (
    has_only_self_loop_cycles,
    is_generable_language,
    is_prefix_closed,
)
from repro.automata.propositional import (
    PropositionalTransducer,
    build_abc_example,
    gen_automaton,
    gen_words,
    transducer_for_automaton,
)
from repro.automata.turing import NTM, TMConfig
from repro.automata.tm_compiler import CompiledTM, compile_tm, simulation_inputs

__all__ = [
    "NFA",
    "DFA",
    "literal",
    "union",
    "concat",
    "star",
    "from_words",
    "prefix_closure",
    "is_prefix_closed",
    "has_only_self_loop_cycles",
    "is_generable_language",
    "PropositionalTransducer",
    "gen_automaton",
    "gen_words",
    "build_abc_example",
    "transducer_for_automaton",
    "NTM",
    "TMConfig",
    "CompiledTM",
    "compile_tm",
    "simulation_inputs",
]
