"""Nondeterministic finite automata with epsilon moves."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

State = Hashable
Symbol = str

EPSILON = None  # the epsilon label


@dataclass
class NFA:
    """An NFA: transitions map (state, symbol-or-None) to state sets."""

    states: set[State]
    alphabet: set[Symbol]
    transitions: dict[tuple[State, Symbol | None], set[State]]
    start: State
    accepting: set[State]

    def __post_init__(self) -> None:
        self.states = set(self.states)
        self.alphabet = set(self.alphabet)
        self.accepting = set(self.accepting)
        if self.start not in self.states:
            raise ValueError("start state not among states")

    def add_transition(self, src: State, symbol: Symbol | None, dst: State) -> None:
        self.states.add(src)
        self.states.add(dst)
        if symbol is not None:
            self.alphabet.add(symbol)
        self.transitions.setdefault((src, symbol), set()).add(dst)

    def successors(self, state: State, symbol: Symbol | None) -> set[State]:
        return self.transitions.get((state, symbol), set())

    def epsilon_closure(self, states: Iterable[State]) -> frozenset[State]:
        closure = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for nxt in self.successors(state, EPSILON):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def accepts(self, word: Iterable[Symbol]) -> bool:
        current = self.epsilon_closure({self.start})
        for symbol in word:
            nxt: set[State] = set()
            for state in current:
                nxt |= self.successors(state, symbol)
            current = self.epsilon_closure(nxt)
            if not current:
                return False
        return bool(current & self.accepting)

    def to_dfa(self) -> "DFA":
        """Subset construction (lazy, reachable part only)."""
        from repro.automata.dfa import DFA

        start = self.epsilon_closure({self.start})
        subsets: dict[frozenset[State], int] = {start: 0}
        worklist = [start]
        transitions: dict[tuple[int, Symbol], int] = {}
        accepting: set[int] = set()
        if start & self.accepting:
            accepting.add(0)
        while worklist:
            subset = worklist.pop()
            index = subsets[subset]
            for symbol in sorted(self.alphabet):
                targets: set[State] = set()
                for state in subset:
                    targets |= self.successors(state, symbol)
                closure = self.epsilon_closure(targets)
                if not closure:
                    continue
                if closure not in subsets:
                    subsets[closure] = len(subsets)
                    worklist.append(closure)
                    if closure & self.accepting:
                        accepting.add(subsets[closure])
                transitions[(index, symbol)] = subsets[closure]
        return DFA(
            states=set(subsets.values()),
            alphabet=set(self.alphabet),
            transitions=transitions,
            start=0,
            accepting=accepting,
        )

    def words_up_to(self, max_length: int) -> set[tuple[Symbol, ...]]:
        """All accepted words of length ≤ max_length (exhaustive BFS)."""
        results: set[tuple[Symbol, ...]] = set()
        start = self.epsilon_closure({self.start})
        frontier: dict[tuple[Symbol, ...], frozenset[State]] = {(): start}
        for _ in range(max_length + 1):
            next_frontier: dict[tuple[Symbol, ...], frozenset[State]] = {}
            for word, states in frontier.items():
                if states & self.accepting:
                    results.add(word)
                if len(word) == max_length:
                    continue
                for symbol in sorted(self.alphabet):
                    targets: set[State] = set()
                    for state in states:
                        targets |= self.successors(state, symbol)
                    closure = self.epsilon_closure(targets)
                    if closure:
                        key = word + (symbol,)
                        existing = next_frontier.get(key)
                        if existing is None:
                            next_frontier[key] = closure
                        else:
                            next_frontier[key] = existing | closure
            if not next_frontier:
                break
            frontier = next_frontier
        return results
