"""The Theorem 4.2 construction: compiling an NTM into a Spocus transducer.

Given a nondeterministic Turing machine M generating a language L on
empty input, the proof of Theorem 4.2 builds a propositional-output
Spocus transducer T whose *error-free* runs output exactly the prefix
closure of L.  The input sequence encodes a computation of M in three
stages, with error rules policing every deviation:

* **Stage 1** builds, one cell per step, a time-stamped encoding of the
  initial configuration in the input relation ``tape`` (cumulated into
  ``past-tape``), simultaneously laying down the ordered index pool that
  later serves as configuration time stamps.
* **Stage 2** inputs one complete successor configuration per step; the
  error rules check that each is obtained from the most recent one by
  the legal move named in the ``move`` relation.
* **Stage 3** outputs the word on the halted tape one letter per step,
  driven by the ``cell`` relation walking the index chain.

The construction follows the proof rule-for-rule, with the control
clauses the paper leaves "omitted" spelled out (stage gating, shape and
cardinality checks, and the left-move frame rules, including the
last-cell case which uses ``past-oldindex`` to detect the tape edge).

Relations: ``stage/1``, ``tape/5`` (stamp, index, next-index, content,
mark), ``index/1``, ``oldindex/1``, ``move/1``, ``cell/1``; outputs
``error/0`` and one proposition ``p_<z>`` per non-blank tape symbol.
The mark of a cell is ``m0`` for "head not here" and the control state
name for "head here in this state", as in the proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.automata.turing import BLANK, LEFT, NTM, RIGHT, STAY, TMConfig
from repro.core.spocus import SpocusTransducer
from repro.datalog.parser import parse_program
from repro.relalg.schema import DatabaseSchema, RelationSchema

NO_HEAD = "m0"  # the mark for "head not on this cell" (the proof's 0)


@dataclass
class CompiledTM:
    """The compiled transducer plus the metadata the driver needs."""

    transducer: SpocusTransducer
    ntm: NTM
    contents: tuple[str, ...]  # tape alphabet (including blank)
    marks: tuple[str, ...]  # NO_HEAD plus all machine states

    def output_proposition(self, symbol: str) -> str:
        return f"p_{symbol}"


def _not_tape_all_contents(
    stamp: str, idx1: str, idx2: str, contents, marks
) -> str:
    """``⋀_{z,v} NOT tape(stamp, idx1, idx2, z, v)`` -- "no such row"."""
    parts = [
        f"NOT tape({stamp}, {idx1}, {idx2}, {z}, {v})"
        for z in contents
        for v in marks
    ]
    return ", ".join(parts)


def _not_past_tape_all_contents(
    stamp: str, idx1: str, idx2: str, contents, marks
) -> str:
    parts = [
        f"NOT past-tape({stamp}, {idx1}, {idx2}, {z}, {v})"
        for z in contents
        for v in marks
    ]
    return ", ".join(parts)


def compile_tm(ntm: NTM) -> CompiledTM:
    """Compile ``ntm`` into the Theorem 4.2 Spocus transducer."""
    contents = tuple(sorted(ntm.alphabet))
    marks = (NO_HEAD,) + tuple(sorted(ntm.states))
    instructions = ntm.numbered_instructions()
    q0 = ntm.start_state
    halt = ntm.halt_state

    rules: list[str] = []
    add = rules.append

    # φ_next(A, B): A is the maximum configuration stamp so far and B is
    # its successor in the index chain (not yet used as a stamp).  Used
    # inline as a body fragment.
    def phi_next(a: str = "A", b: str = "B") -> str:
        return (
            f"past-tape({a}, X8, Y8, Z8, V8), "
            f"past-tape(A9, {a}, {b}, Z9, V9), "
            + _not_past_tape_all_contents(b, "0", "1", contents, marks)
        )

    # ---- global stage control -------------------------------------------------
    add("error :- stage(X), stage(Y), X <> Y;")
    add("error :- NOT stage(1), NOT stage(2), NOT stage(3);")
    add("error :- stage(2), NOT past-stage(1);")
    add("error :- stage(3), NOT past-stage(2);")
    add("error :- stage(1), past-stage(2);")
    add("error :- stage(2), past-stage(3);")
    # inputs irrelevant to a stage must be empty
    add("error :- stage(1), move(X);")
    add("error :- stage(1), cell(X);")
    add("error :- stage(2), index(X);")
    add("error :- stage(2), oldindex(X);")
    add("error :- stage(2), cell(X);")
    add("error :- stage(3), tape(A, X, Y, Z, V);")
    add("error :- stage(3), move(X);")
    add("error :- stage(3), index(X);")
    add("error :- stage(3), oldindex(X);")

    # ---- stage 1: building the initial configuration --------------------------
    # First step: exactly tape(0,0,1,b,q0), index(0), index(1), oldindex(0).
    first = "stage(1), NOT past-stage(1)"
    add(f"error :- {first}, NOT tape(0, 0, 1, {BLANK}, {q0});")
    add(f"error :- {first}, NOT index(0);")
    add(f"error :- {first}, NOT index(1);")
    add(f"error :- {first}, NOT oldindex(0);")
    add(f"error :- {first}, index(X), X <> 0, X <> 1;")
    add(f"error :- {first}, oldindex(X), X <> 0;")
    for column, bad in (("X", "0"), ("Y", "1")):
        add(
            f"error :- {first}, tape(A, X, Y, Z, V), {column} <> {bad};"
        )
    add(f"error :- {first}, tape(A, X, Y, Z, V), A <> 0;")
    add(f"error :- {first}, tape(A, X, Y, Z, V), Z <> {BLANK};")
    add(f"error :- {first}, tape(A, X, Y, Z, V), V <> {q0};")

    # Continuation steps: one new blank cell per step.
    cont = "stage(1), past-stage(1)"
    add(f"error :- {cont}, tape(A, X, Y, Z, V), A <> 0;")
    add(f"error :- {cont}, tape(A, X, Y, Z, V), Z <> {BLANK};")
    add(f"error :- {cont}, tape(A, X, Y, Z, V), V <> {NO_HEAD};")
    # at most one tuple per relation per step
    for col_a, col_b in (("X", "X2"), ("Y", "Y2")):
        add(
            "error :- stage(1), tape(A, X, Y, Z, V), "
            f"tape(A2, X2, Y2, Z2, V2), {col_a} <> {col_b};"
        )
    add(f"error :- {cont}, index(X), index(Y), X <> Y;")
    add("error :- stage(1), oldindex(X), oldindex(Y), X <> Y;")
    # rules (1)-(10) of the stage-1 construction
    row = f"tape(0, A, B, {BLANK}, {NO_HEAD})"
    add(f"error :- {cont}, {row}, NOT past-index(A);")
    add(f"error :- {cont}, {row}, past-oldindex(A);")
    add(f"error :- {cont}, {row}, past-index(B);")
    add(f"error :- {cont}, {row}, NOT oldindex(A);")
    add(f"error :- {cont}, {row}, NOT index(B);")
    add(
        f"error :- {cont}, oldindex(A), index(B), "
        f"NOT tape(0, A, B, {BLANK}, {NO_HEAD});"
    )
    add(
        f"error :- {cont}, index(B), past-index(A), NOT past-oldindex(A), "
        f"NOT tape(0, A, B, {BLANK}, {NO_HEAD});"
    )
    add(
        f"error :- {cont}, index(B), past-index(A), NOT past-oldindex(A), "
        "NOT oldindex(A);"
    )
    add(f"error :- {cont}, oldindex(A), NOT past-index(A);")
    add(f"error :- {cont}, oldindex(A), past-oldindex(A);")

    # ---- stage 2: simulating moves ---------------------------------------------
    stage2 = "stage(2)"
    # (1) a unique stamp per input configuration
    add(
        f"error :- {stage2}, tape(A, X, Y, Z, V), "
        "tape(A2, X2, Y2, Z2, V2), A <> A2;"
    )
    # unique content per index pair within the input configuration
    add(
        f"error :- {stage2}, tape(A, X, Y, Z, V), tape(A, X, Y, Z2, V2), "
        "Z <> Z2;"
    )
    add(
        f"error :- {stage2}, tape(A, X, Y, Z, V), tape(A, X, Y, Z2, V2), "
        "V <> V2;"
    )
    # stamps come from the index pool and are fresh
    add(f"error :- {stage2}, tape(A, X, Y, Z, V), NOT past-index(A);")
    add(
        f"error :- {stage2}, tape(A, X, Y, Z, V), "
        "past-tape(A, X2, Y2, Z2, V2);"
    )
    # (2')/(3') index pairs of the input = index pairs of the chain
    add(
        f"error :- {stage2}, tape(A, X, Y, Z, V), "
        + _not_past_tape_all_contents("0", "X", "Y", contents, marks)
        + ";"
    )
    add(
        f"error :- {stage2}, tape(A, X2, Y2, Z2, V2), "
        "past-tape(0, X, Y, Z, V), "
        + _not_tape_all_contents("A", "X", "Y", contents, marks)
        + ";"
    )
    # (4) the new configuration must carry the successor stamp
    add(
        f"error :- {stage2}, {phi_next('A', 'B')}, "
        + _not_tape_all_contents("B", "0", "1", contents, marks)
        + ";"
    )
    # the input stamp must BE that successor
    add(
        f"error :- {stage2}, {phi_next('A', 'B')}, tape(A2, X, Y, Z, V), "
        "A2 <> B;"
    )
    # (7)/(8) exactly one move per stage-2 step
    add(f"error :- {stage2}, move(X), move(Y), X <> Y;")
    not_moves = ", ".join(f"NOT move({num})" for num, *_ in instructions)
    if not_moves:
        add(f"error :- {stage2}, {not_moves};")

    # Per-instruction legality rules.  Applicability of the chosen move
    # (right head mark and read symbol in the latest configuration) is
    # enforced by the head-cell rules below: when the pattern does not
    # match, rule (4) still demands a successor configuration, and the
    # frame rules force it to be an exact copy with no head mark, after
    # which the simulation is stuck and produces no output.
    for number, state, read, new_state, written, direction in instructions:
        gate = f"{stage2}, move({number}), {phi_next('A', 'B')}"
        head = f"past-tape(A, X1, X2, {read}, {state})"
        if direction == RIGHT:
            add(
                f"error :- {gate}, {head}, "
                f"NOT tape(B, X1, X2, {written}, {NO_HEAD});"
            )
            add(
                f"error :- {gate}, {head}, past-tape(A, X2, X3, Z, {NO_HEAD}), "
                f"NOT tape(B, X2, X3, Z, {new_state});"
            )
            # frame: unmarked cell with unmarked predecessor stays
            add(
                f"error :- {gate}, {head}, "
                f"past-tape(A, X0, Y0, Z0, {NO_HEAD}), "
                f"past-tape(A, Y0, Y1, Z1, {NO_HEAD}), Y0 <> X2, "
                f"NOT tape(B, Y0, Y1, Z1, {NO_HEAD});"
            )
            add(
                f"error :- {gate}, {head}, past-tape(A, 0, 1, Z, {NO_HEAD}), "
                f"NOT tape(B, 0, 1, Z, {NO_HEAD});"
            )
        elif direction == STAY:
            add(
                f"error :- {gate}, {head}, "
                f"NOT tape(B, X1, X2, {written}, {new_state});"
            )
            add(
                f"error :- {gate}, {head}, past-tape(A, X2, X3, Z, {NO_HEAD}), "
                f"NOT tape(B, X2, X3, Z, {NO_HEAD});"
            )
            add(
                f"error :- {gate}, {head}, "
                f"past-tape(A, X0, Y0, Z0, {NO_HEAD}), "
                f"past-tape(A, Y0, Y1, Z1, {NO_HEAD}), "
                f"NOT tape(B, Y0, Y1, Z1, {NO_HEAD});"
            )
            add(
                f"error :- {gate}, {head}, X1 <> 0, "
                f"past-tape(A, 0, 1, Z, {NO_HEAD}), "
                f"NOT tape(B, 0, 1, Z, {NO_HEAD});"
            )
        elif direction == LEFT:
            # head cell: content updated, mark cleared
            add(
                f"error :- {gate}, {head}, "
                f"NOT tape(B, X1, X2, {written}, {NO_HEAD});"
            )
            # predecessor cell: keeps content, receives the head mark
            add(
                f"error :- {gate}, {head}, past-tape(A, X0, X1, Z, {NO_HEAD}), "
                f"NOT tape(B, X0, X1, Z, {new_state});"
            )
            # successor of the head stays
            add(
                f"error :- {gate}, {head}, past-tape(A, X2, X3, Z, {NO_HEAD}), "
                f"NOT tape(B, X2, X3, Z, {NO_HEAD});"
            )
            # frame for cells with unmarked predecessor AND unmarked
            # successor (the predecessor-of-head is excluded by the
            # successor condition; the head itself is marked)
            add(
                f"error :- {gate}, {head}, "
                f"past-tape(A, X0, Y0, Z0, {NO_HEAD}), "
                f"past-tape(A, Y0, Y1, Z1, {NO_HEAD}), "
                f"past-tape(A, Y1, Y2, Z2, {NO_HEAD}), "
                f"NOT tape(B, Y0, Y1, Z1, {NO_HEAD});"
            )
            # frame for the last cell (no successor: its end index was
            # never registered in oldindex)
            add(
                f"error :- {gate}, {head}, "
                f"past-tape(A, X0, Y0, Z0, {NO_HEAD}), "
                f"past-tape(A, Y0, Y1, Z1, {NO_HEAD}), "
                "NOT past-oldindex(Y1), Y0 <> X1, "
                f"NOT tape(B, Y0, Y1, Z1, {NO_HEAD});"
            )
            # frame for cell 0 when the head is not at cell 1
            add(
                f"error :- {gate}, {head}, X1 <> 1, "
                f"past-tape(A, 0, 1, Z, {NO_HEAD}), "
                f"NOT tape(B, 0, 1, Z, {NO_HEAD});"
            )

    # ---- stage 3: reading out the word ------------------------------------------
    stage3 = "stage(3)"
    add("error :- cell(X), cell(Y), X <> Y;")
    add(f"error :- {stage3}, NOT past-stage(3), NOT cell(0);")
    add(f"error :- {stage3}, cell(X), past-cell(X);")
    add(
        f"error :- {stage3}, past-stage(3), past-cell(A), "
        "past-tape(A2, A, B, Z, V), NOT past-cell(B), NOT cell(B);"
    )
    # output rules: the letters of the halted tape, in chain order
    for symbol in contents:
        if symbol == BLANK:
            continue
        add(
            f"p_{symbol} :- {stage3}, cell(0), "
            f"past-tape(A, 0, 1, {symbol}, {halt});"
        )
        add(
            f"p_{symbol} :- {stage3}, cell(X), X <> 0, "
            f"past-tape(A, 0, 1, Y, {halt}), "
            f"past-tape(A, X, X2, {symbol}, {NO_HEAD});"
        )

    program_text = "\n".join(r for r in rules if not r.startswith("#"))
    inputs = DatabaseSchema(
        [
            RelationSchema("stage", 1),
            RelationSchema("tape", 5),
            RelationSchema("index", 1),
            RelationSchema("oldindex", 1),
            RelationSchema("move", 1),
            RelationSchema("cell", 1),
        ]
    )
    outputs = DatabaseSchema(
        [RelationSchema("error", 0)]
        + [
            RelationSchema(f"p_{symbol}", 0)
            for symbol in contents
            if symbol != BLANK
        ]
    )
    transducer = SpocusTransducer(
        inputs,
        outputs,
        DatabaseSchema(()),
        parse_program(program_text),
        log=tuple(
            ["error"] + [f"p_{s}" for s in contents if s != BLANK]
        ),
    )
    return CompiledTM(transducer, ntm, contents, marks)


def _config_rows(
    config: TMConfig, stamp: int
) -> set[tuple]:
    """The tape rows encoding ``config`` with time stamp ``stamp``."""
    rows = set()
    for position, symbol in enumerate(config.tape):
        mark = config.state if position == config.head else NO_HEAD
        rows.add((stamp, position, position + 1, symbol, mark))
    return rows


def simulation_inputs(
    compiled: CompiledTM,
    computation: Sequence[tuple[int | None, TMConfig]],
    output_length: int | None = None,
) -> list[dict[str, set[tuple]]]:
    """The well-formed input sequence driving a computation through T.

    ``computation`` is as produced by :meth:`NTM.computations` (first
    entry instruction None).  ``output_length`` truncates stage 3 to a
    prefix of the generated word (None = the whole word).
    """
    _none, initial = computation[0]
    tape_length = len(initial.tape)
    word = computation[-1][1].word()
    if output_length is None:
        output_length = len(word)

    steps: list[dict[str, set[tuple]]] = []
    # Stage 1: first cell...
    steps.append(
        {
            "stage": {(1,)},
            "tape": {(0, 0, 1, BLANK, initial.state)},
            "index": {(0,), (1,)},
            "oldindex": {(0,)},
        }
    )
    # ...then one blank cell per step.
    for j in range(1, tape_length):
        steps.append(
            {
                "stage": {(1,)},
                "tape": {(0, j, j + 1, BLANK, NO_HEAD)},
                "index": {(j + 1,)},
                "oldindex": {(j,)},
            }
        )
    # Stage 2: one full configuration per move.
    for stamp, (instruction, config) in enumerate(computation[1:], start=1):
        assert instruction is not None
        steps.append(
            {
                "stage": {(2,)},
                "move": {(instruction,)},
                "tape": _config_rows(config, stamp),
            }
        )
    # Stage 3: walk the cells of the word prefix.
    for position in range(output_length):
        steps.append({"stage": {(3,)}, "cell": {(position,)}})
    return steps
