"""Propositional Spocus transducers and their generated languages.

Section 3.1 studies Spocus transducers "whose inputs and outputs are
propositional and which further output at most one proposition at a
time": the output sequences of such transducers, viewed as words over
the output alphabet (steps with empty output contribute nothing), form
the language Gen(T).  This module computes Gen(T) *exactly* as a finite
automaton -- possible because the cumulative state ranges over the
finite lattice of input-proposition subsets -- and implements a converse
construction building a transducer for any language admitted by the
Section 3.1 characterization.

Runs in which some step outputs two or more propositions do not
contribute words to Gen(T): "at most one proposition at a time" acts as
a run filter.  The converse construction exploits this deliberately: a
pair of *poison* propositions fires together on any input that deviates
from a proper traversal of the automaton, disqualifying the run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.automata.dfa import DFA
from repro.automata.nfa import EPSILON, NFA
from repro.automata.prefixclosed import is_generable_language
from repro.core.parser import parse_transducer
from repro.core.spocus import SpocusTransducer
from repro.errors import VerificationError


@dataclass
class PropositionalTransducer:
    """A Spocus transducer with 0-ary inputs and outputs."""

    transducer: SpocusTransducer

    def __post_init__(self) -> None:
        schema = self.transducer.schema
        bad = [
            rel.name
            for rel in list(schema.inputs) + list(schema.outputs)
            if rel.arity != 0
        ]
        if bad:
            raise VerificationError(
                f"not propositional; relations with arity > 0: {bad}"
            )

    @property
    def input_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.transducer.schema.inputs.names))

    @property
    def output_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.transducer.schema.outputs.names))


def gen_automaton(
    prop: PropositionalTransducer | SpocusTransducer,
    max_inputs: int = 14,
) -> NFA:
    """The exact Gen(T) automaton of a propositional transducer.

    States are the reachable subsets of input propositions (the
    cumulative state lattice); for every input subset σ, the transition
    ``S --letter--> S ∪ σ`` is labeled with the single output letter of
    ``ω(σ, S)`` (ε when the output is empty; steps with ≥2 outputs are
    excluded runs and contribute no transition).  All states accept, so
    the language is prefix-closed by construction.
    """
    if isinstance(prop, SpocusTransducer):
        prop = PropositionalTransducer(prop)
    transducer = prop.transducer
    inputs = prop.input_names
    if len(inputs) > max_inputs:
        raise VerificationError(
            f"{len(inputs)} input propositions exceed the exhaustive "
            f"bound {max_inputs}"
        )
    empty_db = transducer.coerce_database({})

    subsets = [
        frozenset(combo)
        for size in range(len(inputs) + 1)
        for combo in itertools.combinations(inputs, size)
    ]
    nonempty = [s for s in subsets if s]

    def state_instance(past: frozenset[str]):
        from repro.core.spocus import past as past_name
        from repro.relalg.instance import Instance

        data = {
            past_name(name): ({()} if name in past else set())
            for name in inputs
        }
        return Instance(transducer.schema.state, data)

    start: frozenset[str] = frozenset()
    nfa = NFA({start}, set(), {}, start, {start})
    seen = {start}
    stack = [start]
    while stack:
        current = stack.pop()
        for sigma in nonempty:
            _state, output = transducer.step(
                empty_db,
                state_instance(current),
                {name: {()} for name in sigma},
            )
            letters = [
                name for name in prop.output_names if output[name]
            ]
            if len(letters) >= 2:
                continue  # excluded run: two propositions at once
            label = letters[0] if letters else EPSILON
            target = current | sigma
            nfa.add_transition(current, label, target)
            nfa.accepting.add(target)
            if target not in seen:
                seen.add(target)
                stack.append(target)
    return nfa


def gen_words(
    prop: PropositionalTransducer | SpocusTransducer, max_length: int
) -> set[tuple[str, ...]]:
    """Gen(T) truncated to words of length ≤ ``max_length``."""
    return gen_automaton(prop).words_up_to(max_length)


ABC_SOURCE = """
transducer abstar
schema
  input: A/0, B/0, C/0;
  output: a/0, b/0, c/0;
  log: a, b, c;
state rules
  past-A +:- A;
  past-B +:- B;
  past-C +:- C;
output rules
  a :- A, NOT past-A;
  b :- B, past-A, NOT past-C, NOT C;
  c :- C, past-A, NOT past-C;
"""


def build_abc_example() -> PropositionalTransducer:
    """The Section 3.1 example generating the prefixes of ``ab*c``."""
    transducer = parse_transducer(ABC_SOURCE)
    assert isinstance(transducer, SpocusTransducer)
    return PropositionalTransducer(transducer)


# ---------------------------------------------------------------------------
# Converse construction: language -> transducer
# ---------------------------------------------------------------------------


def _unfold_tree(dfa: DFA):
    """Unfold the trimmed DFA (acyclic modulo self-loops) into a tree.

    Returns (nodes, tree_edges, loops): nodes are integers (0 = root);
    ``tree_edges`` is a list of (parent_node, letter, child_node) for
    non-self-loop transitions; ``loops`` lists (node, letter) for
    self-loops attached to each unfolded copy of a looping state.
    """
    trimmed = dfa.trim()
    nodes: list[object] = [trimmed.start]
    tree_edges: list[tuple[int, str, int]] = []
    loops: list[tuple[int, str]] = []

    def expand(node_index: int, state) -> None:
        for symbol in sorted(trimmed.alphabet):
            target = trimmed.step(state, symbol)
            if target is None:
                continue
            if target == state:
                loops.append((node_index, symbol))
                continue
            child_index = len(nodes)
            nodes.append(target)
            tree_edges.append((node_index, symbol, child_index))
            expand(child_index, target)

    expand(0, trimmed.start)
    return list(range(len(nodes))), tree_edges, loops


def transducer_for_automaton(dfa: DFA) -> PropositionalTransducer:
    """Build a propositional Spocus transducer with Gen(T) = L(dfa).

    ``dfa`` must pass :func:`is_generable_language` (prefix-closed,
    cycles only as self-loops).  The construction unfolds the automaton
    into a tree, introduces one input proposition per tree edge and per
    attached self-loop, and emits:

    * a letter rule firing the edge's letter when the edge input arrives
      after its parent edge (and, for non-loop edges, at most once);
    * a pair of poison rules firing *two* propositions whenever an edge
      input arrives out of order or alongside history from an
      incompatible branch -- disqualifying the run from Gen(T).
    """
    if not is_generable_language(dfa):
        raise VerificationError(
            "language is not generable: it must be prefix-closed and its "
            "minimal automaton may contain only self-loop cycles "
            "(Section 3.1)"
        )
    minimal = dfa.minimize()
    nodes, tree_edges, loops = _unfold_tree(minimal)

    edge_input = {
        (parent, letter, child): f"E{parent}_{child}"
        for parent, letter, child in tree_edges
    }
    loop_input = {
        (node, letter): f"L{node}_{letter}" for node, letter in loops
    }

    parent_edge: dict[int, tuple[int, str, int]] = {}
    for edge in tree_edges:
        parent_edge[edge[2]] = edge

    def ancestors(node: int) -> list[tuple[int, str, int]]:
        chain = []
        while node in parent_edge:
            edge = parent_edge[node]
            chain.append(edge)
            node = edge[0]
        return chain

    def allowed_inputs(node: int) -> set[str]:
        """Inputs compatible with being at ``node``: the ancestor chain
        and the self-loops attached along it (including at ``node``)."""
        chain = ancestors(node)
        names = {edge_input[e] for e in chain}
        path_nodes = {node} | {e[0] for e in chain}
        for (loop_node, letter), name in loop_input.items():
            if loop_node in path_nodes:
                names.add(name)
        return names

    all_inputs = list(edge_input.values()) + list(loop_input.values())
    alphabet = sorted(minimal.alphabet)
    rules: list[str] = []

    def poison(trigger: str, condition: str) -> None:
        rules.append(f"poisonA :- {trigger}{condition};")
        rules.append(f"poisonB :- {trigger}{condition};")

    for edge in tree_edges:
        parent, letter, child = edge
        name = edge_input[edge]
        conditions = [name, f"NOT past-{name}"]
        if parent in parent_edge:
            conditions.append(f"past-{edge_input[parent_edge[parent]]}")
        rules.append(f"{letter} :- {', '.join(conditions)};")
        if parent in parent_edge:
            poison(name, f", NOT past-{edge_input[parent_edge[parent]]}")
        allowed = allowed_inputs(parent) | {name}
        for other in all_inputs:
            if other not in allowed:
                poison(name, f", past-{other}")

    for (node, letter), name in loop_input.items():
        conditions = [name]
        if node in parent_edge:
            conditions.append(f"past-{edge_input[parent_edge[node]]}")
        rules.append(f"{letter} :- {', '.join(conditions)};")
        if node in parent_edge:
            poison(name, f", NOT past-{edge_input[parent_edge[node]]}")
        allowed = allowed_inputs(node) | {name}
        for other in all_inputs:
            if other not in allowed:
                poison(name, f", past-{other}")

    from repro.datalog.parser import parse_program
    from repro.relalg.schema import DatabaseSchema, RelationSchema

    inputs_schema = DatabaseSchema(
        RelationSchema(name, 0) for name in all_inputs
    )
    outputs_schema = DatabaseSchema(
        [RelationSchema(letter, 0) for letter in alphabet]
        + [RelationSchema("poisonA", 0), RelationSchema("poisonB", 0)]
    )
    transducer = SpocusTransducer(
        inputs_schema,
        outputs_schema,
        DatabaseSchema(()),
        parse_program("\n".join(rules)),
        log=tuple(alphabet),
    )
    return PropositionalTransducer(transducer)
