"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single exception type at API boundaries.  The
subclasses mirror the major subsystems: schemas, datalog rules, transducer
restrictions, logic/solver limits, and parsing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation schema or transducer schema is malformed or violated.

    Raised, for example, when a tuple of the wrong arity is inserted into
    a relation, when two transducer schema components overlap, or when a
    log relation is not among the input/output relations.
    """


class ArityError(SchemaError):
    """A tuple's arity does not match its relation's declared arity."""


class UnknownRelationError(SchemaError):
    """A relation name was referenced that the schema does not declare."""


class SessionError(ReproError):
    """A runtime session lookup or lifecycle operation failed.

    Raised for unknown or already-existing session ids, malformed ids
    (session ids double as store file names), and invalid store
    arguments -- the lifecycle errors of :mod:`repro.pods`.
    """


class StoreError(SessionError):
    """A session store failed as a storage backend.

    Raised by :mod:`repro.pods` store implementations for backend-level
    failures: using a store after :meth:`close`, an unusable store
    target passed to ``open_store``, a destination that cannot import
    snapshots, or a corrupt/locked SQLite file.  Subclasses
    :class:`SessionError` so existing lifecycle handlers keep working.
    """


class ShardError(SessionError):
    """Session routing across shards failed.

    Raised for invalid shard counts or indexes, and for stale
    :class:`~repro.pods.api.SessionHandle` objects whose recorded shard
    disagrees with where the session id actually hash-routes.
    """


class ScenarioError(ReproError):
    """A workload scenario is misdeclared or was looked up incorrectly.

    Raised by :mod:`repro.scenarios` when a scenario class registers
    without a name, two scenarios claim the same name, or a caller asks
    the registry for a name it does not hold.
    """


class ServerError(ReproError):
    """The process-level pod server failed outside a session's semantics.

    Raised by :mod:`repro.server` for server-side faults that are not a
    session/store/shard error in their own right: a worker process that
    died while a request was in flight, a request that timed out waiting
    for its worker, a front-end asked to route to a worker it does not
    have.  The wire codec maps these to the ``server-error`` wire code
    (HTTP 500/503-style) so :class:`~repro.server.client.PodClient`
    callers see the same typed exception the server raised.
    """


class Backpressure(ServerError):
    """A pod server worker's request queue is full; try again later.

    Admission control of :mod:`repro.server`: each worker process is fed
    by a bounded in-flight window, and a request arriving while the
    window is full is *rejected* with this error (wire code
    ``backpressure``, HTTP 429) instead of queueing unboundedly -- the
    429-style contract that keeps an overloaded pod server's latency
    bounded.  ``shard`` names the saturated worker, ``queue_depth`` its
    window size.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: "int | None" = None,
        queue_depth: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.queue_depth = queue_depth


class WireError(ServerError):
    """A wire payload is malformed or of an unsupported version.

    Raised by :mod:`repro.server.wire` when decoding: non-object
    payloads, missing/unknown wire versions, unknown message kinds, and
    structurally invalid bodies.  Both sides raise it -- a server
    receiving garbage answers with a typed ``wire-error`` envelope
    (never crashing the worker), and a client receiving a response it
    cannot decode raises it locally.
    """


class RuleError(ReproError):
    """A datalog rule is malformed (unsafe, wrong head, bad literal)."""


class SafetyError(RuleError):
    """A rule violates the range-restriction (safety) condition.

    Section 3.1 of the paper requires every variable of a rule to occur
    in a positive relational literal of the body.
    """


class SpocusViolation(ReproError):
    """A transducer program violates the Spocus restrictions.

    The offending construct is named in the message: recursive output
    rules, non-cumulative state rules, projections in state rules, and
    so on (Definition in Section 3.1 of the paper).
    """


class ParseError(ReproError):
    """A textual program or formula could not be parsed."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class EvaluationError(ReproError):
    """Evaluation of a datalog program or algebra expression failed."""


class PlanError(EvaluationError):
    """A query plan was requested outside its supported scope.

    Subclasses :class:`EvaluationError` so existing handlers around the
    evaluator keep working when planning is what actually failed.
    """


class SolverError(ReproError):
    """The SAT/BSR solver was given unsupported input."""


class NotInPrefixClassError(SolverError):
    """A sentence is outside the Bernays-Schoenfinkel class after prenexing."""


class VerificationError(ReproError):
    """A verification procedure was applied outside its decidable scope."""


class SpecError(VerificationError):
    """A property specification is malformed or used outside its mode.

    Raised by :mod:`repro.verify.api` when a :class:`PropertySpec` is
    built from the wrong pieces (e.g. a non-T_past-input formula) or
    checked in a mode it does not support (e.g. an offline
    ``LogValidity`` check without a log).
    """


class AuditViolation(VerificationError):
    """A live pod violated an attached property specification.

    Raised by a strict :class:`~repro.verify.api.OnlineAuditor` from
    inside :meth:`~repro.pods.service.PodService.submit` *after* the
    step has been applied and persisted; ``findings`` carries the
    :class:`~repro.verify.api.AuditFinding` objects of the violating
    step, each with a replayable counterexample trace.

    When the violation surfaced inside ``submit_batch``,
    ``partial_results`` is a tuple aligned with the batch's requests:
    the :class:`~repro.pods.api.StepResult` of every request that
    completed, ``None`` elsewhere.  Serially that is the prefix before
    the violating request; under concurrency the violating session's
    group stops at the violation while the other sessions' groups run
    to completion (each session's results are always an in-order
    prefix of its own subsequence).  The violating request itself is
    ``None`` even though its step *was* applied and persisted (the
    audit runs after apply) -- callers reconcile the ``None`` slots
    against the session store.  ``None`` (the default) means the
    violation did not come from a batch.
    """

    def __init__(
        self,
        message: str,
        findings: tuple = (),
        partial_results: "tuple | None" = None,
    ) -> None:
        super().__init__(message)
        self.findings = tuple(findings)
        self.partial_results = (
            tuple(partial_results) if partial_results is not None else None
        )


class ShadowDivergence(VerificationError):
    """A shadowed candidate service diverged from its incumbent.

    Raised by a fail-closed :class:`~repro.shadow.ShadowService` the
    moment a mirrored step's comparison fails (or the candidate errors);
    ``report`` carries the :class:`~repro.shadow.DivergenceReport`,
    including the replayable trace and the first-divergent-step
    localization.  Fail-open policies record the report and keep
    serving instead of raising.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class UndecidableError(VerificationError):
    """The exact question posed is undecidable in general.

    The library raises this instead of silently running a semi-decision
    procedure, unless the caller explicitly opts into a bounded search.
    """


class ChaseNonterminationError(ReproError):
    """The chase exceeded its step budget without reaching a fixpoint."""
