"""An auction/bidding protocol audited by temporal properties.

Each session is one bidder's pod interacting with a shared auction
house: bids on items from a fixed ladder of amounts, closes, and the
occasional straggler bid after close.  The protocol's invariants are
purely temporal -- *sold implies a past bid*, *acks only before
close*, *late only after close* -- which makes this the scenario that
exercises :class:`~repro.verify.api.TemporalProperty` audits hardest.

Arithmetic comparison ("a higher bid beats a lower one") is expressed
relationally through the database's ``beats`` ladder, keeping the
whole protocol inside the paper's semipositive-datalog fragment.
"""

from __future__ import annotations

import random
from functools import lru_cache

from repro.core.spocus import SpocusTransducer
from repro.datalog.ast import Variable
from repro.logic.fol import Forall, Implies, Not, Rel
from repro.scenarios.base import Scenario
from repro.scenarios.registry import register_scenario
from repro.scenarios.traffic import ZipfSampler
from repro.verify.api import TemporalProperty

__all__ = ["AuctionScenario", "build_auction_transducer", "BID_LADDER"]

#: The fixed ladder of permissible bid amounts (cents).
BID_LADDER = (100, 200, 300, 500, 800, 1300, 2100, 3400)


def build_auction_transducer() -> SpocusTransducer:
    return SpocusTransducer.make(
        inputs={"bid": 2, "close": 1},
        outputs={"ack": 2, "late": 2, "sold": 2, "outbid": 2},
        database={"item": 1, "beats": 2},
        rules="""
        ack(I, A) :- bid(I, A), item(I), NOT past-close(I), NOT close(I);
        late(I, A) :- bid(I, A), past-close(I);
        sold(I, A) :- close(I), past-bid(I, A), item(I);
        outbid(I, A) :- close(I), past-bid(I, A), past-bid(I, B), beats(B, A);
        """,
        log=("bid", "close", "sold"),
    )


@lru_cache(maxsize=32)
def _items(scale: int) -> "tuple[str, ...]":
    return tuple(f"lot{i:03d}" for i in range(scale))


@register_scenario
class AuctionScenario(Scenario):
    name = "auction"
    description = (
        "bidding protocol: acks before close, sold needs a bid "
        "(temporal-property audits)"
    )
    default_scale = 20

    def build_transducer(self):
        return build_auction_transducer()

    def database(self, *, seed: int = 0, scale: int | None = None) -> dict:
        scale = self.scale_of(scale)
        beats = {
            (str(a), str(b))
            for a in BID_LADDER
            for b in BID_LADDER
            if a > b
        }
        return {
            "item": {(item,) for item in _items(scale)},
            "beats": beats,
        }

    def specs(self):
        I, A = Variable("I"), Variable("A")
        return (
            TemporalProperty(
                Forall(
                    (I, A),
                    Implies(Rel("sold", (I, A)), Rel("past-bid", (I, A))),
                ),
                name="sold only to an actual bidder",
            ),
            TemporalProperty(
                Forall(
                    (I, A),
                    Implies(Rel("ack", (I, A)), Not(Rel("past-close", (I,)))),
                ),
                name="acks only while the lot is open",
            ),
            TemporalProperty(
                Forall(
                    (I, A),
                    Implies(Rel("late", (I, A)), Rel("past-close", (I,))),
                ),
                name="late flags only after close",
            ),
        )

    def session_script(self, index, *, seed, scale, length):
        items = _items(scale)
        sampler = ZipfSampler(scale, exponent=1.0)
        rng = random.Random(f"auction:session:{seed}:{index}")
        closed: set[str] = set()
        bid_on: list[str] = []
        script: list[dict] = []
        for _step in range(length):
            roll = rng.random()
            if roll < 0.70 or not bid_on:
                item = sampler.choice(rng, items)
                amount = str(rng.choice(BID_LADDER))
                script.append({"bid": {(item, amount)}})
                if item not in closed and item not in bid_on:
                    bid_on.append(item)
            elif roll < 0.85:
                # Close a lot this bidder has been active on.
                item = bid_on.pop(rng.randrange(len(bid_on)))
                closed.add(item)
                script.append({"close": {(item,)}})
            elif closed and roll < 0.95:
                # Straggler bid after close -> the transducer answers
                # `late`, which the audit requires (and verifies).
                item = rng.choice(sorted(closed))
                script.append({"bid": {(item, str(rng.choice(BID_LADDER)))}})
            else:
                item = sampler.choice(rng, items)
                script.append({"bid": {(item, str(rng.choice(BID_LADDER)))}})
        return script
