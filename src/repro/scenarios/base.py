"""The Scenario protocol: one workload, fully bundled.

A :class:`Scenario` packages everything a driver needs to exercise one
transducer program end to end: the transducer itself, its database
instance, a seeded per-session input generator, and the
:class:`~repro.verify.api.PropertySpec` objects that audit it.  The
bundle is what lets ``run_scenario`` drive any registered workload
against any service surface -- in-process :class:`~repro.pods.service.
PodService`, sharded, or a :class:`~repro.server.client.PodClient`
over HTTP -- without scenario-specific glue.

Subclasses override the obvious hooks (``build_transducer``,
``database``, ``session_script``, ``specs``); the base class supplies
the traffic envelope (heavy-tailed session lengths, stable session
ids) and :meth:`Scenario.workload`, which expands the hooks into a
concrete :class:`Workload` that :func:`~repro.scenarios.traffic.
open_loop_schedule` can flatten into wire traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.scenarios.traffic import lognormal_length

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.spocus import SpocusTransducer
    from repro.verify.api.specs import PropertySpec

__all__ = ["Scenario", "Workload"]


@dataclass(frozen=True)
class Workload:
    """A concrete, fully-expanded batch of sessions for one scenario.

    ``sessions`` preserves generation order (which doubles as arrival
    order for the open-loop schedule); ``scripts`` maps each session id
    to its step-by-step input instances.
    """

    scenario: str
    sessions: tuple[str, ...]
    scripts: Mapping[str, Sequence[dict]]

    @property
    def total_steps(self) -> int:
        return sum(len(self.scripts[session]) for session in self.sessions)


class Scenario:
    """Base class for registered workload scenarios.

    Class attributes double as declarative metadata:

    * ``name`` -- registry key (required, unique).
    * ``description`` -- one line for ``python -m repro.scenarios --list``.
    * ``expects_violations`` -- True for adversarial scenarios whose
      traffic is *supposed* to trip the auditor; equivalence suites use
      it to decide whether a clean audit is a pass or a bug.
    * ``bench_profile`` -- ``"standard"`` scenarios join the default
      benchmark matrix; ``"slow"`` ones (e.g. BSR-backed log validation)
      only run at test sizes.
    * ``default_scale`` -- database size knob (catalog products, feed
      topics, auction items, peers) used when the caller passes none.
    """

    name: str = ""
    description: str = ""
    expects_violations: bool = False
    bench_profile: str = "standard"
    default_scale: int = 16

    # -- hooks -------------------------------------------------------

    def build_transducer(self) -> "SpocusTransducer":
        """The transducer this scenario serves.  Must be deterministic."""
        raise NotImplementedError

    def database(self, *, seed: int = 0, scale: int | None = None) -> dict:
        """The shared database instance, a pure function of (seed, scale).

        Purity matters: ``python -m repro.server --scenario NAME`` must
        rebuild the *same* database in the server process that an
        in-process run builds locally, or the HTTP-vs-in-process parity
        suite would be comparing different worlds.
        """
        raise NotImplementedError

    def specs(self) -> "tuple[PropertySpec, ...]":
        """The property specs an :class:`OnlineAuditor` should enforce."""
        return ()

    def reference(self) -> "SpocusTransducer | None":
        """Optional reference transducer for log-validity style specs."""
        return None

    def session_script(
        self, index: int, *, seed: int, scale: int, length: int
    ) -> "list[dict[str, set[tuple]]]":
        """The scripted inputs of session ``index`` -- ``length`` steps."""
        raise NotImplementedError

    # -- traffic envelope (overridable) ------------------------------

    def session_id(self, index: int) -> str:
        return f"{self.name}-{index:06d}"

    def session_length(self, index: int, *, seed: int, mean_steps: int) -> int:
        """Heavy-tailed by default; override for fixed-length scenarios."""
        rng = random.Random(f"{self.name}:length:{seed}:{index}")
        return lognormal_length(rng, mean_steps)

    # -- derived -----------------------------------------------------

    def scale_of(self, scale: int | None) -> int:
        return self.default_scale if scale is None else scale

    def workload(
        self,
        *,
        sessions: int,
        mean_steps: int,
        seed: int = 0,
        scale: int | None = None,
        prefix: str = "",
    ) -> Workload:
        """Expand the hooks into a concrete :class:`Workload`.

        ``prefix`` namespaces session ids so several runs can share one
        long-lived service (e.g. a pod server reused across tests).
        """
        resolved = self.scale_of(scale)
        ids: list[str] = []
        scripts: dict[str, list[dict]] = {}
        for index in range(sessions):
            session = prefix + self.session_id(index)
            length = self.session_length(index, seed=seed, mean_steps=mean_steps)
            ids.append(session)
            scripts[session] = self.session_script(
                index, seed=seed, scale=resolved, length=length
            )
        return Workload(
            scenario=self.name, sessions=tuple(ids), scripts=scripts
        )
