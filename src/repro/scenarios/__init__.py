"""Scenario & workload subsystem.

A registry of diverse transducer scenarios -- each bundling a program,
its database, a seeded traffic generator, and the property specs that
audit it -- plus :func:`run_scenario`, one open-loop driver that works
unchanged against :class:`~repro.pods.service.PodService`,
:class:`~repro.pods.service.ShardedPodService`, and a
:class:`~repro.server.client.PodClient` over HTTP.

    >>> from repro.scenarios import run_scenario, scenario_names
    >>> scenario_names()  # doctest: +SKIP
    ['adversarial', 'auction', 'commerce', ...]
    >>> run_scenario("feed-delivery", sessions=8, steps=5).audit_violations
    0

``python -m repro.scenarios --list`` / ``--run NAME`` from a shell.
"""

from repro.scenarios.base import Scenario, Workload
from repro.scenarios.registry import (
    get_scenario,
    list_scenarios,
    load_builtin_scenarios,
    register_scenario,
    resolve_scenario,
    scenario_database,
    scenario_names,
    scenario_transducer,
)
from repro.scenarios.runner import (
    ScenarioReport,
    log_digest,
    make_auditor,
    run_scenario,
)
from repro.scenarios.traffic import (
    ZipfSampler,
    lognormal_length,
    open_loop_events,
    open_loop_schedule,
    paced_requests,
)

__all__ = [
    "Scenario",
    "Workload",
    "ScenarioReport",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "load_builtin_scenarios",
    "resolve_scenario",
    "scenario_names",
    "scenario_transducer",
    "scenario_database",
    "run_scenario",
    "make_auditor",
    "log_digest",
    "ZipfSampler",
    "lognormal_length",
    "open_loop_events",
    "open_loop_schedule",
    "paced_requests",
]
