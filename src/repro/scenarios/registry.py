"""The scenario registry: ``@register_scenario`` and lookups.

Scenarios self-register at import time via the decorator; the builtin
scenario modules are imported lazily on first lookup so that importing
:mod:`repro.scenarios.registry` alone stays cheap and cycle-free.

:func:`scenario_transducer` and :func:`scenario_database` are
module-level functions on purpose: ``functools.partial(
scenario_transducer, name)`` is picklable, which is what lets
``python -m repro.server --scenario NAME`` ship a scenario's transducer
factory to spawn-context worker processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from repro.errors import ScenarioError
from repro.scenarios.base import Scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.spocus import SpocusTransducer

__all__ = [
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "resolve_scenario",
    "scenario_transducer",
    "scenario_database",
]

_REGISTRY: "dict[str, Scenario]" = {}
_BUILTINS_LOADED = False

#: Builtin scenario modules, imported on first registry lookup.
_BUILTIN_MODULES = (
    "repro.scenarios.commerce",
    "repro.scenarios.feed",
    "repro.scenarios.auction",
    "repro.scenarios.exchange",
    "repro.scenarios.adversarial",
    "repro.scenarios.examples",
)


def register_scenario(cls: "type[Scenario]") -> "type[Scenario]":
    """Class decorator: instantiate the scenario and register it by name."""
    scenario = cls()
    if not scenario.name:
        raise ScenarioError(
            f"{cls.__name__} must set a non-empty `name` to register"
        )
    if scenario.name in _REGISTRY:
        raise ScenarioError(
            f"scenario name {scenario.name!r} is already registered "
            f"(by {type(_REGISTRY[scenario.name]).__name__})"
        )
    _REGISTRY[scenario.name] = scenario
    return cls


def load_builtin_scenarios() -> None:
    """Import every builtin scenario module (idempotent)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def get_scenario(name: str) -> Scenario:
    """The registered scenario called ``name``."""
    load_builtin_scenarios()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ScenarioError(
            f"unknown scenario {name!r}; registered: {known}"
        ) from None


def scenario_names() -> "list[str]":
    """Sorted names of every registered scenario."""
    load_builtin_scenarios()
    return sorted(_REGISTRY)


def list_scenarios() -> "list[Scenario]":
    """Every registered scenario, sorted by name."""
    load_builtin_scenarios()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def resolve_scenario(scenario: "Union[Scenario, str]") -> Scenario:
    """A Scenario instance from either an instance or a registry name."""
    if isinstance(scenario, Scenario):
        return scenario
    return get_scenario(scenario)


def scenario_transducer(name: str) -> "SpocusTransducer":
    """Build the named scenario's transducer.

    Module-level so ``functools.partial(scenario_transducer, name)`` is
    a picklable factory for spawn-context pod-server workers.
    """
    return get_scenario(name).build_transducer()


def scenario_database(
    name: str, *, seed: int = 0, scale: "int | None" = None
) -> dict:
    """Build the named scenario's database instance."""
    return get_scenario(name).database(seed=seed, scale=scale)
