"""Adversarial traffic: measure the auditor under attack.

This scenario serves the deliberately broken store (``buggy``: the
``deliver`` rule forgot its payment check) and sends traffic designed
to trip it -- orders that are never paid, so unpaid deliveries fire on
nearly every subsequent step.  The attached spec is the paper's "no
delivery before payment" property, so an :class:`~repro.verify.api.
OnlineAuditor` records a violation finding (with a replayable trace)
for a large fraction of steps.

That is the point: every other scenario measures audit overhead on
*clean* traffic, where the violation plans match nothing.  Here the
plans match constantly, findings accumulate, and the benchmark's
"audit-under-attack" cell reports how much throughput survives when
the auditor is doing maximal work.  ``expects_violations`` tells the
equivalence suites that a clean audit of this scenario would itself be
a bug.
"""

from __future__ import annotations

import random

from repro.commerce.models import build_buggy_store
from repro.scenarios.base import Scenario
from repro.scenarios.commerce import _catalog, paid_delivery_spec
from repro.scenarios.registry import register_scenario
from repro.scenarios.traffic import ZipfSampler

__all__ = ["AdversarialScenario"]


@register_scenario
class AdversarialScenario(Scenario):
    name = "adversarial"
    description = (
        "violating traffic against the buggy store: audit-under-attack"
    )
    expects_violations = True
    default_scale = 50

    def build_transducer(self):
        return build_buggy_store()

    def database(self, *, seed: int = 0, scale: int | None = None) -> dict:
        return _catalog(seed, self.scale_of(scale)).as_database()

    def specs(self):
        return (paid_delivery_spec(),)

    def session_script(self, index, *, seed, scale, length):
        catalog = _catalog(seed, scale)
        sampler = ZipfSampler(scale, exponent=1.0)
        rng = random.Random(f"adversarial:session:{seed}:{index}")
        script: list[dict] = []
        for step in range(length):
            roll = rng.random()
            if step == 0 or roll < 0.7:
                # Order and never pay: from the next step on, the buggy
                # store keeps delivering unpaid products.
                product = sampler.choice(rng, catalog.products)
                script.append({"order": {(product,)}})
            elif roll < 0.85:
                # An honest payment now and then, to keep the violation
                # plans joining against a moving state.
                product = sampler.choice(rng, catalog.products)
                script.append({"pay": {(product, catalog.priced(product))}})
            else:
                # An empty step: the buggy store still delivers.
                script.append({})
        return script
