"""Seeded traffic shapes for scenario workloads.

Three deterministic generators cover the realistic regimes of pod
traffic without any numpy dependency:

* :class:`ZipfSampler` -- Zipf-skewed choice over a ranked population
  (hot products, hot topics, hot peers).  A handful of ranks absorb
  most of the probability mass, which is what shared catalogs and
  feeds look like in the wild.
* :func:`lognormal_length` -- heavy-tailed session lengths.  Most
  sessions are short, a few are very long; the log-normal is
  parameterised by its *mean* so callers can keep thinking in "average
  steps per session".
* :func:`open_loop_schedule` -- open-loop arrivals: sessions arrive on
  a Poisson process and each session's steps are spaced by exponential
  think times on its own virtual clock, independent of service times.
  The resulting global order interleaves sessions the way wall-clock
  traffic would, while staying a pure function of the seed.

:func:`open_loop_events` exposes the same schedule *with* its virtual
timestamps, and :func:`paced_requests` replays it against a real clock
(sleeping to each event's offset) -- the opt-in ``pace=True`` mode of
``run_scenario``.  Order-only remains the default: pacing changes when
requests land, never their order, so logs and digests are identical
either way.

Everything is seeded through string-keyed :class:`random.Random`
instances (the repo-wide idiom), so two runs with the same seed produce
byte-identical schedules on any platform.
"""

from __future__ import annotations

import random
import time
from bisect import bisect_right
from itertools import accumulate
from math import exp, log
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.pods.api import StepRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.scenarios.base import Workload

__all__ = [
    "ZipfSampler",
    "lognormal_length",
    "open_loop_events",
    "open_loop_schedule",
    "paced_requests",
]


class ZipfSampler:
    """Sample ranks ``0..n-1`` with probability proportional to 1/(r+1)^s.

    ``s`` (the exponent) controls the skew: 0 is uniform, ~1 is the
    classic Zipf regime where the top few ranks dominate.  Sampling is
    a binary search over the precomputed cumulative weights, so each
    draw is O(log n) and fully determined by the caller's ``rng``.
    """

    def __init__(self, n: int, exponent: float = 1.0) -> None:
        if n <= 0:
            raise ValueError(f"ZipfSampler needs a positive population, got {n}")
        self.n = n
        self.exponent = exponent
        weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
        self._cumulative = list(accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng: random.Random) -> int:
        """One rank in ``0..n-1``, skewed toward the low ranks."""
        return bisect_right(self._cumulative, rng.random() * self._total)

    def choice(self, rng: random.Random, population: Sequence):
        """A Zipf-skewed element of ``population`` (ranked by position)."""
        if len(population) != self.n:
            raise ValueError(
                f"population of {len(population)} does not match sampler over {self.n}"
            )
        return population[self.sample(rng)]


def lognormal_length(
    rng: random.Random,
    mean: float,
    sigma: float = 0.6,
    minimum: int = 1,
    maximum: int | None = None,
) -> int:
    """A heavy-tailed session length with the given *mean*.

    Draws from a log-normal whose underlying ``mu`` is solved so that
    the distribution's mean is ``mean`` (``mu = ln(mean) - sigma^2/2``),
    then rounds and clamps to ``[minimum, maximum]``.  ``maximum``
    defaults to ``4 * mean`` so a single unlucky session cannot dwarf a
    whole test run.
    """
    if mean <= 0:
        raise ValueError(f"mean session length must be positive, got {mean}")
    if maximum is None:
        maximum = max(minimum, round(4 * mean))
    mu = log(mean) - (sigma * sigma) / 2.0
    draw = exp(rng.gauss(mu, sigma))
    return max(minimum, min(maximum, round(draw)))


def open_loop_events(
    workload: "Workload",
    *,
    seed: int = 0,
    arrival_rate: float = 4.0,
    think_time: float = 1.0,
) -> list[tuple[float, StepRequest]]:
    """The open-loop schedule with its virtual timestamps.

    Sessions arrive on a Poisson process with rate ``arrival_rate``
    (sessions per virtual second, in the workload's declared order);
    each session then spaces its own steps by exponential think times
    with mean ``think_time``.  Returns ``(at, request)`` pairs sorted
    by time (session id and position break ties deterministically);
    per-session order is preserved by construction, since times are
    strictly increasing within a session.

    The schedule is a pure function of ``(workload, seed, rates)``.
    """
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if think_time < 0:
        raise ValueError(f"think_time must be >= 0, got {think_time}")
    rng = random.Random(f"open-loop:{workload.scenario}:{seed}")
    events: list[tuple[float, str, int, dict]] = []
    clock = 0.0
    for session_id in workload.sessions:
        clock += rng.expovariate(arrival_rate)
        at = clock
        for position, step in enumerate(workload.scripts[session_id]):
            if think_time > 0:
                at += rng.expovariate(1.0 / think_time)
            events.append((at, session_id, position, step))
    events.sort(key=lambda event: (event[0], event[1], event[2]))
    return [
        (at, StepRequest(session_id, step))
        for at, session_id, _pos, step in events
    ]


def open_loop_schedule(
    workload: "Workload",
    *,
    seed: int = 0,
    arrival_rate: float = 4.0,
    think_time: float = 1.0,
) -> list[StepRequest]:
    """Flatten a workload into one open-loop request *order*.

    The timestamp-free view of :func:`open_loop_events` -- what the
    default (order-only) scenario runner consumes.
    """
    return [
        request
        for _at, request in open_loop_events(
            workload,
            seed=seed,
            arrival_rate=arrival_rate,
            think_time=think_time,
        )
    ]


def paced_requests(
    events: "Sequence[tuple[float, StepRequest]]",
    *,
    time_scale: float = 1.0,
    clock: "Callable[[], float]" = time.monotonic,
    sleep: "Callable[[float], None]" = time.sleep,
) -> "Iterator[StepRequest]":
    """Replay a schedule against a real clock: the open loop, embodied.

    Yields each request at (or as soon after as possible) its event's
    virtual timestamp, scaled by ``time_scale`` seconds per virtual
    second -- sleeping when ahead of schedule, never reordering when
    behind.  An open-loop generator does not wait for responses, so a
    slow service accumulates *lateness* rather than thinning the
    arrival process; order (and therefore every log and digest) is
    identical to the un-paced schedule.

    ``clock`` and ``sleep`` are injectable for deterministic tests.
    """
    if time_scale < 0:
        raise ValueError(f"time_scale must be >= 0, got {time_scale}")
    origin = clock()
    for at, request in events:
        delay = origin + at * time_scale - clock()
        if delay > 0:
            sleep(delay)
        yield request
