"""Seeded traffic shapes for scenario workloads.

Three deterministic generators cover the realistic regimes of pod
traffic without any numpy dependency:

* :class:`ZipfSampler` -- Zipf-skewed choice over a ranked population
  (hot products, hot topics, hot peers).  A handful of ranks absorb
  most of the probability mass, which is what shared catalogs and
  feeds look like in the wild.
* :func:`lognormal_length` -- heavy-tailed session lengths.  Most
  sessions are short, a few are very long; the log-normal is
  parameterised by its *mean* so callers can keep thinking in "average
  steps per session".
* :func:`open_loop_schedule` -- open-loop arrivals: sessions arrive on
  a Poisson process and each session's steps are spaced by exponential
  think times on its own virtual clock, independent of service times.
  The resulting global order interleaves sessions the way wall-clock
  traffic would, while staying a pure function of the seed.

Everything is seeded through string-keyed :class:`random.Random`
instances (the repo-wide idiom), so two runs with the same seed produce
byte-identical schedules on any platform.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from itertools import accumulate
from math import exp, log
from typing import TYPE_CHECKING, Sequence

from repro.pods.api import StepRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.scenarios.base import Workload

__all__ = ["ZipfSampler", "lognormal_length", "open_loop_schedule"]


class ZipfSampler:
    """Sample ranks ``0..n-1`` with probability proportional to 1/(r+1)^s.

    ``s`` (the exponent) controls the skew: 0 is uniform, ~1 is the
    classic Zipf regime where the top few ranks dominate.  Sampling is
    a binary search over the precomputed cumulative weights, so each
    draw is O(log n) and fully determined by the caller's ``rng``.
    """

    def __init__(self, n: int, exponent: float = 1.0) -> None:
        if n <= 0:
            raise ValueError(f"ZipfSampler needs a positive population, got {n}")
        self.n = n
        self.exponent = exponent
        weights = [1.0 / (rank + 1) ** exponent for rank in range(n)]
        self._cumulative = list(accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng: random.Random) -> int:
        """One rank in ``0..n-1``, skewed toward the low ranks."""
        return bisect_right(self._cumulative, rng.random() * self._total)

    def choice(self, rng: random.Random, population: Sequence):
        """A Zipf-skewed element of ``population`` (ranked by position)."""
        if len(population) != self.n:
            raise ValueError(
                f"population of {len(population)} does not match sampler over {self.n}"
            )
        return population[self.sample(rng)]


def lognormal_length(
    rng: random.Random,
    mean: float,
    sigma: float = 0.6,
    minimum: int = 1,
    maximum: int | None = None,
) -> int:
    """A heavy-tailed session length with the given *mean*.

    Draws from a log-normal whose underlying ``mu`` is solved so that
    the distribution's mean is ``mean`` (``mu = ln(mean) - sigma^2/2``),
    then rounds and clamps to ``[minimum, maximum]``.  ``maximum``
    defaults to ``4 * mean`` so a single unlucky session cannot dwarf a
    whole test run.
    """
    if mean <= 0:
        raise ValueError(f"mean session length must be positive, got {mean}")
    if maximum is None:
        maximum = max(minimum, round(4 * mean))
    mu = log(mean) - (sigma * sigma) / 2.0
    draw = exp(rng.gauss(mu, sigma))
    return max(minimum, min(maximum, round(draw)))


def open_loop_schedule(
    workload: "Workload",
    *,
    seed: int = 0,
    arrival_rate: float = 4.0,
    think_time: float = 1.0,
) -> list[StepRequest]:
    """Flatten a workload into one open-loop request schedule.

    Sessions arrive on a Poisson process with rate ``arrival_rate``
    (sessions per virtual second, in the workload's declared order);
    each session then spaces its own steps by exponential think times
    with mean ``think_time``.  All clocks are *virtual*: the function
    just sorts the (time, session, position) events and returns the
    resulting :class:`~repro.pods.api.StepRequest` order, which
    interleaves long and short sessions realistically while per-session
    order is preserved by construction (times are strictly increasing
    within a session).

    The schedule is a pure function of ``(workload, seed, rates)``.
    """
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if think_time < 0:
        raise ValueError(f"think_time must be >= 0, got {think_time}")
    rng = random.Random(f"open-loop:{workload.scenario}:{seed}")
    events: list[tuple[float, str, int, dict]] = []
    clock = 0.0
    for session_id in workload.sessions:
        clock += rng.expovariate(arrival_rate)
        at = clock
        for position, step in enumerate(workload.scripts[session_id]):
            if think_time > 0:
                at += rng.expovariate(1.0 / think_time)
            events.append((at, session_id, position, step))
    events.sort(key=lambda event: (event[0], event[1], event[2]))
    return [
        StepRequest(session_id, step) for _at, session_id, _pos, step in events
    ]
