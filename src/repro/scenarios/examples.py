"""The repo's long-standing examples, registered as scenarios.

``guarded-store`` serves :func:`~repro.commerce.models.
build_guarded_store` (SHORT plus the Section 4.1 Tsdi error rules)
under compliant traffic, audited both by the transducer's own
``error`` output and by the Tsdi disciplines restated as an
:class:`~repro.verify.api.ErrorFreeness` spec -- the registry twin of
``examples/guarded_store.py``.

``fraud-detection`` serves SHORT under mistake-laden shopping traffic
with a :class:`~repro.verify.api.LogValidity` audit, the online twin
of ``examples/fraud_detection.py``'s offline log checking.  Log
validation decides a BSR sentence per step, so the scenario is marked
``bench_profile = "slow"`` and only runs at test sizes.
"""

from __future__ import annotations

import random

from repro.commerce.models import build_guarded_store, build_short
from repro.commerce.workloads import SessionGenerator
from repro.scenarios.base import Scenario
from repro.scenarios.commerce import _catalog
from repro.scenarios.registry import register_scenario
from repro.scenarios.traffic import ZipfSampler
from repro.verify.api import ErrorFreeness, LogValidity
from repro.verify.tsdi import TsdiConjunct

__all__ = ["GuardedStoreScenario", "FraudDetectionScenario"]


@register_scenario
class GuardedStoreScenario(Scenario):
    name = "guarded-store"
    description = (
        "SHORT with Tsdi error rules under compliant order/pay/cancel traffic"
    )
    default_scale = 30

    def build_transducer(self):
        return build_guarded_store()

    def database(self, *, seed: int = 0, scale: int | None = None) -> dict:
        return _catalog(seed, self.scale_of(scale)).as_database()

    def specs(self):
        return (
            ErrorFreeness(name="the guard relation stays empty"),
            ErrorFreeness.of_disciplines(
                TsdiConjunct.parse("pay(X, Y)", "price(X, Y), past-order(X)"),
                TsdiConjunct.parse("cancel(X)", "past-order(X)"),
            ),
        )

    def session_script(self, index, *, seed, scale, length):
        catalog = _catalog(seed, scale)
        sampler = ZipfSampler(scale, exponent=1.0)
        rng = random.Random(f"guarded:session:{seed}:{index}")
        unpaid: list[str] = []
        script: list[dict] = []
        for step in range(length):
            roll = rng.random()
            if step == 0 or roll < 0.45 or not unpaid:
                product = sampler.choice(rng, catalog.products)
                script.append({"order": {(product,)}})
                if product not in unpaid:
                    unpaid.append(product)
            elif roll < 0.85:
                # Pay the exact catalog price for a *previously* ordered
                # product -- the discipline pay -> price & past-order.
                product = unpaid.pop(rng.randrange(len(unpaid)))
                script.append({"pay": {(product, catalog.priced(product))}})
            else:
                # Cancel something previously ordered (also disciplined).
                product = rng.choice(unpaid)
                script.append({"cancel": {(product,)}})
        return script


@register_scenario
class FraudDetectionScenario(Scenario):
    name = "fraud-detection"
    description = (
        "SHORT with a per-step LogValidity audit (BSR-backed; test sizes)"
    )
    bench_profile = "slow"
    default_scale = 4

    def build_transducer(self):
        return build_short()

    def database(self, *, seed: int = 0, scale: int | None = None) -> dict:
        return _catalog(seed, self.scale_of(scale)).as_database()

    def specs(self):
        return (LogValidity(name="session logs validate against SHORT"),)

    def session_length(self, index: int, *, seed: int, mean_steps: int) -> int:
        # Every step pays a BSR decision; keep the tail bounded.
        rng = random.Random(f"{self.name}:length:{seed}:{index}")
        return min(mean_steps + rng.randrange(2), 2 * mean_steps)

    def session_script(self, index, *, seed, scale, length):
        generator = SessionGenerator(
            _catalog(seed, scale),
            seed=seed * 9_000_001 + index,
            error_rate=0.15,
            supports_pending_bills=False,
        )
        return generator.session(length)
