"""Multi-pod data exchange: the data contract as an audited firewall.

The byoda data-contract idea: a pod holds data under tags (profile,
contacts, location, ...) and a *contract* relation says which peer may
read which tag.  Peers connect and request data; the transducer sends
only what the contract allows and the peer's established connection
covers, and denies the rest.

The firewall is not trusted -- it is *audited*.  The pod's policy is
restated as :class:`~repro.verify.api.PropertySpec` objects and an
:class:`~repro.verify.api.OnlineAuditor` checks every live step: no
``send`` without a matching contract entry, no ``send`` before the
peer connected, and (as a Tsdi input discipline) no requests from
unknown peers at all.  If a future refactor of the transducer ever
leaks a tag, the auditor flags the exact step with a replayable trace.
"""

from __future__ import annotations

import random
from functools import lru_cache

from repro.core.spocus import SpocusTransducer
from repro.datalog.ast import Variable
from repro.logic.fol import Forall, Implies, Rel
from repro.scenarios.base import Scenario
from repro.scenarios.registry import register_scenario
from repro.scenarios.traffic import ZipfSampler
from repro.verify.api import ErrorFreeness, TemporalProperty
from repro.verify.tsdi import TsdiConjunct

__all__ = ["ExchangeScenario", "build_exchange_transducer", "TAGS"]

#: The data tags a pod serves, from public to sensitive.
TAGS = ("public", "profile", "contacts", "location", "health")


def build_exchange_transducer() -> SpocusTransducer:
    return SpocusTransducer.make(
        inputs={"connect": 1, "request": 2},
        outputs={"linked": 1, "send": 2, "deny": 2},
        database={"peer": 1, "contract": 2},
        rules="""
        linked(P) :- connect(P), peer(P);
        send(P, T) :- request(P, T), contract(P, T), past-connect(P);
        deny(P, T) :- request(P, T), NOT contract(P, T);
        deny(P, T) :- request(P, T), NOT past-connect(P), NOT connect(P);
        """,
        log=("request", "send", "deny"),
    )


@lru_cache(maxsize=32)
def _peers(scale: int) -> "tuple[str, ...]":
    return tuple(f"pod-{i:03d}" for i in range(scale))


@lru_cache(maxsize=32)
def _contract(seed: int, scale: int) -> "dict[str, tuple[str, ...]]":
    """Which tags each peer may read: always public, more with trust."""
    rng = random.Random(f"exchange:contract:{seed}:{scale}")
    contract: dict[str, tuple[str, ...]] = {}
    for peer in _peers(scale):
        granted = 1 + rng.randrange(len(TAGS))
        contract[peer] = TAGS[:granted]
    return contract


@register_scenario
class ExchangeScenario(Scenario):
    name = "data-exchange"
    description = (
        "pod-to-pod data contracts; the OnlineAuditor is the firewall"
    )
    default_scale = 16

    def build_transducer(self):
        return build_exchange_transducer()

    def database(self, *, seed: int = 0, scale: int | None = None) -> dict:
        scale = self.scale_of(scale)
        contract = _contract(seed, scale)
        return {
            "peer": {(peer,) for peer in _peers(scale)},
            "contract": {
                (peer, tag)
                for peer, tags in contract.items()
                for tag in tags
            },
        }

    def specs(self):
        P, T = Variable("P"), Variable("T")
        return (
            TemporalProperty(
                Forall(
                    (P, T),
                    Implies(Rel("send", (P, T)), Rel("contract", (P, T))),
                ),
                name="firewall: no send outside the data contract",
            ),
            TemporalProperty(
                Forall(
                    (P, T),
                    Implies(Rel("send", (P, T)), Rel("past-connect", (P,))),
                ),
                name="firewall: no send before the peer connected",
            ),
            ErrorFreeness.of_disciplines(
                TsdiConjunct.parse("request(P, T)", "peer(P)"),
            ),
        )

    def session_script(self, index, *, seed, scale, length):
        peers = _peers(scale)
        contract = _contract(seed, scale)
        sampler = ZipfSampler(scale, exponent=1.0)
        rng = random.Random(f"exchange:session:{seed}:{index}")
        connected: list[str] = []
        script: list[dict] = []
        for step in range(length):
            roll = rng.random()
            if step == 0 or (roll < 0.15 and len(connected) < scale):
                peer = sampler.choice(rng, peers)
                script.append({"connect": {(peer,)}})
                if peer not in connected:
                    connected.append(peer)
            else:
                peer = connected[ZipfSampler(len(connected)).sample(rng)]
                if rng.random() < 0.75:
                    # A request the contract covers -> send.
                    tag = rng.choice(contract[peer])
                else:
                    # Over-ask: any tag, contracted or not -> deny path.
                    tag = rng.choice(TAGS)
                script.append({"request": {(peer, tag)}})
        return script
