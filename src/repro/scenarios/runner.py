"""``run_scenario``: one driver for every scenario, every service.

The driver expands a scenario into an open-loop request schedule and
pushes it through ``create_session`` / ``submit_batch`` -- the only
surface it touches -- so the *same* call works against an in-process
:class:`~repro.pods.service.PodService`, a sharded service, or a
:class:`~repro.server.client.PodClient` talking HTTP to a pod server.
When no service is injected it builds one from the scenario bundle,
with the scenario's own :class:`~repro.verify.api.PropertySpec` list
attached as an :class:`~repro.verify.api.OnlineAuditor`.

``shadow_candidate`` turns any run into a shadow deploy: the built
service is wrapped in a :class:`~repro.shadow.ShadowService` mirroring
every request to a second service running the candidate scenario's
transducer over the *incumbent's* database, and the report grows the
divergence columns.  ``pace=True`` replays the open-loop schedule
against the real clock (sleeping to each arrival) instead of merely
preserving its order -- logs and digests are identical either way.

The returned :class:`ScenarioReport` carries throughput, the metrics
snapshot, audit counters, and (when logs are retained) a canonical
SHA-256 digest over every session log -- the equality token the
determinism, store-parity and HTTP-parity suites compare.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Iterable, Sequence, Union

from repro.pods.service import PodService, ShardedPodService
from repro.scenarios.base import Scenario
from repro.scenarios.registry import resolve_scenario
from repro.scenarios.traffic import open_loop_events, paced_requests
from repro.verify.api import OnlineAuditor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pods.api import StepRequest
    from repro.shadow import ComparisonPolicy

__all__ = ["ScenarioReport", "run_scenario", "make_auditor", "log_digest"]


@dataclass(frozen=True)
class ScenarioReport:
    """Outcome of one :func:`run_scenario` call.

    ``audit_checks`` / ``audit_violations`` come from the service's
    metrics snapshot (zero when the traffic ran unaudited, e.g. against
    a server whose workers hold no auditor); ``log_digest`` is ``None``
    unless logs were retained.  The shadow columns are populated only
    for ``shadow_candidate`` runs: ``divergences`` counts the recorded
    :class:`~repro.shadow.DivergenceReport` objects,
    ``first_divergence_step`` localizes the earliest one, and
    ``shadow_log_digest`` is the candidate side's digest (equal to
    ``log_digest`` exactly when the candidate behaved identically).
    """

    scenario: str
    sessions: int
    total_steps: int
    wall_seconds: float
    steps_per_second: float
    expects_violations: bool
    metrics: dict
    audit_checks: int
    audit_violations: int
    findings: int
    log_digest: "str | None"
    shadow_candidate: "str | None" = None
    divergences: int = 0
    first_divergence_step: "int | None" = None
    shadow_log_digest: "str | None" = None

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "sessions": self.sessions,
            "total_steps": self.total_steps,
            "wall_seconds": self.wall_seconds,
            "steps_per_second": self.steps_per_second,
            "expects_violations": self.expects_violations,
            "audit_checks": self.audit_checks,
            "audit_violations": self.audit_violations,
            "findings": self.findings,
            "log_digest": self.log_digest,
            "shadow_candidate": self.shadow_candidate,
            "divergences": self.divergences,
            "first_divergence_step": self.first_divergence_step,
            "shadow_log_digest": self.shadow_log_digest,
        }


def make_auditor(
    scenario: "Scenario | str", *, check_every: int = 1
) -> "OnlineAuditor | None":
    """A fresh auditor over the scenario's specs (None if it has none).

    ``check_every=k`` amortizes the BSR-backed (latching) monitors to
    every k-th step of each session; per-step monitors are unaffected.
    """
    scenario = resolve_scenario(scenario)
    specs = scenario.specs()
    if not specs:
        return None
    return OnlineAuditor(
        specs, reference=scenario.reference(), check_every=check_every
    )


def log_digest(service, session_ids: Iterable[str]) -> str:
    """Canonical SHA-256 over the given sessions' logs.

    Sessions are visited in sorted-id order; each log entry is reduced
    to ``{relation: sorted rows}`` over its schema, so the digest is
    independent of set iteration order, service implementation, and
    which side of an HTTP boundary produced it.
    """
    payload = []
    for session_id in sorted(session_ids):
        log = service.session(session_id).log()
        entries = [
            {
                name: sorted((list(row) for row in entry.get(name)), key=repr)
                for name in sorted(entry)
            }
            for entry in log.entries
        ]
        payload.append([session_id, entries])
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _chunked(requests: "Sequence[StepRequest]", size: int):
    for start in range(0, len(requests), size):
        yield requests[start : start + size]


def run_scenario(
    scenario: "Union[Scenario, str]",
    *,
    service=None,
    sessions: int = 32,
    steps: int = 6,
    seed: int = 0,
    scale: "int | None" = None,
    shards: int = 1,
    store=None,
    store_factory=None,
    concurrency: "int | None" = None,
    batch_size: int = 64,
    audit: bool = True,
    keep_logs: bool = True,
    session_prefix: str = "",
    arrival_rate: float = 4.0,
    think_time: float = 1.0,
    check_every: int = 1,
    shadow_candidate: "Union[Scenario, str, None]" = None,
    shadow_policy: "ComparisonPolicy | None" = None,
    pace: bool = False,
    time_scale: float = 1.0,
) -> ScenarioReport:
    """Drive one scenario's open-loop traffic through a pod service.

    With ``service=None`` the driver builds the scenario's own service:
    a :class:`PodService` (or, with ``shards > 1``, a
    :class:`ShardedPodService` whose every shard gets its own auditor)
    over ``store`` / ``store_factory``, audited by the scenario's specs
    unless ``audit=False``.  An injected ``service`` -- including a
    :class:`~repro.server.client.PodClient` -- is used as-is, and the
    build-time knobs (``shards``, ``store*``, ``audit``, ``keep_logs``)
    are ignored: they describe a service this call would have built.

    ``shadow_candidate`` names (or is) a second scenario whose
    transducer shadows the run: the (built or injected) service becomes
    the incumbent of a :class:`~repro.shadow.ShadowService`, the
    candidate runs over the incumbent scenario's database, and every
    request is mirrored and diffed under ``shadow_policy`` (default
    strict, fail-open).  Shadowing a scenario against *itself* is the
    canonical no-divergence control.

    ``pace=True`` replays the schedule against the real clock
    (``time_scale`` seconds of wall time per virtual second) through
    per-request ``submit`` calls; the default pushes the same order
    through ``submit_batch`` as fast as the service allows.

    ``steps`` is the *mean* session length; scenarios with heavy-tailed
    lengths draw around it.  ``session_prefix`` namespaces session ids
    so several runs can share one long-lived service.
    """
    scenario = resolve_scenario(scenario)
    workload = scenario.workload(
        sessions=sessions,
        mean_steps=steps,
        seed=seed,
        scale=scale,
        prefix=session_prefix,
    )
    events = open_loop_events(
        workload, seed=seed, arrival_rate=arrival_rate, think_time=think_time
    )
    schedule = [request for _at, request in events]
    database = None
    transducer = None
    if service is None:
        transducer = scenario.build_transducer()
        database = scenario.database(seed=seed, scale=scale)
        if shards == 1:
            resolved_store = store_factory(0) if store_factory else store
            service = PodService(
                transducer,
                database,
                store=resolved_store,
                keep_logs=keep_logs,
                auditor=(
                    make_auditor(scenario, check_every=check_every)
                    if audit
                    else None
                ),
            )
        else:
            service = ShardedPodService(
                transducer,
                database,
                shards=shards,
                keep_logs=keep_logs,
                store_factory=store_factory,
                auditor_factory=(
                    (lambda index: make_auditor(
                        scenario, check_every=check_every
                    ))
                    if audit
                    else None
                ),
            )
    shadow = None
    if shadow_candidate is not None:
        from repro.shadow import ShadowService

        candidate_scenario = resolve_scenario(shadow_candidate)
        if database is None:
            database = scenario.database(seed=seed, scale=scale)
        if transducer is None:
            transducer = scenario.build_transducer()
        # The candidate runs the *candidate's* transducer over the
        # *incumbent's* database and traffic: a shadow deploy asks "what
        # would the new model have done with production's requests?".
        candidate_service = PodService(
            candidate_scenario.build_transducer(),
            database,
            keep_logs=keep_logs,
        )
        service = shadow = ShadowService(
            service,
            candidate_service,
            policy=shadow_policy,
            transducer=transducer,
            database=database,
        )
    for session_id in workload.sessions:
        service.create_session(session_id)
    started = perf_counter()
    if pace:
        for request in paced_requests(events, time_scale=time_scale):
            service.submit(request)
    else:
        for chunk in _chunked(schedule, batch_size):
            service.submit_batch(chunk, concurrency=concurrency)
    wall = perf_counter() - started
    snapshot = service.metrics.snapshot()
    find = getattr(service, "audit_findings", None)
    findings = len(find()) if find is not None else 0
    # Session.log() is empty when the service retains no logs -- in
    # that case there is nothing meaningful to digest.
    digest = None
    if workload.sessions and len(service.session(workload.sessions[0]).log()):
        digest = log_digest(service, workload.sessions)
    divergences = 0
    first_divergence_step = None
    shadow_digest = None
    if shadow is not None:
        divergences = shadow.divergence_count()
        first = shadow.first_divergence()
        if first is not None:
            first_divergence_step = first.first_divergent_step
        if digest is not None:
            # The candidate saw exactly the mirrored prefix of every
            # session (divergent sessions detach), so its digest equals
            # the incumbent's iff no session ever diverged.  A candidate
            # too broken to even hold its sessions has no digest at all.
            try:
                shadow_digest = log_digest(shadow.candidate, workload.sessions)
            except Exception:  # noqa: BLE001 - candidate faults contained
                shadow_digest = None
    total = len(schedule)
    return ScenarioReport(
        scenario=scenario.name,
        sessions=len(workload.sessions),
        total_steps=total,
        wall_seconds=wall,
        steps_per_second=(total / wall) if wall > 0 else float("inf"),
        expects_violations=scenario.expects_violations,
        metrics=snapshot,
        audit_checks=snapshot.get("audit_checks", 0),
        audit_violations=snapshot.get("audit_violations", 0),
        findings=findings,
        log_digest=digest,
        shadow_candidate=(
            resolve_scenario(shadow_candidate).name
            if shadow_candidate is not None
            else None
        ),
        divergences=divergences,
        first_divergence_step=first_divergence_step,
        shadow_log_digest=shadow_digest,
    )
