"""``run_scenario``: one driver for every scenario, every service.

The driver expands a scenario into an open-loop request schedule and
pushes it through ``create_session`` / ``submit_batch`` -- the only
surface it touches -- so the *same* call works against an in-process
:class:`~repro.pods.service.PodService`, a sharded service, or a
:class:`~repro.server.client.PodClient` talking HTTP to a pod server.
When no service is injected it builds one from the scenario bundle,
with the scenario's own :class:`~repro.verify.api.PropertySpec` list
attached as an :class:`~repro.verify.api.OnlineAuditor`.

The returned :class:`ScenarioReport` carries throughput, the metrics
snapshot, audit counters, and (when logs are retained) a canonical
SHA-256 digest over every session log -- the equality token the
determinism, store-parity and HTTP-parity suites compare.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Iterable, Sequence, Union

from repro.pods.service import PodService, ShardedPodService
from repro.scenarios.base import Scenario
from repro.scenarios.registry import resolve_scenario
from repro.scenarios.traffic import open_loop_schedule
from repro.verify.api import OnlineAuditor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pods.api import StepRequest

__all__ = ["ScenarioReport", "run_scenario", "make_auditor", "log_digest"]


@dataclass(frozen=True)
class ScenarioReport:
    """Outcome of one :func:`run_scenario` call.

    ``audit_checks`` / ``audit_violations`` come from the service's
    metrics snapshot (zero when the traffic ran unaudited, e.g. against
    a server whose workers hold no auditor); ``log_digest`` is ``None``
    unless logs were retained.
    """

    scenario: str
    sessions: int
    total_steps: int
    wall_seconds: float
    steps_per_second: float
    expects_violations: bool
    metrics: dict
    audit_checks: int
    audit_violations: int
    findings: int
    log_digest: "str | None"

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "sessions": self.sessions,
            "total_steps": self.total_steps,
            "wall_seconds": self.wall_seconds,
            "steps_per_second": self.steps_per_second,
            "expects_violations": self.expects_violations,
            "audit_checks": self.audit_checks,
            "audit_violations": self.audit_violations,
            "findings": self.findings,
            "log_digest": self.log_digest,
        }


def make_auditor(scenario: "Scenario | str") -> "OnlineAuditor | None":
    """A fresh auditor over the scenario's specs (None if it has none)."""
    scenario = resolve_scenario(scenario)
    specs = scenario.specs()
    if not specs:
        return None
    return OnlineAuditor(specs, reference=scenario.reference())


def log_digest(service, session_ids: Iterable[str]) -> str:
    """Canonical SHA-256 over the given sessions' logs.

    Sessions are visited in sorted-id order; each log entry is reduced
    to ``{relation: sorted rows}`` over its schema, so the digest is
    independent of set iteration order, service implementation, and
    which side of an HTTP boundary produced it.
    """
    payload = []
    for session_id in sorted(session_ids):
        log = service.session(session_id).log()
        entries = [
            {
                name: sorted((list(row) for row in entry.get(name)), key=repr)
                for name in sorted(entry)
            }
            for entry in log.entries
        ]
        payload.append([session_id, entries])
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _chunked(requests: "Sequence[StepRequest]", size: int):
    for start in range(0, len(requests), size):
        yield requests[start : start + size]


def run_scenario(
    scenario: "Union[Scenario, str]",
    *,
    service=None,
    sessions: int = 32,
    steps: int = 6,
    seed: int = 0,
    scale: "int | None" = None,
    shards: int = 1,
    store=None,
    store_factory=None,
    concurrency: "int | None" = None,
    batch_size: int = 64,
    audit: bool = True,
    keep_logs: bool = True,
    session_prefix: str = "",
    arrival_rate: float = 4.0,
    think_time: float = 1.0,
) -> ScenarioReport:
    """Drive one scenario's open-loop traffic through a pod service.

    With ``service=None`` the driver builds the scenario's own service:
    a :class:`PodService` (or, with ``shards > 1``, a
    :class:`ShardedPodService` whose every shard gets its own auditor)
    over ``store`` / ``store_factory``, audited by the scenario's specs
    unless ``audit=False``.  An injected ``service`` -- including a
    :class:`~repro.server.client.PodClient` -- is used as-is, and the
    build-time knobs (``shards``, ``store*``, ``audit``, ``keep_logs``)
    are ignored: they describe a service this call would have built.

    ``steps`` is the *mean* session length; scenarios with heavy-tailed
    lengths draw around it.  ``session_prefix`` namespaces session ids
    so several runs can share one long-lived service.
    """
    scenario = resolve_scenario(scenario)
    workload = scenario.workload(
        sessions=sessions,
        mean_steps=steps,
        seed=seed,
        scale=scale,
        prefix=session_prefix,
    )
    schedule = open_loop_schedule(
        workload, seed=seed, arrival_rate=arrival_rate, think_time=think_time
    )
    if service is None:
        transducer = scenario.build_transducer()
        database = scenario.database(seed=seed, scale=scale)
        if shards == 1:
            resolved_store = store_factory(0) if store_factory else store
            service = PodService(
                transducer,
                database,
                store=resolved_store,
                keep_logs=keep_logs,
                auditor=make_auditor(scenario) if audit else None,
            )
        else:
            service = ShardedPodService(
                transducer,
                database,
                shards=shards,
                keep_logs=keep_logs,
                store_factory=store_factory,
                auditor_factory=(
                    (lambda index: make_auditor(scenario)) if audit else None
                ),
            )
    for session_id in workload.sessions:
        service.create_session(session_id)
    started = perf_counter()
    for chunk in _chunked(schedule, batch_size):
        service.submit_batch(chunk, concurrency=concurrency)
    wall = perf_counter() - started
    snapshot = service.metrics.snapshot()
    find = getattr(service, "audit_findings", None)
    findings = len(find()) if find is not None else 0
    # Session.log() is empty when the service retains no logs -- in
    # that case there is nothing meaningful to digest.
    digest = None
    if workload.sessions and len(service.session(workload.sessions[0]).log()):
        digest = log_digest(service, workload.sessions)
    total = len(schedule)
    return ScenarioReport(
        scenario=scenario.name,
        sessions=len(workload.sessions),
        total_steps=total,
        wall_seconds=wall,
        steps_per_second=(total / wall) if wall > 0 else float("inf"),
        expects_violations=scenario.expects_violations,
        metrics=snapshot,
        audit_checks=snapshot.get("audit_checks", 0),
        audit_violations=snapshot.get("audit_violations", 0),
        findings=findings,
        log_digest=digest,
    )
