"""``python -m repro.scenarios`` -- list and run workload scenarios.

    $ python -m repro.scenarios --list
    $ python -m repro.scenarios --run feed-delivery --sessions 64 --steps 8
    $ python -m repro.scenarios --run auction --shards 4 --concurrency 4 --json
    $ python -m repro.scenarios --run commerce --shadow adversarial

``--shadow CANDIDATE`` shadow-deploys the candidate scenario's
transducer under the incumbent's traffic and exits non-zero when any
divergence is recorded, so CI can use the run as a containment gate.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.scenarios.registry import list_scenarios, scenario_names
from repro.scenarios.runner import run_scenario


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="List or run registered workload scenarios.",
    )
    action = parser.add_mutually_exclusive_group(required=True)
    action.add_argument(
        "--list", action="store_true", help="list registered scenarios"
    )
    action.add_argument(
        "--run", metavar="NAME", help="run one scenario's workload"
    )
    parser.add_argument("--sessions", type=int, default=64)
    parser.add_argument(
        "--steps", type=int, default=8, help="mean steps per session"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale", type=int, default=None, help="database size knob"
    )
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument(
        "--concurrency",
        type=int,
        default=None,
        help="submit_batch worker threads",
    )
    parser.add_argument(
        "--store", default=None, metavar="PATH", help="session store path"
    )
    parser.add_argument(
        "--shadow",
        default=None,
        metavar="CANDIDATE_SCENARIO",
        help="shadow-deploy this scenario's transducer as a candidate; "
        "exit 1 if any divergence is found",
    )
    parser.add_argument(
        "--no-audit",
        action="store_true",
        help="drop the scenario's OnlineAuditor (pure throughput)",
    )
    parser.add_argument(
        "--no-logs", action="store_true", help="disable log retention"
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        width = max(len(name) for name in scenario_names())
        for scenario in list_scenarios():
            flags = []
            if scenario.expects_violations:
                flags.append("expects violations")
            if scenario.bench_profile != "standard":
                flags.append(scenario.bench_profile)
            suffix = f"  [{', '.join(flags)}]" if flags else ""
            print(f"{scenario.name:<{width}}  {scenario.description}{suffix}")
        return 0
    report = run_scenario(
        args.run,
        sessions=args.sessions,
        steps=args.steps,
        seed=args.seed,
        scale=args.scale,
        shards=args.shards,
        store=args.store,
        concurrency=args.concurrency,
        audit=not args.no_audit,
        keep_logs=not args.no_logs,
        shadow_candidate=args.shadow,
    )
    # The shadow gate: any divergence fails the run.
    exit_code = 1 if (args.shadow and report.divergences) else 0
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return exit_code
    print(f"scenario          {report.scenario}")
    print(f"sessions          {report.sessions}")
    print(f"total steps       {report.total_steps}")
    print(f"wall seconds      {report.wall_seconds:.3f}")
    print(f"steps / second    {report.steps_per_second:,.0f}")
    print(f"audit checks      {report.audit_checks}")
    print(
        f"audit violations  {report.audit_violations}"
        + ("  (expected for this scenario)" if report.expects_violations else "")
    )
    if report.log_digest:
        print(f"log digest        {report.log_digest[:16]}…")
    if args.shadow:
        print(f"shadow candidate  {report.shadow_candidate}")
        print(
            f"divergences       {report.divergences}"
            + (
                f"  (first at step {report.first_divergence_step})"
                if report.divergences
                else ""
            )
        )
        if report.shadow_log_digest:
            print(f"shadow digest     {report.shadow_log_digest[:16]}…")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
