"""Subscription/feed delivery with per-user filtering.

The byoda-style pod shape: a user's pod subscribes to topics and polls
for content; the transducer delivers only articles on topics the user
subscribed to *before* the poll (per-user filtering as datalog), and
answers polls on unsubscribed topics with an explicit ``nosub``.

Traffic is Zipf-skewed over topics (a few hot topics absorb most
subscriptions and polls) with heavy-tailed session lengths -- the
realistic feed regime.

The audit is the delivery policy itself, as two
:class:`~repro.verify.api.TemporalProperty` specs: nothing is ever fed
from a topic the user never subscribed to, and ``nosub`` never fires
for a topic the user had subscribed to.  (The second formula also has
to exclude a *same-step* subscribe: temporal monitors evaluate the
post-step state, where the current step's inputs are already folded
into ``past-subscribe``.)
"""

from __future__ import annotations

import random
from functools import lru_cache

from repro.core.spocus import SpocusTransducer
from repro.datalog.ast import Variable
from repro.logic.fol import Forall, Implies, Not, Rel
from repro.scenarios.base import Scenario
from repro.scenarios.registry import register_scenario
from repro.scenarios.traffic import ZipfSampler
from repro.verify.api import TemporalProperty

__all__ = ["FeedScenario", "build_feed_transducer"]


def build_feed_transducer() -> SpocusTransducer:
    return SpocusTransducer.make(
        inputs={"subscribe": 1, "poll": 1},
        outputs={"ack": 1, "feed": 2, "nosub": 1},
        database={"article": 2},
        rules="""
        ack(T) :- subscribe(T);
        feed(T, I) :- poll(T), past-subscribe(T), article(T, I);
        nosub(T) :- poll(T), NOT past-subscribe(T), NOT subscribe(T);
        """,
        log=("subscribe", "poll", "feed"),
    )


@lru_cache(maxsize=32)
def _topics(scale: int) -> "tuple[str, ...]":
    return tuple(f"topic{i:03d}" for i in range(scale))


@register_scenario
class FeedScenario(Scenario):
    name = "feed-delivery"
    description = (
        "pod feeds: Zipf-skewed topic subscriptions, per-user filtered polls"
    )
    default_scale = 24

    def build_transducer(self):
        return build_feed_transducer()

    def database(self, *, seed: int = 0, scale: int | None = None) -> dict:
        # Hot topics publish more articles, mirroring the traffic skew.
        scale = self.scale_of(scale)
        rng = random.Random(f"feed:db:{seed}:{scale}")
        articles: set[tuple] = set()
        for rank, topic in enumerate(_topics(scale)):
            count = rng.randint(2, 5) if rank < max(1, scale // 4) else rng.randint(1, 2)
            for item in range(count):
                articles.add((topic, f"{topic}/article{item}"))
        return {"article": articles}

    def specs(self):
        T, I = Variable("T"), Variable("I")
        return (
            TemporalProperty(
                Forall(
                    (T, I),
                    Implies(Rel("feed", (T, I)), Rel("past-subscribe", (T,))),
                ),
                name="feed only to subscribers",
            ),
            TemporalProperty(
                Forall(
                    (T,),
                    Implies(Rel("nosub", (T,)), Not(Rel("past-subscribe", (T,)))),
                ),
                name="nosub only before subscription",
            ),
        )

    def session_script(self, index, *, seed, scale, length):
        topics = _topics(scale)
        sampler = ZipfSampler(scale, exponent=1.1)
        rng = random.Random(f"feed:session:{seed}:{index}")
        subscribed: list[str] = []
        script: list[dict] = []
        for step in range(length):
            roll = rng.random()
            if step == 0 or (roll < 0.2 and len(subscribed) < scale):
                topic = sampler.choice(rng, topics)
                script.append({"subscribe": {(topic,)}})
                if topic not in subscribed:
                    subscribed.append(topic)
            elif roll < 0.9 and subscribed:
                # Poll a subscribed topic (recency-skewed toward the
                # earliest -- hottest -- subscriptions).
                topic = subscribed[
                    ZipfSampler(len(subscribed)).sample(rng)
                ]
                script.append({"poll": {(topic,)}})
            else:
                # Poll an arbitrary topic; unsubscribed ones answer nosub.
                script.append({"poll": {(sampler.choice(rng, topics),)}})
        return script
