"""The paper's commerce store as a registered scenario.

``commerce`` wraps the FRIENDLY transducer over a seeded
:class:`~repro.commerce.catalog.CatalogGenerator` catalog with the same
per-customer scripts :func:`repro.commerce.workloads.
simulate_concurrent_customers` has always generated -- same session
ids (``customer-NNNNNN``), same per-customer seeds, same
:class:`~repro.commerce.workloads.SessionGenerator` mix of orders,
payments and mistakes.  That exact-parity contract is what lets the
legacy entry point become a thin deprecation shim over the registry
(and is pinned by a test).
"""

from __future__ import annotations

from functools import lru_cache

from repro.commerce.catalog import Catalog, CatalogGenerator
from repro.commerce.models import build_friendly
from repro.commerce.workloads import SessionGenerator
from repro.datalog.ast import Variable
from repro.logic.fol import And, Forall, Implies, Rel
from repro.scenarios.base import Scenario
from repro.scenarios.registry import register_scenario
from repro.verify.api import TemporalProperty

__all__ = ["CommerceScenario", "paid_delivery_spec"]


def paid_delivery_spec() -> TemporalProperty:
    """The paper's flagship audit: no delivery before payment."""
    X, Y = Variable("X"), Variable("Y")
    return TemporalProperty(
        Forall(
            (X, Y),
            Implies(
                And((Rel("deliver", (X,)), Rel("price", (X, Y)))),
                Rel("past-pay", (X, Y)),
            ),
        ),
        name="no delivery before payment",
    )


@lru_cache(maxsize=32)
def _catalog(seed: int, scale: int) -> Catalog:
    return CatalogGenerator(seed=seed).generate(scale)


@register_scenario
class CommerceScenario(Scenario):
    name = "commerce"
    description = (
        "the paper's FRIENDLY store: orders, payments, customer mistakes"
    )
    default_scale = 50

    def catalog(self, *, seed: int = 0, scale: int | None = None) -> Catalog:
        return _catalog(seed, self.scale_of(scale))

    def build_transducer(self):
        return build_friendly()

    def database(self, *, seed: int = 0, scale: int | None = None) -> dict:
        return self.catalog(seed=seed, scale=scale).as_database()

    def specs(self):
        return (paid_delivery_spec(),)

    def session_id(self, index: int) -> str:
        # The ids simulate_concurrent_customers always used.
        return f"customer-{index:06d}"

    def session_length(self, index: int, *, seed: int, mean_steps: int) -> int:
        # Fixed length: the legacy workload ran every customer for
        # exactly steps_per_session steps, and shim parity pins that.
        return mean_steps

    def session_script(self, index, *, seed, scale, length):
        generator = SessionGenerator(
            self.catalog(seed=seed, scale=scale),
            seed=seed * 1_000_003 + index,
            error_rate=0.1,
            supports_pending_bills=True,
        )
        return generator.session(length)
