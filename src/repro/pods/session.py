"""One transducer run in progress.

A :class:`Session` wraps the run semantics of Section 2.2 as an
incremental object: instead of materializing a whole :class:`Run` from a
complete input sequence, it holds the current cumulative state and
advances one input instance at a time, recording the per-step log
entries.  Sessions are created and driven by a
:class:`~repro.pods.service.PodService`; they never touch the shared
database except through the transducer's (read-only, indexed) view of
it.

A session's forward-going state is exactly (cumulative state, step
count, log so far), so a session can be reconstructed from a
:class:`~repro.pods.api.SessionSnapshot` taken after any step: pass the
restored pieces to the constructor and stepping continues as if the
process had never stopped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.run import log_of_step
from repro.core.transducer import InputLike, RelationalTransducer
from repro.datalog.plan import EvalCounters
from repro.pods.api import SessionSnapshot, facts_of
from repro.relalg.instance import Instance


@dataclass(frozen=True)
class SessionLog:
    """The log produced by a session so far: step-aligned entries."""

    session_id: int | str
    entries: tuple[Instance, ...]

    def __len__(self) -> int:
        return len(self.entries)


class Session:
    """An independent run of a transducer over the shared database.

    ``session_id`` is unique within the owning service.  The session
    keeps only what the run semantics needs going forward: the state
    after the last step, the step count, and (optionally) the log.
    Outputs are returned to the caller per step, not retained.

    ``state``, ``steps``, and ``log`` seed a restored session; leaving
    them at their defaults starts a fresh run (state S_0, step 0).

    Sessions are NOT thread-safe: a session's steps must be applied
    sequentially by one thread at a time.  The service's concurrent
    batch path (``submit_batch(concurrency=N)``) upholds this by
    grouping each batch by session id and stepping every session's
    subsequence on exactly one worker; everything a session *shares*
    (the database instance, its indexed store, the compiled plan) is
    read-only.
    """

    __slots__ = ("session_id", "_transducer", "_database", "_state",
                 "_steps", "_log", "_keep_log", "_ctx", "_last_inputs")

    def __init__(
        self,
        session_id: int | str,
        transducer: RelationalTransducer,
        database: Instance,
        keep_log: bool = True,
        *,
        state: Instance | None = None,
        steps: int = 0,
        log: Iterable[Instance] = (),
    ) -> None:
        self.session_id = session_id
        self._transducer = transducer
        self._database = database
        self._state = state if state is not None else transducer.initial_state()
        self._steps = steps
        self._log: list[Instance] = list(log)
        self._keep_log = keep_log
        # Per-session evaluation context: compiled-plan reuse plus
        # cross-step incremental (delta) evaluation where the transducer
        # supports it.  Restored sessions get a fresh context; its first
        # step simply pays one full evaluation.
        self._ctx = transducer.new_step_context(database)
        self._last_inputs: Instance | None = None

    @property
    def state(self) -> Instance:
        return self._state

    @property
    def steps(self) -> int:
        return self._steps

    @property
    def last_log_entry(self) -> Instance | None:
        """The most recent log entry (None when empty or logging off)."""
        return self._log[-1] if self._log else None

    @property
    def last_inputs(self) -> Instance | None:
        """The (coerced) input instance of the most recent step.

        Consumed by the audit hook in ``PodService.submit()`` so
        monitors see exactly the instance the step evaluated, without
        re-coercing the caller's raw facts.  None before the first step
        of this process's lifetime (restored sessions included).
        """
        return self._last_inputs

    def step(self, inputs: InputLike) -> Instance:
        """Consume one input instance; return the step's output."""
        transducer = self._transducer
        current = transducer.coerce_input(inputs)
        self._last_inputs = current
        output = transducer.output_with_context(
            self._ctx, current, self._state, self._database
        )
        self._state = transducer.state_function(
            current, self._state, self._database
        )
        self._steps += 1
        if self._keep_log:
            self._log.append(
                log_of_step(
                    current, output, transducer.schema.log_schema
                )
            )
        return output

    def log(self) -> SessionLog:
        """The session's log so far (empty when ``keep_log`` is off)."""
        return SessionLog(self.session_id, tuple(self._log))

    def snapshot(self) -> SessionSnapshot:
        """This session's persistent state, in plain-facts wire form.

        Exactly what a :class:`~repro.pods.store.SessionStore` would
        reproduce on :meth:`load` after this session's last recorded
        step: a restored session built from it continues the run as if
        the process had never stopped.  The hot-session cache relies on
        this equivalence -- evicting a session and rehydrating it from
        the store is observationally the same as keeping it resident.
        """
        return SessionSnapshot(
            str(self.session_id),
            self._steps,
            facts_of(self._state),
            tuple(facts_of(entry) for entry in self._log),
        )

    def eval_counters(self) -> EvalCounters:
        """This session's cumulative plan/evaluation counters.

        Zeroes when the transducer steps without a context (e.g. a
        :class:`~repro.core.transducer.FunctionalTransducer`).
        """
        counters = getattr(self._ctx, "counters", None)
        if counters is None:
            return EvalCounters()
        return counters.copy()
