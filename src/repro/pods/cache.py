"""The hot-session cache: bounded residency for the pod runtime.

A :class:`~repro.pods.service.PodService` historically kept every open
session fully in RAM, so memory grew linearly with *created* sessions
-- a few tens of thousands of resident states and the ROADMAP's
"millions of users" north star is dead.  The tiered-storage design
splits the two numbers: the :class:`~repro.pods.store.SessionStore` is
the system of record (every step is written through to it already), and
the service keeps only a bounded working set of *live*
:class:`~repro.pods.session.Session` objects in an
:class:`LruSessionCache`.  When the cache exceeds its limit, the least
recently used idle session is evicted -- dropped from memory, nothing
written, because the store already holds its snapshot -- and the next
:class:`~repro.pods.api.StepRequest` for it transparently rehydrates it
from the store.  Logs, snapshots, and outputs are identical whether a
session was evicted zero or N times.

Pinning makes eviction safe under ``submit_batch`` concurrency: the
service pins a session for the duration of a step (through the store
write-through), and the cache never evicts a pinned entry.  If every
entry is pinned the cache temporarily overflows its limit and sheds the
surplus as pins are released.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.config import env_int
from repro.errors import SessionError

if TYPE_CHECKING:
    from repro.pods.session import Session


#: Environment override for the default residency limit: when a
#: ``PodService`` is built without an explicit ``max_resident_sessions``,
#: this variable (an integer >= 1, or 0/empty for unlimited) supplies
#: it.  CI runs the whole test suite once with ``REPRO_MAX_RESIDENT=8``
#: so every session-shaped code path is exercised through eviction and
#: rehydration, not just the dedicated tiered-storage tests.
MAX_RESIDENT_ENV = "REPRO_MAX_RESIDENT"


def max_resident_sessions(limit: "int | None" = None) -> "int | None":
    """Resolve a ``max_resident_sessions`` argument.

    ``None`` falls back to :data:`MAX_RESIDENT_ENV` (parsed by the
    shared :func:`repro.config.env_int` helper), then to unlimited
    residency (the pre-cache behavior).  ``0`` -- explicit or from the
    environment -- also means unlimited; anything below that raises
    :class:`~repro.errors.SessionError`.
    """
    if limit is None:
        limit = env_int(MAX_RESIDENT_ENV, default=0, minimum=0)
    if limit == 0:
        return None
    if limit < 0:
        raise SessionError(
            f"max_resident_sessions must be >= 0, got {limit}"
        )
    return limit


class _Entry:
    __slots__ = ("session", "pins")

    def __init__(self, session: "Session") -> None:
        self.session = session
        self.pins = 0


class LruSessionCache:
    """An LRU map of resident sessions with per-entry pinning.

    All operations are internally locked (the cache is touched by every
    worker of a concurrent batch); none of them call out while holding
    the lock.  Mutating operations return the entries they evicted as
    ``(session_id, session)`` pairs so the owning service can do its
    bookkeeping (metrics, the evicted-id set) under its own lock --
    lock order is always service lock -> cache lock, never the reverse.

    ``max_resident=None`` disables eviction entirely: the cache is then
    a plain dictionary with recency tracking, preserving the historical
    all-resident behavior at negligible cost.
    """

    def __init__(self, max_resident: "int | None" = None) -> None:
        if max_resident is not None and max_resident < 1:
            raise SessionError(
                f"max_resident must be >= 1 or None, got {max_resident}"
            )
        self.max_resident = max_resident
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._entries

    def ids(self) -> list[str]:
        """Resident session ids, sorted."""
        with self._lock:
            return sorted(self._entries)

    def get(self, session_id: str) -> "Session | None":
        """The resident session, freshened to most recently used."""
        with self._lock:
            entry = self._entries.get(session_id)
            if entry is None:
                return None
            self._entries.move_to_end(session_id)
            return entry.session

    def pin(self, session_id: str) -> "Session | None":
        """Like :meth:`get`, but also protect the entry from eviction."""
        with self._lock:
            entry = self._entries.get(session_id)
            if entry is None:
                return None
            entry.pins += 1
            self._entries.move_to_end(session_id)
            return entry.session

    def unpin(self, session_id: str) -> list[tuple[str, "Session"]]:
        """Release one pin; returns any entries evicted as a result.

        The entry may have been popped (session closed) while pinned;
        that is not an error -- the pin dies with the entry.
        """
        with self._lock:
            entry = self._entries.get(session_id)
            if entry is not None and entry.pins > 0:
                entry.pins -= 1
            return self._evict_surplus()

    def put(
        self, session_id: str, session: "Session", *, pin: bool = False
    ) -> list[tuple[str, "Session"]]:
        """Insert a session (most recently used); returns evictions.

        ``pin=True`` makes the insert-and-pin atomic, so a session
        restored for stepping cannot be evicted between its publication
        and its first pin by another thread's surplus shedding.
        """
        with self._lock:
            if session_id in self._entries:
                raise SessionError(
                    f"session already resident: {session_id!r}"
                )
            entry = _Entry(session)
            if pin:
                entry.pins = 1
            self._entries[session_id] = entry
            return self._evict_surplus()

    def pop(self, session_id: str) -> "Session | None":
        """Remove an entry outright (session closed), pinned or not."""
        with self._lock:
            entry = self._entries.pop(session_id, None)
            return entry.session if entry is not None else None

    def _evict_surplus(self) -> list[tuple[str, "Session"]]:
        """Shed unpinned LRU entries until within the limit (lock held)."""
        if self.max_resident is None:
            return []
        evicted: list[tuple[str, "Session"]] = []
        if len(self._entries) <= self.max_resident:
            return evicted
        # Walk from least to most recently used, skipping pinned
        # entries; stop as soon as the cache is back within its limit.
        for session_id in list(self._entries):
            if len(self._entries) - len(evicted) <= self.max_resident:
                break
            entry = self._entries[session_id]
            if entry.pins:
                continue
            evicted.append((session_id, entry.session))
        for session_id, _session in evicted:
            del self._entries[session_id]
        return evicted
