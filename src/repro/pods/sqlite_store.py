"""A single-file transactional SessionStore backed by SQLite.

The JSONL store burns one file (and one directory entry) per session,
which dies at a few hundred thousand pods; :class:`SqliteStore` keeps
every session of a service in one database file -- the byoda
``datacache/kv_sqlite.py`` shape -- with two tables:

* ``snapshots`` -- one row per open session: its step count and the
  cumulative state (the load-bearing record, restated every step just
  as the JSONL store's ``step`` records restate it, but as an in-place
  UPDATE instead of an append);
* ``events`` -- one row per *logged* step: the step's log entry, keyed
  ``(session_id, step)``.  Services running ``keep_logs=False`` write
  no event rows at all, matching the JSONL semantics of persisting
  only state and step count.

The file is opened in WAL mode so readers never block the writer, and
a ``load`` during heavy stepping sees a consistent snapshot.  The
wire format of facts is exactly the JSONL store's
(:func:`~repro.pods.store._encode_facts` sorted-row JSON), so
snapshots are byte-identical across the two backends and
:func:`~repro.pods.store.migrate_sessions` moves sessions either way.

**Durability knob.**  Per-step fsyncs would bottleneck hot-path
stepping, so writes are governed by ``durability=``:

* ``"full"`` -- ``synchronous=FULL``, one committed transaction per
  recorded event: a power loss loses nothing ever acknowledged;
* ``"step"`` (default) -- ``synchronous=NORMAL`` under WAL, one commit
  per event: crash-of-the-process loses nothing, power loss can lose
  the tail of the WAL but never corrupts the database;
* ``"batched"`` -- write-behind: events buffer in memory and commit as
  one transaction every ``flush_every`` events, on any read
  (``load``/``session_ids``/``stats`` -- read-your-writes always
  holds), on :meth:`flush`, and on :meth:`close`.  A crash loses at
  most the unflushed tail; the database itself stays consistent.

All operations are serialized by one internal lock (SQLite connections
are not thread-safe, and the per-event work is tiny next to a datalog
step), which also gives the per-session atomic, in-order write
guarantee of the :class:`~repro.pods.store.SessionStore` contract.
"""

from __future__ import annotations

import atexit
import json
import os
import signal
import sqlite3
import threading
import weakref
from pathlib import Path

from repro.errors import SessionError, StoreError
from repro.pods.api import SessionSnapshot, facts_of
from repro.pods.store import (
    StoreLifecycle,
    StoreStats,
    _decode_facts,
    _encode_facts,
)

DURABILITY_MODES = ("full", "step", "batched")

# Open write-behind stores, so an interpreter exit (atexit) or a
# SIGTERM can drain buffers the owner never flush()ed/close()d.  Weak
# references: registration must not keep an abandoned store (and its
# sqlite connection) alive.
_OPEN_BATCHED: "weakref.WeakSet[SqliteStore]" = weakref.WeakSet()
_EXIT_HOOKS = {"installed": False}
_EXIT_HOOKS_LOCK = threading.Lock()


def drain_open_stores() -> int:
    """Flush every open ``durability="batched"`` store; returns events.

    The last-resort drain behind the exit hooks; safe to call at any
    time (a store closed or flushed concurrently just contributes 0).
    Failures are swallowed -- this runs during interpreter shutdown or
    inside a signal handler, where raising would mask the exit itself.
    """
    drained = 0
    for store in list(_OPEN_BATCHED):
        try:
            drained += store.flush()
        except Exception:
            continue
    return drained


def _sigterm_drain(signum, frame):
    """Drain buffers, then die by SIGTERM as if unhandled.

    Restoring ``SIG_DFL`` and re-raising keeps the kill semantics a
    supervisor expects (the process reports termination-by-signal, not
    a clean exit) while still making acknowledged-but-buffered events
    durable first.
    """
    drain_open_stores()
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    os.kill(os.getpid(), signal.SIGTERM)


def _install_exit_hooks() -> None:
    """Register the atexit drain (and a SIGTERM drain when possible).

    Called once, lazily, by the first batched store.  The SIGTERM hook
    is only installed when the process still has the *default* handler
    and we are on the main thread -- an application (or test harness)
    that manages SIGTERM itself is never overridden; it can call
    :func:`drain_open_stores` from its own handler.
    """
    with _EXIT_HOOKS_LOCK:
        if _EXIT_HOOKS["installed"]:
            return
        _EXIT_HOOKS["installed"] = True
        atexit.register(drain_open_stores)
        try:
            if signal.getsignal(signal.SIGTERM) == signal.SIG_DFL:
                signal.signal(signal.SIGTERM, _sigterm_drain)
        except (ValueError, OSError):
            # Not the main thread (or an embedded interpreter without
            # signal support): the atexit hook still covers clean exits.
            pass

_SCHEMA = """
CREATE TABLE IF NOT EXISTS snapshots (
    session_id TEXT PRIMARY KEY,
    steps      INTEGER NOT NULL DEFAULT 0,
    state      TEXT
);
CREATE TABLE IF NOT EXISTS events (
    session_id TEXT    NOT NULL,
    step       INTEGER NOT NULL,
    log        TEXT    NOT NULL,
    PRIMARY KEY (session_id, step)
) WITHOUT ROWID;
"""


class SqliteStore(StoreLifecycle):
    """Every session of a service in one transactional SQLite file.

    ``path`` is the database file (created, with parents, on first
    open); ``durability`` and ``flush_every`` are documented in the
    module docstring.  The store is also usable as a context manager::

        with SqliteStore(tmp / "pods.sqlite", durability="batched") as s:
            service = PodService(transducer, db, store=s)
            ...
        # exiting flushed and closed the file
    """

    def __init__(
        self,
        path: str | Path,
        *,
        durability: str = "step",
        flush_every: int = 256,
    ) -> None:
        if durability not in DURABILITY_MODES:
            raise StoreError(
                f"unknown durability {durability!r}: "
                f"choose one of {DURABILITY_MODES}"
            )
        if flush_every < 1:
            raise StoreError(f"flush_every must be >= 1, got {flush_every}")
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self.durability = durability
        self.flush_every = flush_every
        self._lock = threading.RLock()
        # (sql, params) statements not yet committed (batched mode).
        self._pending: list[tuple[str, tuple]] = []
        self._pending_events = 0
        self._closed = False
        try:
            self._conn = sqlite3.connect(
                str(self._path), check_same_thread=False
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(
                "PRAGMA synchronous="
                + ("FULL" if durability == "full" else "NORMAL")
            )
            self._conn.executescript(_SCHEMA)
            self._conn.commit()
        except sqlite3.Error as error:
            raise StoreError(
                f"cannot open SQLite store at {self._path}: {error}"
            ) from error
        if durability == "batched":
            # A SIGTERM or plain interpreter exit must not lose the
            # write-behind buffer of a store nobody close()d: register
            # for the module's exit-time drain.
            _install_exit_hooks()
            _OPEN_BATCHED.add(self)

    @property
    def path(self) -> Path:
        """The database file (exposed for inspection)."""
        return self._path

    # -- internal plumbing -----------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError(f"SQLite store at {self._path} is closed")

    def _execute(self, statements: list[tuple[str, tuple]]) -> None:
        """Apply one event's statements per the durability mode.

        Called with the lock held.  ``full``/``step`` commit
        immediately; ``batched`` buffers and commits on threshold.
        """
        if self.durability == "batched":
            self._pending.extend(statements)
            self._pending_events += 1
            if self._pending_events >= self.flush_every:
                self._flush_locked()
            return
        try:
            for sql, params in statements:
                self._conn.execute(sql, params)
            self._conn.commit()
        except sqlite3.Error as error:
            self._conn.rollback()
            raise StoreError(f"SQLite write failed: {error}") from error

    def _flush_locked(self) -> int:
        if not self._pending:
            return 0
        try:
            for sql, params in self._pending:
                self._conn.execute(sql, params)
            self._conn.commit()
        except sqlite3.Error as error:
            self._conn.rollback()
            raise StoreError(f"SQLite flush failed: {error}") from error
        flushed = self._pending_events
        self._pending.clear()
        self._pending_events = 0
        return flushed

    # -- the SessionStore recording seam ---------------------------------------

    def record_created(self, session_id: str) -> None:
        self._check_open()
        with self._lock:
            # Recreating an id truncates its history, exactly as the
            # JSONL store truncates the event file.
            self._execute([
                ("DELETE FROM events WHERE session_id = ?", (session_id,)),
                (
                    "INSERT OR REPLACE INTO snapshots "
                    "(session_id, steps, state) VALUES (?, 0, NULL)",
                    (session_id,),
                ),
            ])

    def record_step(self, session_id, steps, state, log_entry) -> None:
        self._check_open()
        # Encode outside the lock: instances are immutable, and the
        # JSON encoding dominates the per-event cost.
        state_json = json.dumps(
            _encode_facts(facts_of(state)), sort_keys=True
        )
        statements = [
            (
                "UPDATE snapshots SET steps = ?, state = ? "
                "WHERE session_id = ?",
                (steps, state_json, session_id),
            ),
        ]
        if log_entry is not None:
            log_json = json.dumps(
                _encode_facts(facts_of(log_entry)), sort_keys=True
            )
            statements.append((
                "INSERT OR REPLACE INTO events (session_id, step, log) "
                "VALUES (?, ?, ?)",
                (session_id, steps, log_json),
            ))
        with self._lock:
            self._execute(statements)

    def record_closed(self, session_id: str) -> None:
        self._check_open()
        with self._lock:
            # Closed sessions are dropped outright (no tombstone): the
            # API only requires that they stop being resumable, and
            # rows, unlike the JSONL store's files, are free to delete.
            self._execute([
                ("DELETE FROM events WHERE session_id = ?", (session_id,)),
                ("DELETE FROM snapshots WHERE session_id = ?", (session_id,)),
            ])

    def import_snapshot(self, snapshot: SessionSnapshot) -> None:
        """Adopt a session from another store (plain-facts form)."""
        self._check_open()
        if self.load(snapshot.session_id) is not None:
            raise SessionError(
                f"session already exists: {snapshot.session_id!r}"
            )
        state_json = json.dumps(
            _encode_facts(snapshot.state_facts), sort_keys=True
        )
        statements = [(
            "INSERT INTO snapshots (session_id, steps, state) "
            "VALUES (?, ?, ?)",
            (snapshot.session_id, snapshot.steps, state_json),
        )]
        for step, entry in enumerate(snapshot.log_facts, start=1):
            statements.append((
                "INSERT INTO events (session_id, step, log) VALUES (?, ?, ?)",
                (
                    snapshot.session_id,
                    step,
                    json.dumps(_encode_facts(entry), sort_keys=True),
                ),
            ))
        with self._lock:
            self._execute(statements)

    # -- reads (always read-your-writes) ---------------------------------------

    def load(self, session_id: str) -> SessionSnapshot | None:
        self._check_open()
        with self._lock:
            self._flush_locked()
            row = self._conn.execute(
                "SELECT steps, state FROM snapshots WHERE session_id = ?",
                (session_id,),
            ).fetchone()
            if row is None:
                return None
            steps, state_json = row
            log_rows = self._conn.execute(
                "SELECT log FROM events WHERE session_id = ? ORDER BY step",
                (session_id,),
            ).fetchall()
        state_facts = (
            _decode_facts(json.loads(state_json))
            if state_json is not None
            else {}
        )
        return SessionSnapshot(
            session_id,
            steps,
            state_facts,
            tuple(_decode_facts(json.loads(log)) for (log,) in log_rows),
        )

    def session_ids(self) -> list[str]:
        self._check_open()
        with self._lock:
            self._flush_locked()
            rows = self._conn.execute(
                "SELECT session_id FROM snapshots ORDER BY session_id"
            ).fetchall()
        return [session_id for (session_id,) in rows]

    # -- lifecycle -------------------------------------------------------------

    def flush(self) -> int:
        """Commit all buffered events; returns how many were pending."""
        self._check_open()
        with self._lock:
            return self._flush_locked()

    def close(self) -> None:
        """Flush and close the database file; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            self._closed = True
            self._conn.close()
        _OPEN_BATCHED.discard(self)

    def __del__(self) -> None:
        # Best-effort drain for a store garbage-collected before exit
        # (the exit hooks hold only weak references, so GC would
        # otherwise silently drop a pending write-behind buffer).
        try:
            self.close()
        except Exception:
            pass

    def stats(self) -> StoreStats:
        """``events`` counts snapshot rows plus log rows; closed
        sessions are deleted outright, so ``sessions`` equals
        ``open_sessions`` for this backend."""
        self._check_open()
        with self._lock:
            self._flush_locked()
            # Checkpoint so bytes_on_disk reflects the database file,
            # not an arbitrarily long WAL tail.
            self._conn.execute("PRAGMA wal_checkpoint(PASSIVE)")
            (sessions,) = self._conn.execute(
                "SELECT COUNT(*) FROM snapshots"
            ).fetchone()
            (log_rows,) = self._conn.execute(
                "SELECT COUNT(*) FROM events"
            ).fetchone()
        bytes_on_disk = 0
        for suffix in ("", "-wal", "-shm"):
            sibling = Path(str(self._path) + suffix)
            if sibling.exists():
                bytes_on_disk += sibling.stat().st_size
        return StoreStats(
            sessions=sessions,
            open_sessions=sessions,
            bytes_on_disk=bytes_on_disk,
            events=sessions + log_rows,
        )
