"""The pod services: the runtime's public API.

A :class:`PodService` owns one transducer, one shared (indexed)
database, and a set of sessions -- pods -- addressed by
:class:`~repro.pods.api.SessionHandle`.  All traffic enters through
:meth:`~PodService.submit` / :meth:`~PodService.submit_batch`; the
convenience drivers (``run_session``, ``drive``) are thin clients over
that path, so every future cross-cutting concern (persistence today,
async fan-out or admission control tomorrow) has a single choke point.

Persistence is delegated to a :class:`~repro.pods.store.SessionStore`:
the service writes every lifecycle event through the store and lazily
restores sessions from it, so a service recreated over a durable store
transparently resumes sessions created by a previous process.

Residency is bounded by an :class:`~repro.pods.cache.LruSessionCache`
(``max_resident_sessions=``, or :data:`~repro.pods.cache.MAX_RESIDENT_ENV`
from the environment): because every step is written through to the
store before its result is returned, evicting an idle session is just
dropping the in-memory :class:`~repro.pods.session.Session` -- nothing
to write -- and the next :class:`~repro.pods.api.StepRequest` for it
rehydrates from the store through the same restore path a process
restart uses.  Logs, snapshots, and outputs are identical whether a
session was evicted zero or N times; sessions are pinned in the cache
for the duration of a step so concurrent batch workers never evict a
session mid-step.

A :class:`ShardedPodService` presents the same API over N internal
single-shard services, hash-routing each session id with a *stable*
hash (:func:`shard_of`, CRC-32), so the same id lands on the same shard
in every process, every run.  Shards share the database instance -- and
therefore the transducer's cached hash indexes -- but nothing else;
splitting them across real processes is pure deployment.

Concurrency: ``submit_batch(requests, concurrency=N)`` steps the batch
on a worker pool.  Requests are grouped by session id, each session's
subsequence runs in order on exactly one worker, and results come back
in request order -- so per-session semantics (and persisted snapshots)
are identical to serial execution, which stays the byte-identical
default (``concurrency=1``).  Sessions share only read-only state (the
indexed database store, the compiled physical plan); everything
mutable is either per-session (stepped by one worker at a time) or
internally locked (metrics, the session map, store writes, audit
findings).  On a sharded service the same grouping applies: a session's
group is by construction a subset of one shard's slice of the batch,
so the pool fans each shard's slice out without ever racing a shard's
per-session state.
"""

from __future__ import annotations

import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

if TYPE_CHECKING:
    from repro.verify.api.auditor import OnlineAuditor

from repro.config import env_int
from repro.core.transducer import InputLike, RelationalTransducer
from repro.errors import AuditViolation, SessionError, ShardError
from repro.pods.api import (
    SessionHandle,
    SessionSnapshot,
    StepRequest,
    StepResult,
    session_id_of,
)
from repro.pods.cache import LruSessionCache
from repro.pods.cache import max_resident_sessions as _resolve_max_resident
from repro.pods.metrics import RuntimeMetrics
from repro.pods.session import Session, SessionLog
from repro.pods.store import SessionStore, open_store
from repro.relalg.instance import Instance

_ID_ALLOWED = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def _check_session_id(session_id: str) -> str:
    """Validate a caller-supplied id (it doubles as a file name)."""
    if (
        not isinstance(session_id, str)
        or not session_id
        or not set(session_id) <= _ID_ALLOWED
    ):
        raise SessionError(
            f"invalid session id {session_id!r}: need a non-empty string "
            "of letters, digits, '.', '_' or '-'"
        )
    return session_id


def _fresh_session_id(prefix, counter, exists):
    """Next ``<prefix>-NNNNNN`` id not claimed per ``exists``.

    Returns (id, next counter) so callers keep their numbering dense
    across calls even when ids collide with caller-supplied ones.
    """
    while True:
        candidate = f"{prefix}-{counter:06d}"
        counter += 1
        if not exists(candidate):
            return candidate, counter


#: Environment override for the default batch concurrency: when
#: ``submit_batch`` is called without an explicit ``concurrency``, this
#: variable (an integer >= 1) supplies it.  CI runs the whole test
#: suite once with ``REPRO_BATCH_CONCURRENCY=4`` so every batch-shaped
#: code path is exercised through the worker pool.
CONCURRENCY_ENV = "REPRO_BATCH_CONCURRENCY"


def batch_concurrency(concurrency: "int | None" = None) -> int:
    """Resolve a ``submit_batch`` concurrency argument.

    ``None`` falls back to :data:`CONCURRENCY_ENV` (parsed by the
    shared :func:`repro.config.env_int` helper), then to 1 (serial).
    Anything below 1 -- explicit or from the environment -- raises
    :class:`~repro.errors.SessionError`.
    """
    if concurrency is None:
        concurrency = env_int(CONCURRENCY_ENV, default=1, minimum=1)
    if concurrency < 1:
        raise SessionError(
            f"batch concurrency must be >= 1, got {concurrency}"
        )
    return concurrency


def shard_of(session_id: str, shards: int) -> int:
    """The shard a session id routes to: stable across processes.

    CRC-32 rather than ``hash()`` because Python string hashing is
    salted per process; routing must agree between the process that
    created a session and the one that resumes it.
    """
    if shards < 1:
        raise ShardError(f"shard count must be >= 1, got {shards}")
    return zlib.crc32(session_id.encode("utf-8")) % shards


class _PodApi:
    """The traffic methods every pod service offers over ``submit()``."""

    def submit(self, request: StepRequest) -> StepResult:
        raise NotImplementedError

    def submit_batch(
        self,
        requests: Iterable[StepRequest],
        *,
        concurrency: "int | None" = None,
    ) -> list[StepResult]:
        """Advance many sessions; results align with the requests.

        Sessions may appear multiple times.  ``concurrency=1`` (the
        default, or via :data:`CONCURRENCY_ENV`) executes the batch
        serially in the given order.  ``concurrency=N`` groups the
        requests by session id and dispatches each session's
        subsequence -- in order, on a single worker -- to a pool of up
        to N threads; because sessions share only read-only state, the
        per-session results, logs, and persisted snapshots are
        identical to serial execution, and the returned list is in
        request order either way.

        If a strict auditor raises :class:`~repro.errors.AuditViolation`
        mid-batch, the already-completed results are attached to the
        exception as ``partial_results`` (request-aligned, ``None`` for
        requests that did not complete) so callers can reconcile with
        the store -- the violating step itself *was* applied and
        persisted.  Under concurrency, each session's completed results
        still form a prefix of that session's subsequence.
        """
        requests = list(requests)
        concurrency = batch_concurrency(concurrency)
        if concurrency == 1 or len(requests) <= 1:
            return self._submit_serial(requests)
        return self._submit_concurrent(requests, concurrency)

    def _submit_serial(
        self, requests: Sequence[StepRequest]
    ) -> list[StepResult]:
        results: "list[StepResult | None]" = [None] * len(requests)
        try:
            for index, request in enumerate(requests):
                results[index] = self.submit(request)
        except AuditViolation as violation:
            violation.partial_results = tuple(results)
            raise
        return results  # fully populated: no request failed

    def _submit_concurrent(
        self, requests: Sequence[StepRequest], concurrency: int
    ) -> list[StepResult]:
        # Group by session id, preserving each session's request order.
        # One group runs on one worker, so a session's steps (and its
        # store writes and audit observations) never race themselves.
        groups: dict[str, list[int]] = {}
        for index, request in enumerate(requests):
            groups.setdefault(
                session_id_of(request.session), []
            ).append(index)
        if len(groups) == 1:
            # One session = one worker executing the serial schedule;
            # skip the pool (run_session under an env-set concurrency
            # would otherwise pay pool setup per call for nothing).
            return self._submit_serial(requests)
        results: "list[StepResult | None]" = [None] * len(requests)

        def run_group(indices: list[int]) -> None:
            for index in indices:
                results[index] = self.submit(requests[index])

        with ThreadPoolExecutor(
            max_workers=min(concurrency, len(groups)),
            thread_name_prefix="pod-batch",
        ) as pool:
            futures = [
                pool.submit(run_group, indices)
                for indices in groups.values()
            ]
        # The pool context waited for every group: a failing group stops
        # at its failing request, the others run to completion.
        errors = [
            exc
            for exc in (future.exception() for future in futures)
            if exc is not None
        ]
        if errors:
            # Deterministic choice: the first failing group in request
            # (= first-appearance) order; audit violations win so their
            # partial results reach the caller.
            violation = next(
                (e for e in errors if isinstance(e, AuditViolation)), None
            )
            if violation is not None:
                violation.partial_results = tuple(results)
                raise violation
            raise errors[0]
        return results  # fully populated: no request failed

    def run_session(
        self,
        session: SessionHandle | str,
        input_sequence: Sequence[InputLike],
    ) -> list[StepResult]:
        """Drive one session through a whole input sequence."""
        return self.submit_batch(
            StepRequest(session, inputs) for inputs in input_sequence
        )

    def drive(
        self,
        workload: Mapping[SessionHandle | str, Sequence[InputLike]],
        round_robin: bool = True,
    ) -> None:
        """Consume per-session input sequences, interleaved or not.

        ``round_robin=True`` alternates between sessions step by step
        (the concurrent-traffic shape); ``False`` drains each session
        in turn.  Sessions are visited in session-id order.
        """
        items = sorted(
            workload.items(), key=lambda item: session_id_of(item[0])
        )
        if not round_robin:
            for session, sequence in items:
                self.run_session(session, sequence)
            return
        pending = [
            [session, sequence, 0]
            for session, sequence in items
            if len(sequence) > 0
        ]
        while pending:
            still_pending = []
            for entry in pending:
                session, sequence, position = entry
                self.submit(StepRequest(session, sequence[position]))
                if position + 1 < len(sequence):
                    entry[2] = position + 1
                    still_pending.append(entry)
            pending = still_pending


class PodService(_PodApi):
    """Create, step, persist, and retire sessions over a shared database.

    ``store`` may be a :class:`~repro.pods.store.SessionStore`, a path
    (a directory opens a
    :class:`~repro.pods.store.JsonlDirectoryStore`; a
    ``.sqlite``/``.sqlite3``/``.db`` file opens a
    :class:`~repro.pods.sqlite_store.SqliteStore`), or ``None`` for the
    in-memory store.  ``keep_logs=False`` turns off per-session log
    retention (and log persistence) for load-generation scenarios where
    only throughput matters.

    ``max_resident_sessions`` bounds how many live sessions stay in
    memory at once (``None`` reads
    :data:`~repro.pods.cache.MAX_RESIDENT_ENV`, then defaults to
    unlimited): beyond the bound, least-recently-used idle sessions are
    evicted to the store and transparently rehydrated on their next
    request.  The knob trades a rehydration (one store read plus a step
    context rebuild) against resident memory; observable behavior --
    logs, snapshots, outputs, audit findings -- is unchanged.
    """

    def __init__(
        self,
        transducer: RelationalTransducer,
        database: InputLike,
        *,
        store: "SessionStore | str | None" = None,
        keep_logs: bool = True,
        shard_index: int = 0,
        id_prefix: str = "pod",
        auditor: "OnlineAuditor | None" = None,
        max_resident_sessions: "int | None" = None,
    ) -> None:
        self._transducer = transducer
        self._database = transducer.coerce_database(database)
        # Warm the shared index cache so the first session does not pay
        # for it inside a latency measurement.
        transducer.database_store(self._database)
        self._store = open_store(store)
        self._keep_logs = keep_logs
        self._shard_index = shard_index
        self._id_prefix = id_prefix
        self._sessions = LruSessionCache(
            _resolve_max_resident(max_resident_sessions)
        )
        # Ids this service instance evicted and has not yet rehydrated
        # or closed.  session_ids() unions it with the residents so the
        # set of *open* sessions is residency-independent; session()
        # consults it to count a restore as a rehydration rather than a
        # cross-process resume.
        self._evicted: set[str] = set()
        self._evicted_lock = threading.Lock()
        self._next_id = 0
        # Guards session creation and lazy restore: concurrent batch
        # workers touching distinct sessions must not race the session
        # map or restore the same session twice.  submit() reads the
        # cache lock-free-in-spirit on its hot path (one short cache
        # lock, never the service lock -- see session()).
        self._lock = threading.Lock()
        self.metrics = RuntimeMetrics()
        # Online auditing (repro.verify.api.OnlineAuditor): every step
        # applied through submit() is checked against the attached
        # property specs; see the audit block in submit().
        self._auditor = auditor
        if auditor is not None:
            auditor.bind(transducer, self._database)

    # -- session lifecycle -----------------------------------------------------

    @property
    def database(self) -> Instance:
        return self._database

    @property
    def store(self) -> SessionStore:
        return self._store

    @property
    def shard_index(self) -> int:
        return self._shard_index

    @property
    def auditor(self) -> "OnlineAuditor | None":
        return self._auditor

    @property
    def max_resident_sessions(self) -> "int | None":
        """The residency bound in force (None = unlimited)."""
        return self._sessions.max_resident

    def audit_findings(self, session: "SessionHandle | str | None" = None):
        """Recorded audit findings (empty without an attached auditor)."""
        if self._auditor is None:
            return []
        return self._auditor.findings(
            session_id_of(session) if session is not None else None
        )

    def create_session(self, session_id: str | None = None) -> SessionHandle:
        """Open a new session; returns its handle.

        A caller-supplied id makes the pod addressable across restarts
        (and across the shards of a sharded service); omitted, the
        service generates ``<prefix>-NNNNNN``.
        """
        with self._lock:
            if session_id is None:
                session_id, self._next_id = _fresh_session_id(
                    self._id_prefix, self._next_id, self.has_session
                )
            else:
                _check_session_id(session_id)
                if (
                    session_id in self._sessions
                    or self._store.load(session_id) is not None
                ):
                    raise SessionError(
                        f"session already exists: {session_id!r}"
                    )
            session = Session(
                session_id,
                self._transducer,
                self._database,
                keep_log=self._keep_logs,
            )
            # Publication into the cache comes LAST: session() reads the
            # cache without the service lock, so the moment another
            # thread can see the session (and submit to it) its created
            # record and auditor registration must already exist -- a
            # record_step landing before record_created would corrupt
            # the event file, and an observe_step before registration
            # would silently skip the audit.
            self._store.record_created(session_id)
            if self._auditor is not None:
                self._auditor.register_session(session_id)
            self.metrics.record_session()
            # Plan compile/reuse happened while building the session's
            # step context; later submit() calls record only their delta.
            self.metrics.record_eval(session.eval_counters())
            self._note_evictions(self._sessions.put(session_id, session))
        return SessionHandle(session_id, self._shard_index)

    def create_sessions(self, count: int) -> list[SessionHandle]:
        return [self.create_session() for _ in range(count)]

    def _restore(self, snapshot: SessionSnapshot) -> Session:
        schema = self._transducer.schema
        if snapshot.steps == 0 and not snapshot.state_facts:
            # Stores only snapshot state on the first record_step, so a
            # never-stepped session's snapshot carries no state facts.
            # Its state is S_0 -- which need not be empty for every
            # transducer -- not the all-empty instance.
            state = self._transducer.initial_state()
        else:
            state = Instance(schema.state, snapshot.state_facts)
        if not self._keep_logs:
            # Logging is off in this service; don't retain a restored log.
            log: tuple[Instance, ...] = ()
        elif snapshot.steps != len(snapshot.log_facts):
            # The snapshot was written with keep_logs=False (or is
            # damaged): resuming it with logging on would produce a log
            # silently missing the pre-restart steps.
            raise SessionError(
                f"cannot resume {snapshot.session_id!r} with keep_logs=True:"
                f" the stored snapshot has {len(snapshot.log_facts)} log"
                f" entries for {snapshot.steps} steps (was it recorded with"
                " keep_logs=False?)"
            )
        else:
            log = tuple(
                Instance(schema.log_schema, entry)
                for entry in snapshot.log_facts
            )
        return Session(
            snapshot.session_id,
            self._transducer,
            self._database,
            keep_log=self._keep_logs,
            state=state,
            steps=snapshot.steps,
            log=log,
        )

    def _note_evictions(
        self, evictions: "list[tuple[str, Session]]"
    ) -> None:
        """Bookkeep cache evictions: remember the ids, bump the counter.

        Nothing is written to the store -- submit() already wrote each
        step through before returning, so an idle session's snapshot is
        durable by construction and eviction is purely dropping memory.
        """
        if not evictions:
            return
        with self._evicted_lock:
            for session_id, _session in evictions:
                self._evicted.add(session_id)
        for _ in evictions:
            self.metrics.record_eviction()

    def _restore_into_cache(self, session_id: str, *, pin: bool) -> Session:
        """Rebuild a session from the store (service lock held)."""
        snapshot = self._store.load(session_id)
        if snapshot is None:
            raise SessionError(f"no such session: {session_id!r}")
        restored = self._restore(snapshot)
        with self._evicted_lock:
            rehydration = session_id in self._evicted
            self._evicted.discard(session_id)
        if self._auditor is not None and not self._auditor.is_registered(
            session_id
        ):
            # A cross-process resume: the auditor gets the *stored* log
            # prefix even when this service runs with keep_logs=False,
            # because the prefix is the resume point of every future
            # finding's replay trace.  A rehydration skips this whole
            # block -- the audit (monitors, history, findings) survived
            # the eviction inside the auditor, keyed by session id.
            schema = self._transducer.schema
            self._auditor.register_session(
                session_id,
                steps=snapshot.steps,
                log=tuple(
                    Instance(schema.log_schema, dict(entry))
                    for entry in snapshot.log_facts
                ),
                state=restored.state,
            )
        if rehydration:
            self.metrics.record_rehydration()
        else:
            self.metrics.record_resume()
        self.metrics.record_eval(restored.eval_counters())
        # Published last: cache readers must only see a session whose
        # auditor registration is complete.  pin=True makes the insert
        # atomic with the caller's pin, so another thread's surplus
        # shedding cannot evict the session before its step runs.
        self._note_evictions(
            self._sessions.put(session_id, restored, pin=pin)
        )
        return restored

    def session(self, session: SessionHandle | str) -> Session:
        """The live session for a handle, restoring from the store.

        A session created by a previous service instance over the same
        store -- or evicted by this one's hot-session cache -- is
        rebuilt from its snapshot on first touch; unknown ids raise
        :class:`~repro.errors.SessionError`.  The hot path (a resident
        session) is one cache-lock'd dictionary read; the restore path
        is double-checked under the service lock so concurrent first
        touches rebuild a session exactly once.
        """
        session_id = session_id_of(session)
        live = self._sessions.get(session_id)
        if live is not None:
            return live
        with self._lock:
            live = self._sessions.get(session_id)
            if live is not None:
                return live
            return self._restore_into_cache(session_id, pin=False)

    def _pinned_session(self, session_id: str) -> Session:
        """The live session, pinned against eviction for one step."""
        session = self._sessions.pin(session_id)
        if session is not None:
            return session
        with self._lock:
            session = self._sessions.pin(session_id)
            if session is not None:
                return session
            return self._restore_into_cache(session_id, pin=True)

    def has_session(self, session: SessionHandle | str) -> bool:
        session_id = session_id_of(session)
        return (
            session_id in self._sessions
            or self._store.load(session_id) is not None
        )

    def session_ids(self) -> list[str]:
        """Ids of all open sessions of this service, sorted.

        Residency-independent: an evicted session is still open -- its
        state lives in the store and the next request rehydrates it --
        so it is listed alongside the resident ones.
        """
        with self._evicted_lock:
            open_ids = set(self._evicted)
        open_ids.update(self._sessions.ids())
        return sorted(open_ids)

    def resident_session_ids(self) -> list[str]:
        """Ids of the sessions currently held in memory, sorted."""
        return self._sessions.ids()

    def stored_session_ids(self) -> list[str]:
        """Ids of all resumable sessions known to the store, sorted."""
        return self._store.session_ids()

    def close_session(self, session: SessionHandle | str) -> SessionLog:
        """Retire a session; returns its final log."""
        live = self.session(session)
        session_id = session_id_of(session)
        with self._lock:
            popped = self._sessions.pop(session_id)
            with self._evicted_lock:
                was_evicted = session_id in self._evicted
                self._evicted.discard(session_id)
            # Re-check under the lock: two racing closes must not both
            # succeed.  (The session may legitimately be non-resident
            # here if it was evicted between session() and this lock.)
            if popped is None and not was_evicted:
                raise SessionError(f"no such session: {session_id!r}")
        self._store.record_closed(session_id)
        if self._auditor is not None:
            self._auditor.forget_session(session_id)
        self.metrics.record_close()
        return live.log()

    def flush(self) -> int:
        """Flush the store's write-behind buffer (if it has one).

        Returns how many buffered events were flushed (0 for
        write-through stores).  Stores predating the lifecycle API are
        treated as write-through.
        """
        flush = getattr(self._store, "flush", None)
        flushed = flush() if flush is not None else 0
        self.metrics.record_flush()
        return flushed

    def close(self) -> None:
        """Release the service: flush and close its store.

        The shutdown hook of the process-level pod server -- a worker
        embedding a :class:`PodService` calls this once on graceful
        exit so a write-behind store drains before the process dies.
        Open sessions are *not* closed (they stay resumable from the
        store); the service must not be used afterwards.  Stores
        predating the lifecycle API (no ``close``) are left untouched.
        """
        close = getattr(self._store, "close", None)
        if close is not None:
            close()

    # -- traffic ---------------------------------------------------------------

    def submit(self, request: StepRequest) -> StepResult:
        """Advance one session by one input instance.

        The single entry point of the runtime: every driver above
        (``submit_batch``, ``run_session``, ``drive``, the commerce
        workload generator, the legacy engine shim) funnels through
        here, and the store write-through happens here.  The session is
        pinned in the hot-session cache for the duration of the step
        (rehydrating it first if it was evicted), so concurrent batch
        workers shedding cache surplus can never drop a session whose
        step -- or step write-through, or audit -- is still in flight.
        """
        session_id = session_id_of(request.session)
        session = self._pinned_session(session_id)
        try:
            before = session.eval_counters()
            state_before = session.state
            started = time.perf_counter()
            output = session.step(request.inputs)
            elapsed = time.perf_counter() - started
            self.metrics.record_step(elapsed)
            self.metrics.record_eval(session.eval_counters() - before)
            self._store.record_step(
                session.session_id,
                session.steps,
                session.state,
                session.last_log_entry if self._keep_logs else None,
            )
            result = StepResult(
                session=SessionHandle(session.session_id, self._shard_index),
                step=session.steps,
                output=output,
                latency_seconds=elapsed,
            )
            if self._auditor is not None:
                # The audit runs after the step is applied and persisted:
                # an audit is a judgment on what happened, not admission
                # control, so even a strict auditor never leaves the store
                # and the session disagreeing about the step count.
                outcome = self._auditor.observe_step(
                    session.session_id,
                    step=session.steps,
                    inputs=session.last_inputs,
                    output=output,
                    state_before=state_before,
                    state_after=session.state,
                    log_entry=(
                        session.last_log_entry if self._keep_logs else None
                    ),
                )
                self.metrics.record_audit(outcome)
                if self._auditor.strict and outcome.findings:
                    raise AuditViolation(
                        f"session {session.session_id!r} "
                        f"step {session.steps}: "
                        + "; ".join(f.violation for f in outcome.findings),
                        findings=outcome.findings,
                    )
        finally:
            # Unpinning may shed cache surplus deferred while every
            # entry was pinned.
            self._note_evictions(self._sessions.unpin(session_id))
        return result

    def logs(self) -> list[SessionLog]:
        """Logs of all open sessions, ordered by session id.

        Covers evicted sessions too (rehydrating each on touch), so the
        view is independent of cache pressure.
        """
        return [
            self.session(session_id).log()
            for session_id in self.session_ids()
        ]


class ShardedPodService(_PodApi):
    """The PodService API hash-routed across N internal shards.

    Each shard is a full :class:`PodService`; a session id is owned by
    shard ``shard_of(id, shards)`` forever.  ``store_factory`` maps a
    shard index to that shard's store (e.g. one JSONL directory per
    shard); by default every shard gets its own in-memory store.

    ``metrics`` is the merged, service-wide view; per-shard counters
    stay available through :meth:`shard`.
    """

    def __init__(
        self,
        transducer: RelationalTransducer,
        database: InputLike,
        shards: int = 4,
        *,
        keep_logs: bool = True,
        store_factory: "Callable[[int], SessionStore | str | None] | None" = None,
        id_prefix: str = "pod",
        auditor_factory: "Callable[[int], OnlineAuditor | None] | None" = None,
        max_resident_sessions: "int | None" = None,
    ) -> None:
        if shards < 1:
            raise ShardError(f"shard count must be >= 1, got {shards}")
        # Coerce once so all shards share one database instance and
        # therefore one cached FactStore in the transducer.
        shared = transducer.coerce_database(database)
        # The residency bound is per shard (each shard's cache is its
        # own working set); resolve once so every shard agrees even if
        # the environment changes mid-construction.
        resident = _resolve_max_resident(max_resident_sessions)
        self._shards = [
            PodService(
                transducer,
                shared,
                store=store_factory(index) if store_factory else None,
                keep_logs=keep_logs,
                shard_index=index,
                id_prefix=id_prefix,
                auditor=auditor_factory(index) if auditor_factory else None,
                max_resident_sessions=resident if resident else 0,
            )
            for index in range(shards)
        ]
        self._id_prefix = id_prefix
        self._next_id = 0
        self._lock = threading.Lock()  # guards _next_id allocation

    # -- routing ---------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard(self, index: int) -> PodService:
        if not 0 <= index < len(self._shards):
            raise ShardError(
                f"no such shard: {index} (service has {len(self._shards)})"
            )
        return self._shards[index]

    def shard_for(self, session: SessionHandle | str) -> int:
        """The shard index a session routes to; checks stale handles."""
        session_id = session_id_of(session)
        index = shard_of(session_id, len(self._shards))
        if isinstance(session, SessionHandle) and session.shard != index:
            raise ShardError(
                f"handle for {session_id!r} names shard {session.shard}, "
                f"but the id routes to shard {index} of {len(self._shards)}"
            )
        return index

    def _route(self, session: SessionHandle | str) -> PodService:
        return self._shards[self.shard_for(session)]

    # -- session lifecycle -----------------------------------------------------

    @property
    def database(self) -> Instance:
        return self._shards[0].database

    def create_session(self, session_id: str | None = None) -> SessionHandle:
        if session_id is None:
            with self._lock:
                session_id, self._next_id = _fresh_session_id(
                    self._id_prefix, self._next_id, self.has_session
                )
        return self._route(session_id).create_session(session_id)

    def create_sessions(self, count: int) -> list[SessionHandle]:
        return [self.create_session() for _ in range(count)]

    def session(self, session: SessionHandle | str) -> Session:
        return self._route(session).session(session_id_of(session))

    def has_session(self, session: SessionHandle | str) -> bool:
        return self._route(session).has_session(session_id_of(session))

    def session_ids(self) -> list[str]:
        ids: list[str] = []
        for shard in self._shards:
            ids.extend(shard.session_ids())
        return sorted(ids)

    def resident_session_ids(self) -> list[str]:
        ids: list[str] = []
        for shard in self._shards:
            ids.extend(shard.resident_session_ids())
        return sorted(ids)

    def stored_session_ids(self) -> list[str]:
        ids: list[str] = []
        for shard in self._shards:
            ids.extend(shard.stored_session_ids())
        return sorted(ids)

    def close_session(self, session: SessionHandle | str) -> SessionLog:
        return self._route(session).close_session(session_id_of(session))

    def flush(self) -> int:
        """Flush every shard's store; returns total events flushed."""
        return sum(shard.flush() for shard in self._shards)

    def close(self) -> None:
        """Release every shard (flush and close each shard's store)."""
        for shard in self._shards:
            shard.close()

    # -- traffic ---------------------------------------------------------------

    def submit(self, request: StepRequest) -> StepResult:
        return self._route(request.session).submit(request)

    def logs(self) -> list[SessionLog]:
        collected: list[SessionLog] = []
        for shard in self._shards:
            collected.extend(shard.logs())
        return sorted(collected, key=lambda log: str(log.session_id))

    def audit_findings(self, session: "SessionHandle | str | None" = None):
        """Audit findings across all shards, (session, step)-ordered."""
        if session is not None:
            return self._route(session).audit_findings(session)
        collected = []
        for shard in self._shards:
            collected.extend(shard.audit_findings())
        return sorted(collected, key=lambda f: (f.session_id, f.step))

    # -- metrics ---------------------------------------------------------------

    @property
    def metrics(self) -> RuntimeMetrics:
        """Service-wide counters, merged across shards (computed fresh)."""
        return RuntimeMetrics.merged(shard.metrics for shard in self._shards)

    def shard_metrics(self) -> list[RuntimeMetrics]:
        return [shard.metrics for shard in self._shards]
