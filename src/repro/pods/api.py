"""Typed request/response objects of the PodService API.

The runtime's first public surface (PR 1's :class:`MultiSessionEngine`)
addressed sessions by bare ints and returned ad-hoc tuples.  This module
replaces that vocabulary with small value objects:

* a :class:`SessionHandle` names a session by a stable string id plus
  the shard it lives on -- the address of a pod, valid across service
  restarts (the id, not the handle object, is what persists);
* a :class:`StepRequest` is one unit of traffic: "advance this session
  by this input instance";
* a :class:`StepResult` is the service's reply: the output instance,
  the session's step counter after the step, and the measured latency;
* a :class:`SessionSnapshot` is the persistence-format view of a
  session -- plain fact dictionaries, no live objects -- exchanged with
  :class:`~repro.pods.store.SessionStore` implementations.

Handles are deliberately cheap and immutable: they carry no reference
to the service, so they can be stored, logged, or sent across a process
boundary and resolved later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.transducer import InputLike
    from repro.relalg.instance import Instance


Facts = Mapping[str, frozenset[tuple]]
"""Relation name -> set of tuples; the wire form of an instance."""


@dataclass(frozen=True)
class SessionHandle:
    """The address of one session (pod): a string id and its shard.

    ``shard`` is 0 for a standalone :class:`~repro.pods.service.PodService`;
    a :class:`~repro.pods.service.ShardedPodService` stamps the shard the
    id hash-routes to.  Equality is by value, so handles obtained from
    different service instances over the same store compare equal.
    """

    session_id: str
    shard: int = 0


@dataclass(frozen=True)
class StepRequest:
    """One step of traffic: advance ``session`` by ``inputs``.

    ``session`` may be a handle or a bare session id string; every
    service entry point accepts both.
    """

    session: "SessionHandle | str"
    inputs: "InputLike"


@dataclass(frozen=True)
class StepResult:
    """The reply to one :class:`StepRequest`.

    ``step`` is the session's step counter *after* the step (1-based for
    the first step), matching the paper's numbering of run positions.
    """

    session: SessionHandle
    step: int
    output: "Instance"
    latency_seconds: float


@dataclass(frozen=True)
class SessionSnapshot:
    """A session's persistent state, in plain-facts form.

    ``state_facts`` is the cumulative state after ``steps`` steps;
    ``log_facts`` holds one facts-mapping per logged step (empty when
    the session was run with logging off).  The snapshot carries no
    schemas: the service that restores it supplies them from its
    transducer, so snapshots survive process restarts.
    """

    session_id: str
    steps: int
    state_facts: Facts
    log_facts: tuple[Facts, ...] = ()


def session_id_of(session: SessionHandle | str) -> str:
    """The session id named by a handle or a bare id string."""
    if isinstance(session, SessionHandle):
        return session.session_id
    return session


def facts_of(instance: "Instance | Facts") -> dict[str, frozenset[tuple]]:
    """An instance's relations as a plain dict (shared frozensets).

    Plain facts mappings pass through (normalized to frozenset rows),
    so store ``record_step`` paths -- which all funnel through this
    function -- accept either a live instance or the wire form.  The
    audit ledger leans on that: it persists findings as synthetic log
    entries that never were instances.
    """
    if isinstance(instance, Mapping):
        return {
            str(name): frozenset(tuple(row) for row in rows)
            for name, rows in instance.items()
        }
    return {name: instance[name] for name in instance.schema.names}
