"""Throughput and latency counters for the pod runtime.

Pure bookkeeping: a service reports session creations, resumes,
completed steps, and per-step wall-clock durations; the metrics object
aggregates them into the counters the capacity benchmarks (E16/E17)
read.  All derived rates are computed against the service's total
elapsed time, so they are end-to-end numbers, not per-call averages.

:meth:`RuntimeMetrics.merged` folds the per-shard counters of a
:class:`~repro.pods.service.ShardedPodService` into one service-wide
view: counts add, latency extremes combine, and the elapsed clock spans
from the earliest shard start.

Accumulation is thread-safe: every ``record_*`` method updates its
counters under an internal lock, so the workers of a concurrent
``submit_batch`` (and any caller threads submitting directly) never
lose increments to read-modify-write races.  Reads (:meth:`snapshot`,
the derived rates, :meth:`merged`) are lock-free -- they read plain
ints/floats, each of which is updated atomically under the lock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.relalg.interning import interned_constants

if TYPE_CHECKING:
    from repro.datalog.plan import EvalCounters


@dataclass
class RuntimeMetrics:
    """Aggregated counters of one pod service (or engine shim).

    The ``plans_*`` / ``*_rule_evals`` / ``*_skipped`` / ``*_hits``
    fields aggregate the per-session
    :class:`~repro.datalog.plan.physical.EvalCounters` the service
    collects around every submit: how many physical plans were compiled
    vs reused, and how much per-step work the incremental executor
    turned into delta joins, outright skips, or static-cache hits.
    ``kernels_compiled`` / ``kernel_hits`` / ``replans_avoided`` do the
    same for the hot-path machinery -- compiled rule kernels built vs
    reused and join orders served from the per-rule memo (see
    :mod:`repro.datalog.plan.kernels`).
    """

    sessions_created: int = 0
    sessions_resumed: int = 0
    sessions_closed: int = 0
    sessions_evicted: int = 0
    sessions_rehydrated: int = 0
    store_flushes: int = 0
    steps_executed: int = 0
    step_seconds_total: float = 0.0
    step_seconds_min: float = field(default=float("inf"))
    step_seconds_max: float = 0.0
    plans_compiled: int = 0
    plan_cache_hits: int = 0
    full_rule_evals: int = 0
    delta_rule_evals: int = 0
    delta_rules_skipped: int = 0
    static_cache_hits: int = 0
    kernels_compiled: int = 0
    kernel_hits: int = 0
    replans_avoided: int = 0
    audited_steps: int = 0
    audit_checks: int = 0
    audit_violations: int = 0
    started_at: float = field(default_factory=time.perf_counter)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_session(self) -> None:
        with self._lock:
            self.sessions_created += 1

    def record_resume(self) -> None:
        with self._lock:
            self.sessions_resumed += 1

    def record_close(self) -> None:
        with self._lock:
            self.sessions_closed += 1

    def record_eviction(self) -> None:
        """A resident session was evicted to the store (LRU cache)."""
        with self._lock:
            self.sessions_evicted += 1

    def record_rehydration(self) -> None:
        """An evicted session was restored on its next request."""
        with self._lock:
            self.sessions_rehydrated += 1

    def record_flush(self) -> None:
        """An explicit store flush was requested through the service."""
        with self._lock:
            self.store_flushes += 1

    def record_step(self, seconds: float) -> None:
        with self._lock:
            self.steps_executed += 1
            self.step_seconds_total += seconds
            if seconds < self.step_seconds_min:
                self.step_seconds_min = seconds
            if seconds > self.step_seconds_max:
                self.step_seconds_max = seconds

    def record_eval(self, counters: "EvalCounters") -> None:
        """Fold one session's plan/evaluation counter delta in."""
        with self._lock:
            self.plans_compiled += counters.plans_compiled
            self.plan_cache_hits += counters.plan_cache_hits
            self.full_rule_evals += counters.full_rule_evals
            self.delta_rule_evals += counters.delta_rule_evals
            self.delta_rules_skipped += counters.delta_rules_skipped
            self.static_cache_hits += counters.static_cache_hits
            self.kernels_compiled += counters.kernels_compiled
            self.kernel_hits += counters.kernel_hits
            self.replans_avoided += counters.replans_avoided

    def record_audit(self, outcome) -> None:
        """Fold one audited step's outcome in.

        ``outcome`` is an :class:`~repro.verify.api.auditor.AuditOutcome`
        (duck-typed to keep :mod:`repro.pods` import-free of the verify
        layer): spec checks and violations count into the audit
        counters, and the monitors' plan/evaluation work folds into the
        same ``plans_*`` / ``*_rule_evals`` counters as session
        stepping -- audit joins are ordinary plan executions.
        """
        with self._lock:
            self.audited_steps += 1
            self.audit_checks += outcome.checks
            self.audit_violations += len(outcome.findings)
        self.record_eval(outcome.eval_delta)

    # -- aggregation -----------------------------------------------------------

    @classmethod
    def merged(cls, parts: Iterable["RuntimeMetrics"]) -> "RuntimeMetrics":
        """One metrics object summarizing ``parts`` (e.g. all shards)."""
        parts = list(parts)
        total = cls()
        if parts:
            total.started_at = min(p.started_at for p in parts)
        for p in parts:
            total.sessions_created += p.sessions_created
            total.sessions_resumed += p.sessions_resumed
            total.sessions_closed += p.sessions_closed
            total.sessions_evicted += p.sessions_evicted
            total.sessions_rehydrated += p.sessions_rehydrated
            total.store_flushes += p.store_flushes
            total.steps_executed += p.steps_executed
            total.step_seconds_total += p.step_seconds_total
            total.plans_compiled += p.plans_compiled
            total.plan_cache_hits += p.plan_cache_hits
            total.full_rule_evals += p.full_rule_evals
            total.delta_rule_evals += p.delta_rule_evals
            total.delta_rules_skipped += p.delta_rules_skipped
            total.static_cache_hits += p.static_cache_hits
            total.kernels_compiled += p.kernels_compiled
            total.kernel_hits += p.kernel_hits
            total.replans_avoided += p.replans_avoided
            total.audited_steps += p.audited_steps
            total.audit_checks += p.audit_checks
            total.audit_violations += p.audit_violations
            if p.step_seconds_min < total.step_seconds_min:
                total.step_seconds_min = p.step_seconds_min
            if p.step_seconds_max > total.step_seconds_max:
                total.step_seconds_max = p.step_seconds_max
        return total

    # -- derived rates ---------------------------------------------------------

    def elapsed(self) -> float:
        return time.perf_counter() - self.started_at

    def steps_per_second(self) -> float:
        elapsed = self.elapsed()
        return self.steps_executed / elapsed if elapsed > 0 else 0.0

    def sessions_per_second(self) -> float:
        elapsed = self.elapsed()
        return self.sessions_created / elapsed if elapsed > 0 else 0.0

    def mean_step_latency(self) -> float:
        if not self.steps_executed:
            return 0.0
        return self.step_seconds_total / self.steps_executed

    def snapshot(self) -> dict:
        """A JSON-ready, deterministic-key summary of the counters.

        ``interned_constants`` is a process-wide gauge (the live size of
        the storage layer's constant pool), read at snapshot time rather
        than accumulated; merges report the largest observed pool (see
        :func:`merge_snapshots` -- summing a gauge would double-count
        whenever two snapshots come from the same process).
        """
        return {
            "sessions_created": self.sessions_created,
            "sessions_resumed": self.sessions_resumed,
            "sessions_closed": self.sessions_closed,
            "sessions_evicted": self.sessions_evicted,
            "sessions_rehydrated": self.sessions_rehydrated,
            "store_flushes": self.store_flushes,
            "steps_executed": self.steps_executed,
            "step_seconds_total": round(self.step_seconds_total, 9),
            "elapsed_seconds": round(self.elapsed(), 6),
            "steps_per_second": round(self.steps_per_second(), 3),
            "sessions_per_second": round(self.sessions_per_second(), 3),
            "mean_step_latency_seconds": round(self.mean_step_latency(), 9),
            "min_step_latency_seconds": (
                round(self.step_seconds_min, 9)
                if self.steps_executed
                else 0.0
            ),
            "max_step_latency_seconds": round(self.step_seconds_max, 9),
            "plans_compiled": self.plans_compiled,
            "plan_cache_hits": self.plan_cache_hits,
            "full_rule_evals": self.full_rule_evals,
            "delta_rule_evals": self.delta_rule_evals,
            "delta_rules_skipped": self.delta_rules_skipped,
            "static_cache_hits": self.static_cache_hits,
            "kernels_compiled": self.kernels_compiled,
            "kernel_hits": self.kernel_hits,
            "replans_avoided": self.replans_avoided,
            "interned_constants": interned_constants(),
            "audited_steps": self.audited_steps,
            "audit_checks": self.audit_checks,
            "audit_violations": self.audit_violations,
        }


#: snapshot() keys that accumulate by summation when merging.
_SUMMED_KEYS = (
    "sessions_created",
    "sessions_resumed",
    "sessions_closed",
    "sessions_evicted",
    "sessions_rehydrated",
    "store_flushes",
    "steps_executed",
    "step_seconds_total",
    "plans_compiled",
    "plan_cache_hits",
    "full_rule_evals",
    "delta_rule_evals",
    "delta_rules_skipped",
    "static_cache_hits",
    "kernels_compiled",
    "kernel_hits",
    "replans_avoided",
    "audited_steps",
    "audit_checks",
    "audit_violations",
)

#: snapshot() keys that are point-in-time gauges: merging takes the max
#: (summing would double-count whenever two snapshots observe the same
#: process's pool -- successive snapshots, or threads of one worker).
_GAUGE_KEYS = ("interned_constants",)


def merge_snapshots(snapshots) -> dict:
    """Fold per-worker :meth:`RuntimeMetrics.snapshot` dicts into one.

    The process-level pod server's counterpart of
    :meth:`RuntimeMetrics.merged`: worker processes can only ship the
    JSON-ready snapshot dict across the wire, not the live metrics
    object, so the front-end merges at the dict level -- counts add,
    gauges take their max, latency extremes combine, the elapsed clock
    is the widest worker's (workers start together, so wall-clock rates
    stay end-to-end), and the derived rates are recomputed from the
    merged totals.  Snapshot keys a worker does not report (older wire
    versions) count as zero.
    """
    snapshots = list(snapshots)
    merged: dict = {key: 0 for key in _SUMMED_KEYS}
    for snapshot in snapshots:
        for key in _SUMMED_KEYS:
            merged[key] += snapshot.get(key, 0)
    for key in _GAUGE_KEYS:
        merged[key] = max((s.get(key, 0) for s in snapshots), default=0)
    merged["step_seconds_total"] = round(merged["step_seconds_total"], 9)
    elapsed = max(
        (s.get("elapsed_seconds", 0.0) for s in snapshots), default=0.0
    )
    steps = merged["steps_executed"]
    mins = [
        s["min_step_latency_seconds"]
        for s in snapshots
        if s.get("steps_executed") and "min_step_latency_seconds" in s
    ]
    merged["elapsed_seconds"] = elapsed
    merged["steps_per_second"] = (
        round(steps / elapsed, 3) if elapsed > 0 else 0.0
    )
    merged["sessions_per_second"] = (
        round(merged["sessions_created"] / elapsed, 3) if elapsed > 0 else 0.0
    )
    merged["mean_step_latency_seconds"] = (
        round(merged["step_seconds_total"] / steps, 9) if steps else 0.0
    )
    merged["min_step_latency_seconds"] = min(mins) if mins else 0.0
    merged["max_step_latency_seconds"] = max(
        (s.get("max_step_latency_seconds", 0.0) for s in snapshots),
        default=0.0,
    )
    return merged
