"""Session persistence: the durability seam of the pod runtime.

A :class:`SessionStore` receives every lifecycle event of every session
(:meth:`record_created`, :meth:`record_step`, :meth:`record_closed`)
and can reproduce any live session as a
:class:`~repro.pods.api.SessionSnapshot`.  Two implementations:

* :class:`InMemoryStore` keeps snapshots in process memory -- the
  behavior of the PR 1 engine, plus the ability to hand a session from
  one service instance to another inside the same process;
* :class:`JsonlDirectoryStore` appends one JSON line per event to a
  per-session file, so a service can be killed at any step boundary,
  recreated over the same directory, and resume every session exactly
  where it stopped -- the byoda data-pod shape: the pod's state outlives
  the serving process.

The JSONL format stores relation facts as sorted lists of rows; values
must be JSON-representable (the repro domain uses strings and numbers).
Rows round-trip back to tuples (nested sequences included) on load.

Both stores serialize their writes per session: record events for one
session are applied atomically and in call order even when they arrive
from different threads (the workers of a concurrent ``submit_batch``
own disjoint sessions, but nothing stops callers from submitting the
same session from their own threads -- the store stays consistent
either way; *ordering* across racing writers of one session remains the
caller's contract).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Mapping, Protocol, TYPE_CHECKING, runtime_checkable

from repro.errors import SessionError
from repro.pods.api import Facts, SessionSnapshot, facts_of

if TYPE_CHECKING:
    from repro.relalg.instance import Instance


@runtime_checkable
class SessionStore(Protocol):
    """Where session state lives between (and across) service instances.

    :meth:`record_step` receives the live (immutable) instances, so a
    store decides for itself when to pay for serialization: the
    in-memory store just keeps references on the hot path, the JSONL
    store encodes eagerly.  ``log_entry`` is ``None`` when the service
    runs with logging off; stores then persist only state and step
    count, and restored sessions resume with an empty log (matching
    ``keep_logs=False`` semantics).
    """

    def record_created(self, session_id: str) -> None:
        """A fresh session was opened (state S_0, step 0)."""
        ...

    def record_step(
        self,
        session_id: str,
        steps: int,
        state: "Instance",
        log_entry: "Instance | None",
    ) -> None:
        """A session advanced one step to ``steps`` total."""
        ...

    def record_closed(self, session_id: str) -> None:
        """A session was retired; it must no longer be resumable."""
        ...

    def load(self, session_id: str) -> SessionSnapshot | None:
        """The snapshot of a resumable session, or ``None``."""
        ...

    def session_ids(self) -> list[str]:
        """Sorted ids of all resumable sessions."""
        ...


class InMemoryStore:
    """Process-local snapshots; no durability across restarts.

    This is "today's behavior" from PR 1: sessions exist only while the
    serving process lives.  Per-step bookkeeping is two assignments and
    a list append of references to the instances the session already
    holds (instances are immutable, so sharing is safe); snapshots are
    materialized into plain facts only on :meth:`load`.
    """

    def __init__(self) -> None:
        # session id -> [steps, state instance or None, log instances]
        self._records: dict[str, list] = {}
        # One lock serializes all record mutations: the per-event work
        # is two assignments and an append, so finer-grained locking
        # would buy nothing.
        self._lock = threading.Lock()

    def record_created(self, session_id: str) -> None:
        with self._lock:
            self._records[session_id] = [0, None, []]

    def record_step(
        self,
        session_id: str,
        steps: int,
        state: "Instance",
        log_entry: "Instance | None",
    ) -> None:
        with self._lock:
            record = self._records[session_id]
            record[0] = steps
            record[1] = state
            if log_entry is not None:
                record[2].append(log_entry)

    def record_closed(self, session_id: str) -> None:
        with self._lock:
            self._records.pop(session_id, None)

    def import_snapshot(self, snapshot: SessionSnapshot) -> None:
        """Adopt a session from another store (plain-facts form)."""
        with self._lock:
            if snapshot.session_id in self._records:
                raise SessionError(
                    f"session already exists: {snapshot.session_id!r}"
                )
            self._records[snapshot.session_id] = [
                snapshot.steps,
                dict(snapshot.state_facts),
                [dict(entry) for entry in snapshot.log_facts],
            ]

    @staticmethod
    def _facts(value) -> Facts:
        """Records hold live instances (hot path) or plain facts (import)."""
        if isinstance(value, Mapping):
            return value
        return facts_of(value)

    def load(self, session_id: str) -> SessionSnapshot | None:
        with self._lock:
            record = self._records.get(session_id)
            if record is None:
                return None
            steps, state, log = record
            log = list(log)
        return SessionSnapshot(
            session_id,
            steps,
            self._facts(state) if state is not None else {},
            tuple(self._facts(entry) for entry in log),
        )

    def session_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._records)


def _encode_facts(facts: Facts) -> dict[str, list[list]]:
    """Facts as JSON-ready sorted lists (deterministic file contents)."""
    return {
        name: [list(row) for row in sorted(rows, key=repr)]
        for name, rows in sorted(facts.items())
    }


def _decode_row(row: list) -> tuple:
    return tuple(
        _decode_row(value) if isinstance(value, list) else value
        for value in row
    )


def _decode_facts(encoded: dict[str, list[list]]) -> dict[str, frozenset[tuple]]:
    return {
        name: frozenset(_decode_row(row) for row in rows)
        for name, rows in encoded.items()
    }


class JsonlDirectoryStore:
    """One append-only ``<session_id>.jsonl`` event file per session.

    The first line of a file is a ``created`` record; every step appends
    a ``step`` record carrying the *cumulative* state (Spocus state is
    monotone and small) plus that step's log entry; closing appends a
    ``closed`` record, after which the session is no longer resumable
    (recreating the id truncates the file).  :meth:`load` replays the
    file: state and step count come from the last ``step`` (or
    ``snapshot``) record, the log is the concatenation of all entries.

    Because each ``step`` record restates the cumulative state, only the
    last one is load-bearing; on open the store therefore *compacts*
    every session file down to its created record plus one ``snapshot``
    record (last state + step count + the full log), so a long-lived pod
    directory stays O(state + log) instead of O(steps * state).  Pass
    ``compact_on_open=False`` to inspect files as written.
    """

    def __init__(
        self, directory: str | Path, *, compact_on_open: bool = True
    ) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        # Per-session write locks: appends to one session's event file
        # must not interleave mid-line when submitted from threads;
        # distinct sessions write to distinct files and proceed in
        # parallel.  _locks_guard only protects the lock dict itself.
        self._locks: dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        if compact_on_open:
            self.compact()

    def _lock_of(self, session_id: str) -> threading.Lock:
        lock = self._locks.get(session_id)
        if lock is None:
            with self._locks_guard:
                lock = self._locks.setdefault(session_id, threading.Lock())
        return lock

    @property
    def directory(self) -> Path:
        return self._directory

    def path_of(self, session_id: str) -> Path:
        """The event file of one session (exposed for inspection)."""
        return self._directory / f"{session_id}.jsonl"

    def _append(self, session_id: str, record: dict) -> None:
        with self._lock_of(session_id):
            with self.path_of(session_id).open(
                "a", encoding="utf-8"
            ) as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    def record_created(self, session_id: str) -> None:
        record = {"kind": "created", "session_id": session_id, "version": 1}
        with self._lock_of(session_id):
            with self.path_of(session_id).open(
                "w", encoding="utf-8"
            ) as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    def record_step(
        self,
        session_id: str,
        steps: int,
        state: "Instance",
        log_entry: "Instance | None",
    ) -> None:
        self._append(
            session_id,
            {
                "kind": "step",
                "steps": steps,
                "state": _encode_facts(facts_of(state)),
                "log": (
                    _encode_facts(facts_of(log_entry))
                    if log_entry is not None
                    else None
                ),
            },
        )

    def record_closed(self, session_id: str) -> None:
        self._append(session_id, {"kind": "closed"})

    @staticmethod
    def _snapshot_record(snapshot: SessionSnapshot) -> dict:
        """A single record restating a session's whole persistent state."""
        return {
            "kind": "snapshot",
            "steps": snapshot.steps,
            "state": _encode_facts(snapshot.state_facts),
            "logs": [_encode_facts(entry) for entry in snapshot.log_facts],
            "version": 1,
        }

    def import_snapshot(self, snapshot: SessionSnapshot) -> None:
        """Adopt a session from another store (one snapshot record)."""
        if self.load(snapshot.session_id) is not None:
            raise SessionError(
                f"session already exists: {snapshot.session_id!r}"
            )
        self.record_created(snapshot.session_id)
        self._append(snapshot.session_id, self._snapshot_record(snapshot))

    def compact(self) -> int:
        """Fold every multi-record session file into one snapshot line.

        Equivalent by construction: the rewritten file loads to exactly
        the snapshot the original file loads to.  Files already compact
        (at most one state-bearing record) and closed sessions are left
        untouched.  Returns the number of files rewritten.
        """
        # A crash between writing a scratch file and the atomic replace
        # leaves a stale .tmp behind; sweep them before rewriting.
        for stale in self._directory.glob("*.jsonl.tmp"):
            stale.unlink()
        compacted = 0
        for path in sorted(self._directory.glob("*.jsonl")):
            records = []
            with path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        records.append(json.loads(line))
            kinds = [record.get("kind") for record in records]
            if "closed" in kinds:
                continue
            if sum(1 for kind in kinds if kind in ("step", "snapshot")) <= 1:
                continue
            snapshot = self.load(path.stem)
            if snapshot is None:
                continue
            created = next(
                (r for r in records if r.get("kind") == "created"),
                {"kind": "created", "session_id": path.stem, "version": 1},
            )
            scratch = path.with_name(path.name + ".tmp")
            with scratch.open("w", encoding="utf-8") as handle:
                handle.write(json.dumps(created, sort_keys=True) + "\n")
                handle.write(
                    json.dumps(self._snapshot_record(snapshot), sort_keys=True)
                    + "\n"
                )
            scratch.replace(path)
            compacted += 1
        return compacted

    def load(self, session_id: str) -> SessionSnapshot | None:
        path = self.path_of(session_id)
        if not path.exists():
            return None
        steps = 0
        state_facts: dict[str, frozenset[tuple]] = {}
        log_facts: list[Facts] = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.get("kind")
                if kind == "closed":
                    return None
                if kind == "snapshot":
                    steps = record["steps"]
                    state_facts = _decode_facts(record["state"])
                    log_facts = [
                        _decode_facts(entry) for entry in record["logs"]
                    ]
                    continue
                if kind != "step":
                    continue
                steps = record["steps"]
                state_facts = _decode_facts(record["state"])
                if record["log"] is not None:
                    log_facts.append(_decode_facts(record["log"]))
        return SessionSnapshot(session_id, steps, state_facts, tuple(log_facts))

    # Every record is dumped with sort_keys=True and "kind" sorts before
    # every other key this store writes (log/logs/session_id/state/
    # steps/version), so each line starts with its kind marker and
    # resumability is decidable from the raw lines -- no fact decoding.
    _CLOSED_PREFIX = '{"kind": "closed"'

    def _is_resumable(self, path: Path) -> bool:
        """Scan one event file for a ``closed`` record, cheaply.

        Reads lines only (no JSON parsing, no fact decoding) and stops
        at the first ``closed`` marker, making :meth:`session_ids` over
        a large pod directory O(total lines) instead of O(total facts).
        """
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                if line.startswith(self._CLOSED_PREFIX):
                    return False
        return True

    def session_ids(self) -> list[str]:
        ids = []
        for path in sorted(self._directory.glob("*.jsonl")):
            if self._is_resumable(path):
                ids.append(path.stem)
        return ids


def migrate_sessions(
    src_store: SessionStore, dst_store: SessionStore
) -> list[str]:
    """Copy every resumable session of ``src_store`` into ``dst_store``.

    Snapshots travel in their plain-facts wire form, so sessions move
    freely between store implementations (in-memory to JSONL directory
    and back); a service opened over ``dst_store`` resumes them exactly
    where they stopped.  The source is left untouched -- drop or retire
    it once the destination is live.  Raises
    :class:`~repro.errors.SessionError` if the destination already knows
    one of the ids (or cannot import snapshots); returns the migrated
    ids in sorted order.
    """
    importer = getattr(dst_store, "import_snapshot", None)
    if importer is None:
        raise SessionError(
            f"destination store {dst_store!r} does not support "
            "import_snapshot"
        )
    source_ids = src_store.session_ids()
    collisions = set(source_ids) & set(dst_store.session_ids())
    if collisions:
        # Refuse before importing anything, so a failed migration never
        # leaves the destination half-populated.
        raise SessionError(
            f"sessions already exist in the destination: "
            f"{sorted(collisions)}"
        )
    migrated: list[str] = []
    for session_id in source_ids:
        snapshot = src_store.load(session_id)
        if snapshot is None:
            continue
        importer(snapshot)
        migrated.append(session_id)
    return migrated


def open_store(target: "SessionStore | str | Path | None") -> SessionStore:
    """Coerce a store argument: None -> in-memory, path -> JSONL dir."""
    if target is None:
        return InMemoryStore()
    if isinstance(target, (str, Path)):
        return JsonlDirectoryStore(target)
    if isinstance(target, SessionStore):
        return target
    raise SessionError(f"not a session store: {target!r}")
