"""Session persistence: the durability seam of the pod runtime.

A :class:`SessionStore` receives every lifecycle event of every session
(:meth:`record_created`, :meth:`record_step`, :meth:`record_closed`)
and can reproduce any live session as a
:class:`~repro.pods.api.SessionSnapshot`.  Three implementations:

* :class:`InMemoryStore` keeps snapshots in process memory -- the
  behavior of the PR 1 engine, plus the ability to hand a session from
  one service instance to another inside the same process;
* :class:`JsonlDirectoryStore` appends one JSON line per event to a
  per-session file, so a service can be killed at any step boundary,
  recreated over the same directory, and resume every session exactly
  where it stopped -- the byoda data-pod shape: the pod's state outlives
  the serving process;
* :class:`~repro.pods.sqlite_store.SqliteStore` keeps every session in
  one transactional SQLite file (events + snapshots tables, WAL mode,
  optional write-behind batching) -- the tier that scales past "one
  file per session".

The JSON wire format stores relation facts as sorted lists of rows;
values must be JSON-representable (the repro domain uses strings and
numbers).  Rows round-trip back to tuples (nested sequences included)
on load.

All stores serialize their writes per session: record events for one
session are applied atomically and in call order even when they arrive
from different threads (the workers of a concurrent ``submit_batch``
own disjoint sessions, but nothing stops callers from submitting the
same session from their own threads -- the store stays consistent
either way; *ordering* across racing writers of one session remains the
caller's contract).

Beyond the recording seam, every store is a managed resource: it
exposes :meth:`~StoreLifecycle.flush` (drain any write-behind buffer;
returns the number of events persisted), :meth:`~StoreLifecycle.close`
(flush and release the backend), works as a context manager, and
reports a typed :class:`StoreStats`.  Stores predating this surface
(the bare five-method protocol) are still accepted by
:func:`open_store` with a one-per-process DeprecationWarning.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Protocol, TYPE_CHECKING, runtime_checkable

from repro.errors import SessionError, StoreError
from repro.pods.api import Facts, SessionSnapshot, facts_of
from repro.verify.deprecation import warn_once

if TYPE_CHECKING:
    from repro.relalg.instance import Instance


@dataclass(frozen=True)
class StoreStats:
    """A store's size, as the capacity benchmarks read it.

    ``sessions`` counts every session the backend still holds data for
    (closed-but-retained files included, where the backend retains
    them); ``open_sessions`` counts the resumable ones;
    ``bytes_on_disk`` is the backend's current on-disk footprint (0 for
    in-memory); ``events`` is the number of persisted event records --
    each backend documents its own notion (in-memory: created + steps
    retained; JSONL: total lines; SQLite: snapshot rows + log rows).
    """

    sessions: int = 0
    open_sessions: int = 0
    bytes_on_disk: int = 0
    events: int = 0


@dataclass(frozen=True)
class MigrationReport:
    """What :func:`migrate_sessions` did, per session.

    ``migrated`` holds the ids now live in the destination; ``skipped``
    the ids that vanished between listing and loading (e.g. closed by a
    concurrent service); ``errors`` maps ids to the message of the
    :class:`~repro.errors.SessionError` their import raised.  For the
    PR 2 call shape (``migrate_sessions(...) == ["alice", ...]``) the
    report still compares, iterates, and measures like the bare list of
    migrated ids, with a one-per-process DeprecationWarning.
    """

    migrated: tuple[str, ...] = ()
    skipped: tuple[str, ...] = ()
    errors: tuple[tuple[str, str], ...] = ()

    def _as_list(self, shape: str) -> list[str]:
        warn_once(
            "pods.migration-report-as-list",
            f"{shape} a MigrationReport as a bare id list is deprecated; "
            "read report.migrated (and report.skipped / report.errors) "
            "instead",
            stacklevel=4,
        )
        return list(self.migrated)

    def __iter__(self) -> Iterator[str]:
        return iter(self._as_list("iterating"))

    def __len__(self) -> int:
        return len(self._as_list("len() over"))

    def __contains__(self, session_id: object) -> bool:
        return session_id in self._as_list("membership-testing")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MigrationReport):
            return (
                self.migrated == other.migrated
                and self.skipped == other.skipped
                and self.errors == other.errors
            )
        if isinstance(other, (list, tuple)):
            return self._as_list("comparing") == list(other)
        return NotImplemented

    __hash__ = None  # list-comparable, so unhashable like a list


@runtime_checkable
class LegacySessionStore(Protocol):
    """The PR 2 storage seam: the five recording/loading methods.

    Stores implementing only this surface still work everywhere (the
    service duck-types the lifecycle extensions), but
    :func:`open_store` warns once per process -- implement
    :class:`SessionStore`, most easily by inheriting
    :class:`StoreLifecycle`.
    """

    def record_created(self, session_id: str) -> None:
        """A fresh session was opened (state S_0, step 0)."""
        ...

    def record_step(
        self,
        session_id: str,
        steps: int,
        state: "Instance",
        log_entry: "Instance | None",
    ) -> None:
        """A session advanced one step to ``steps`` total."""
        ...

    def record_closed(self, session_id: str) -> None:
        """A session was retired; it must no longer be resumable."""
        ...

    def load(self, session_id: str) -> SessionSnapshot | None:
        """The snapshot of a resumable session, or ``None``."""
        ...

    def session_ids(self) -> list[str]:
        """Sorted ids of all resumable sessions."""
        ...


@runtime_checkable
class SessionStore(LegacySessionStore, Protocol):
    """Where session state lives between (and across) service instances.

    :meth:`record_step` receives the live (immutable) instances, so a
    store decides for itself when to pay for serialization: the
    in-memory store just keeps references on the hot path, the JSONL
    store encodes eagerly, the SQLite store encodes eagerly but may
    defer the commit (write-behind).  ``log_entry`` is ``None`` when
    the service runs with logging off; stores then persist only state
    and step count, and restored sessions resume with an empty log
    (matching ``keep_logs=False`` semantics).

    On top of the recording seam, a store is a managed resource:
    :meth:`flush` makes every buffered event durable (returns how many
    it persisted), :meth:`close` flushes and releases the backend, and
    :meth:`stats` reports a typed :class:`StoreStats`.
    """

    def flush(self) -> int:
        """Persist buffered events; returns the number flushed."""
        ...

    def close(self) -> None:
        """Flush and release the backend; the store is unusable after."""
        ...

    def stats(self) -> StoreStats:
        """The store's current size as a :class:`StoreStats`."""
        ...


class StoreLifecycle:
    """Default lifecycle surface shared by the concrete stores.

    Write-through stores inherit the no-op :meth:`flush` and
    :meth:`close`; every store gets the context-manager protocol for
    free (``with open_store(path) as store: ...`` closes on exit).
    Subclasses override :meth:`stats` (the default reports an empty
    store) and whichever lifecycle methods their backend needs.
    """

    def flush(self) -> int:
        """Persist buffered events; write-through stores have none."""
        return 0

    def close(self) -> None:
        """Flush and release the backend (no-op by default)."""
        self.flush()

    def stats(self) -> StoreStats:
        return StoreStats()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class InMemoryStore(StoreLifecycle):
    """Process-local snapshots; no durability across restarts.

    This is "today's behavior" from PR 1: sessions exist only while the
    serving process lives.  Per-step bookkeeping is two assignments and
    a list append of references to the instances the session already
    holds (instances are immutable, so sharing is safe); snapshots are
    materialized into plain facts only on :meth:`load`.
    """

    def __init__(self) -> None:
        # session id -> [steps, state instance or None, log instances]
        self._records: dict[str, list] = {}
        # One lock serializes all record mutations: the per-event work
        # is two assignments and an append, so finer-grained locking
        # would buy nothing.
        self._lock = threading.Lock()

    def record_created(self, session_id: str) -> None:
        with self._lock:
            self._records[session_id] = [0, None, []]

    def stats(self) -> StoreStats:
        """``events`` counts retained records: one created per session
        plus its current step count (closed sessions are dropped
        outright, so they no longer contribute)."""
        with self._lock:
            sessions = len(self._records)
            events = sum(1 + record[0] for record in self._records.values())
        return StoreStats(
            sessions=sessions,
            open_sessions=sessions,
            bytes_on_disk=0,
            events=events,
        )

    def record_step(
        self,
        session_id: str,
        steps: int,
        state: "Instance",
        log_entry: "Instance | None",
    ) -> None:
        with self._lock:
            record = self._records[session_id]
            record[0] = steps
            record[1] = state
            if log_entry is not None:
                record[2].append(log_entry)

    def record_closed(self, session_id: str) -> None:
        with self._lock:
            self._records.pop(session_id, None)

    def import_snapshot(self, snapshot: SessionSnapshot) -> None:
        """Adopt a session from another store (plain-facts form)."""
        with self._lock:
            if snapshot.session_id in self._records:
                raise SessionError(
                    f"session already exists: {snapshot.session_id!r}"
                )
            self._records[snapshot.session_id] = [
                snapshot.steps,
                dict(snapshot.state_facts),
                [dict(entry) for entry in snapshot.log_facts],
            ]

    @staticmethod
    def _facts(value) -> Facts:
        """Records hold live instances (hot path) or plain facts (import)."""
        if isinstance(value, Mapping):
            return value
        return facts_of(value)

    def load(self, session_id: str) -> SessionSnapshot | None:
        with self._lock:
            record = self._records.get(session_id)
            if record is None:
                return None
            steps, state, log = record
            log = list(log)
        return SessionSnapshot(
            session_id,
            steps,
            self._facts(state) if state is not None else {},
            tuple(self._facts(entry) for entry in log),
        )

    def session_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._records)


def encode_facts(facts: Facts) -> dict[str, list[list]]:
    """Facts as JSON-ready sorted lists (deterministic file contents).

    The one fact codec of the runtime: the JSONL and SQLite stores
    persist through it, and the pod server's wire format
    (:mod:`repro.server.wire`) reuses it verbatim, so a fact's bytes
    are identical in an event file, a SQLite row, and an HTTP body.
    """
    return {
        name: [list(row) for row in sorted(rows, key=repr)]
        for name, rows in sorted(facts.items())
    }


def _decode_row(row: list) -> tuple:
    return tuple(
        _decode_row(value) if isinstance(value, list) else value
        for value in row
    )


def decode_facts(encoded: dict[str, list[list]]) -> dict[str, frozenset[tuple]]:
    """Inverse of :func:`encode_facts`: rows back to (nested) tuples."""
    return {
        name: frozenset(_decode_row(row) for row in rows)
        for name, rows in encoded.items()
    }


# Original (pre-server) private names, kept for in-repo callers.
_encode_facts = encode_facts
_decode_facts = decode_facts


class JsonlDirectoryStore(StoreLifecycle):
    """One append-only ``<session_id>.jsonl`` event file per session.

    The first line of a file is a ``created`` record; every step appends
    a ``step`` record carrying the *cumulative* state (Spocus state is
    monotone and small) plus that step's log entry; closing appends a
    ``closed`` record, after which the session is no longer resumable
    (recreating the id truncates the file).  :meth:`load` replays the
    file: state and step count come from the last ``step`` (or
    ``snapshot``) record, the log is the concatenation of all entries.

    Because each ``step`` record restates the cumulative state, only the
    last one is load-bearing; on open the store therefore *compacts*
    every session file down to its created record plus one ``snapshot``
    record (last state + step count + the full log), so a long-lived pod
    directory stays O(state + log) instead of O(steps * state).  Pass
    ``compact_on_open=False`` to inspect files as written.
    """

    def __init__(
        self, directory: str | Path, *, compact_on_open: bool = True
    ) -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        # Per-session write locks: appends to one session's event file
        # must not interleave mid-line when submitted from threads;
        # distinct sessions write to distinct files and proceed in
        # parallel.  _locks_guard only protects the lock dict itself.
        self._locks: dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()
        if compact_on_open:
            self.compact()

    def _lock_of(self, session_id: str) -> threading.Lock:
        lock = self._locks.get(session_id)
        if lock is None:
            with self._locks_guard:
                lock = self._locks.setdefault(session_id, threading.Lock())
        return lock

    @property
    def directory(self) -> Path:
        return self._directory

    def path_of(self, session_id: str) -> Path:
        """The event file of one session (exposed for inspection)."""
        return self._directory / f"{session_id}.jsonl"

    def _append(self, session_id: str, record: dict) -> None:
        with self._lock_of(session_id):
            with self.path_of(session_id).open(
                "a", encoding="utf-8"
            ) as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    def record_created(self, session_id: str) -> None:
        record = {"kind": "created", "session_id": session_id, "version": 1}
        with self._lock_of(session_id):
            with self.path_of(session_id).open(
                "w", encoding="utf-8"
            ) as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")

    def record_step(
        self,
        session_id: str,
        steps: int,
        state: "Instance",
        log_entry: "Instance | None",
    ) -> None:
        self._append(
            session_id,
            {
                "kind": "step",
                "steps": steps,
                "state": _encode_facts(facts_of(state)),
                "log": (
                    _encode_facts(facts_of(log_entry))
                    if log_entry is not None
                    else None
                ),
            },
        )

    def record_closed(self, session_id: str) -> None:
        self._append(session_id, {"kind": "closed"})

    @staticmethod
    def _snapshot_record(snapshot: SessionSnapshot) -> dict:
        """A single record restating a session's whole persistent state."""
        return {
            "kind": "snapshot",
            "steps": snapshot.steps,
            "state": _encode_facts(snapshot.state_facts),
            "logs": [_encode_facts(entry) for entry in snapshot.log_facts],
            "version": 1,
        }

    def import_snapshot(self, snapshot: SessionSnapshot) -> None:
        """Adopt a session from another store (one snapshot record)."""
        if self.load(snapshot.session_id) is not None:
            raise SessionError(
                f"session already exists: {snapshot.session_id!r}"
            )
        self.record_created(snapshot.session_id)
        self._append(snapshot.session_id, self._snapshot_record(snapshot))

    def _fsync_directory(self) -> None:
        """Make a just-completed rename durable (POSIX: fsync the dir).

        Platforms that cannot open a directory for reading (Windows)
        skip the sync -- the rename itself is still atomic there.
        """
        try:
            fd = os.open(self._directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def compact(self) -> int:
        """Fold every multi-record session file into one snapshot line.

        Equivalent by construction: the rewritten file loads to exactly
        the snapshot the original file loads to.  Files already compact
        (at most one state-bearing record) and closed sessions are left
        untouched.  Returns the number of files rewritten.

        Crash-safe: the replacement is written to a ``.tmp`` scratch
        file, fsynced, atomically renamed over the original, and the
        directory entry is fsynced -- at every instant the session's
        path holds either the complete old file or the complete new
        one, so a crash mid-compaction can never lose (or truncate) a
        session's event file.  Stale scratch files from a previous
        crash are swept on entry.
        """
        # A crash between writing a scratch file and the atomic replace
        # leaves a stale .tmp behind; sweep them before rewriting.
        for stale in self._directory.glob("*.jsonl.tmp"):
            stale.unlink()
        compacted = 0
        for path in sorted(self._directory.glob("*.jsonl")):
            # Hold the session's write lock across read-fold-replace so
            # a concurrent append cannot land between the snapshot read
            # and the rename (and be silently dropped by it).
            with self._lock_of(path.stem):
                records = []
                with path.open("r", encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if line:
                            records.append(json.loads(line))
                kinds = [record.get("kind") for record in records]
                if "closed" in kinds:
                    continue
                if sum(1 for k in kinds if k in ("step", "snapshot")) <= 1:
                    continue
                snapshot = self._load_unlocked(path.stem)
                if snapshot is None:
                    continue
                created = next(
                    (r for r in records if r.get("kind") == "created"),
                    {"kind": "created", "session_id": path.stem, "version": 1},
                )
                scratch = path.with_name(path.name + ".tmp")
                with scratch.open("w", encoding="utf-8") as handle:
                    handle.write(json.dumps(created, sort_keys=True) + "\n")
                    handle.write(
                        json.dumps(
                            self._snapshot_record(snapshot), sort_keys=True
                        )
                        + "\n"
                    )
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(scratch, path)
                self._fsync_directory()
                compacted += 1
        return compacted

    def load(self, session_id: str) -> SessionSnapshot | None:
        return self._load_unlocked(session_id)

    def _load_unlocked(self, session_id: str) -> SessionSnapshot | None:
        # Reads never take the session lock (appends are whole-line
        # atomic and loads tolerate a final partial view); compact()
        # calls in here while already holding the lock.
        path = self.path_of(session_id)
        if not path.exists():
            return None
        steps = 0
        state_facts: dict[str, frozenset[tuple]] = {}
        log_facts: list[Facts] = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                kind = record.get("kind")
                if kind == "closed":
                    return None
                if kind == "snapshot":
                    steps = record["steps"]
                    state_facts = _decode_facts(record["state"])
                    log_facts = [
                        _decode_facts(entry) for entry in record["logs"]
                    ]
                    continue
                if kind != "step":
                    continue
                steps = record["steps"]
                state_facts = _decode_facts(record["state"])
                if record["log"] is not None:
                    log_facts.append(_decode_facts(record["log"]))
        return SessionSnapshot(session_id, steps, state_facts, tuple(log_facts))

    # Every record is dumped with sort_keys=True and "kind" sorts before
    # every other key this store writes (log/logs/session_id/state/
    # steps/version), so each line starts with its kind marker and
    # resumability is decidable from the raw lines -- no fact decoding.
    _CLOSED_PREFIX = '{"kind": "closed"'

    def _is_resumable(self, path: Path) -> bool:
        """Scan one event file for a ``closed`` record, cheaply.

        Reads lines only (no JSON parsing, no fact decoding) and stops
        at the first ``closed`` marker, making :meth:`session_ids` over
        a large pod directory O(total lines) instead of O(total facts).
        """
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                if line.startswith(self._CLOSED_PREFIX):
                    return False
        return True

    def session_ids(self) -> list[str]:
        ids = []
        for path in sorted(self._directory.glob("*.jsonl")):
            if self._is_resumable(path):
                ids.append(path.stem)
        return ids

    def stats(self) -> StoreStats:
        """``events`` counts event lines across all files; ``sessions``
        counts files (a closed session's file is retained until its id
        is recreated, so it still counts)."""
        sessions = open_sessions = bytes_on_disk = events = 0
        for path in sorted(self._directory.glob("*.jsonl")):
            sessions += 1
            bytes_on_disk += path.stat().st_size
            with path.open("r", encoding="utf-8") as handle:
                closed = False
                for line in handle:
                    if line.strip():
                        events += 1
                    if line.startswith(self._CLOSED_PREFIX):
                        closed = True
            if not closed:
                open_sessions += 1
        return StoreStats(
            sessions=sessions,
            open_sessions=open_sessions,
            bytes_on_disk=bytes_on_disk,
            events=events,
        )


def migrate_sessions(
    src_store: SessionStore, dst_store: SessionStore
) -> MigrationReport:
    """Copy every resumable session of ``src_store`` into ``dst_store``.

    Snapshots travel in their plain-facts wire form, so sessions move
    freely between store implementations (in-memory, JSONL directory,
    SQLite file, and back); a service opened over ``dst_store`` resumes
    them exactly where they stopped.  The source is left untouched --
    drop or retire it once the destination is live.

    Raises :class:`~repro.errors.StoreError` up front if the
    destination already knows one of the ids (or cannot import
    snapshots), so a failed migration never leaves it half-populated.
    Per-session outcomes after that pre-flight are collected instead of
    raised: the returned :class:`MigrationReport` lists the ids
    migrated (sorted), the ids skipped because they vanished from the
    source mid-migration, and any per-session import errors.
    """
    importer = getattr(dst_store, "import_snapshot", None)
    if importer is None:
        raise StoreError(
            f"destination store {dst_store!r} does not support "
            "import_snapshot"
        )
    source_ids = src_store.session_ids()
    collisions = set(source_ids) & set(dst_store.session_ids())
    if collisions:
        raise StoreError(
            f"sessions already exist in the destination: "
            f"{sorted(collisions)}"
        )
    migrated: list[str] = []
    skipped: list[str] = []
    errors: list[tuple[str, str]] = []
    for session_id in source_ids:
        snapshot = src_store.load(session_id)
        if snapshot is None:
            skipped.append(session_id)
            continue
        try:
            importer(snapshot)
        except SessionError as error:
            errors.append((session_id, str(error)))
            continue
        migrated.append(session_id)
    flush = getattr(dst_store, "flush", None)
    if flush is not None:
        # Migrations are rare and load-bearing: make the destination
        # durable before reporting success, whatever its durability knob.
        flush()
    return MigrationReport(
        migrated=tuple(migrated),
        skipped=tuple(skipped),
        errors=tuple(errors),
    )


#: File suffixes that make a path argument open a SQLite store rather
#: than a JSONL directory.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def open_store(target: "SessionStore | str | Path | None") -> SessionStore:
    """Coerce a store argument.

    ``None`` opens an in-memory store; a path with a SQLite suffix
    (:data:`SQLITE_SUFFIXES`) opens a
    :class:`~repro.pods.sqlite_store.SqliteStore`; any other path opens
    a :class:`JsonlDirectoryStore` over that directory.  Store objects
    pass through -- stores implementing only the PR 2 five-method seam
    (no ``flush``/``close``/``stats``) are still accepted, with a
    one-per-process DeprecationWarning.
    """
    if target is None:
        return InMemoryStore()
    if isinstance(target, (str, Path)):
        path = Path(target)
        if path.suffix.lower() in SQLITE_SUFFIXES:
            from repro.pods.sqlite_store import SqliteStore

            return SqliteStore(path)
        return JsonlDirectoryStore(path)
    if isinstance(target, SessionStore):
        return target
    if isinstance(target, LegacySessionStore):
        warn_once(
            "pods.legacy-store-protocol",
            f"{type(target).__name__} implements only the five-method "
            "SessionStore seam; add flush()/close()/stats() (inherit "
            "repro.pods.store.StoreLifecycle) to implement the full "
            "storage API",
        )
        return target
    raise StoreError(f"not a session store: {target!r}")
