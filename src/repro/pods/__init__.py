"""Pod services: the public API of the multi-session runtime.

The paper's transducers model *one* conversation between a customer and
a store.  A deployed store -- the "electronic commerce" setting of
Section 1, or the per-user data pods of the byoda architecture -- runs
many such conversations at once against one shared catalog.  This
package is that runtime's service layer:

* :mod:`repro.pods.api` -- the typed vocabulary
  (:class:`SessionHandle`, :class:`StepRequest`, :class:`StepResult`,
  :class:`SessionSnapshot`);
* :mod:`repro.pods.session` -- one run in progress
  (:class:`Session`), restorable from a snapshot;
* :mod:`repro.pods.store` -- the durability seam
  (:class:`SessionStore`), with in-memory, JSONL-directory, and
  single-file SQLite (:mod:`repro.pods.sqlite_store`) implementations,
  plus :func:`migrate_sessions` to move sessions between them;
* :mod:`repro.pods.cache` -- the hot-session LRU cache bounding how
  many live sessions stay resident (``max_resident_sessions=`` /
  ``REPRO_MAX_RESIDENT``); evicted sessions rehydrate from the store
  on their next request with identical observable behavior;
* :mod:`repro.pods.service` -- :class:`PodService` (one engine) and
  :class:`ShardedPodService` (N engines behind stable hash routing),
  both funneling all traffic through ``submit()`` / ``submit_batch()``;
* :mod:`repro.pods.metrics` -- :class:`RuntimeMetrics` throughput,
  latency, and audit counters, mergeable across shards.

Every step applied through ``submit()`` can additionally be checked by
an attached :class:`~repro.verify.api.OnlineAuditor` (``auditor=`` on
:class:`PodService`, ``auditor_factory=`` on
:class:`ShardedPodService`): property specs are compiled to per-session
incremental monitors, violations become replayable audit findings, and
the audit counters merge into :class:`RuntimeMetrics`.

Sessions are isolated by construction: the only shared objects are the
read-only indexed database and the per-shard metrics.  Stepping
different sessions in any interleaving gives the same per-session runs
as running them back to back (the run semantics of Section 2.2 is a
fold over the session's own inputs) -- and, with a durable store, the
same runs even across a service restart in the middle.  That isolation
is what makes ``submit_batch(requests, concurrency=N)`` safe: the batch
is grouped by session and fanned out to a worker pool, with results,
logs, and snapshots identical to serial execution
(:func:`~repro.pods.service.batch_concurrency` resolves the default
from ``REPRO_BATCH_CONCURRENCY``).

The PR 1 surface (:class:`repro.runtime.MultiSessionEngine`) remains as
a deprecated shim over :class:`PodService`.
"""

from repro.pods.api import (
    SessionHandle,
    SessionSnapshot,
    StepRequest,
    StepResult,
)
from repro.pods.cache import (
    MAX_RESIDENT_ENV,
    LruSessionCache,
    max_resident_sessions,
)
from repro.pods.metrics import RuntimeMetrics, merge_snapshots
from repro.pods.service import (
    CONCURRENCY_ENV,
    PodService,
    ShardedPodService,
    batch_concurrency,
    shard_of,
)
from repro.pods.session import Session, SessionLog
from repro.pods.sqlite_store import SqliteStore
from repro.pods.store import (
    InMemoryStore,
    JsonlDirectoryStore,
    LegacySessionStore,
    MigrationReport,
    SessionStore,
    StoreLifecycle,
    StoreStats,
    migrate_sessions,
    open_store,
)

__all__ = [
    "SessionHandle",
    "SessionSnapshot",
    "StepRequest",
    "StepResult",
    "RuntimeMetrics",
    "merge_snapshots",
    "CONCURRENCY_ENV",
    "MAX_RESIDENT_ENV",
    "LruSessionCache",
    "max_resident_sessions",
    "PodService",
    "ShardedPodService",
    "batch_concurrency",
    "shard_of",
    "Session",
    "SessionLog",
    "SessionStore",
    "LegacySessionStore",
    "StoreLifecycle",
    "StoreStats",
    "MigrationReport",
    "InMemoryStore",
    "JsonlDirectoryStore",
    "SqliteStore",
    "migrate_sessions",
    "open_store",
]
