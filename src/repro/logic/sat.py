"""A DPLL SAT solver with two-watched-literal propagation.

Built from scratch for this library: the BSR decision procedure grounds
Bernays-Schoenfinkel sentences to CNF and this solver decides them.  The
design is classical DPLL with chronological backtracking, two watched
literals per clause for efficient unit propagation, and a
static-frequency branching heuristic with phase saving.  No clause
learning -- groundings in this library's workloads are shallow and wide,
where propagation quality matters much more than learning.

Literals follow the DIMACS convention: variable ``v`` is the positive
literal ``+v`` and its negation ``-v``; variables are numbered from 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass
class Solution:
    """Result of a solver run.

    ``satisfiable`` tells the outcome; ``assignment`` maps every variable
    to a boolean when satisfiable (unconstrained variables default to
    False); ``decisions``, ``propagations`` and ``conflicts`` are search
    statistics used by the scaling benchmarks.
    """

    satisfiable: bool
    assignment: dict[int, bool]
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0


class SatSolver:
    """Decide satisfiability of a CNF clause list."""

    def __init__(self, clauses: Iterable[Sequence[int]], num_vars: int | None = None):
        self._clauses: list[list[int]] = []
        max_var = 0
        self._has_empty = False
        for clause in clauses:
            unique = sorted(set(clause), key=abs)
            if any(-lit in unique for lit in unique):
                continue  # tautology
            if not unique:
                self._has_empty = True
                continue
            for lit in unique:
                max_var = max(max_var, abs(lit))
            self._clauses.append(unique)
        self._num_vars = max(max_var, num_vars or 0)

    def solve(self) -> Solution:
        if self._has_empty:
            return Solution(False, {})
        n = self._num_vars
        # assignment[v] in (None, True, False)
        value: list[bool | None] = [None] * (n + 1)
        phase: list[bool] = [False] * (n + 1)
        # Watched literals: watch_list[lit-index] -> clause indices.
        watch_list: dict[int, list[int]] = {}
        watches: list[list[int]] = []  # per clause, the two watched literals

        def watch(lit: int, clause_index: int) -> None:
            watch_list.setdefault(lit, []).append(clause_index)

        units: list[int] = []
        for index, clause in enumerate(self._clauses):
            if len(clause) == 1:
                watches.append([clause[0], clause[0]])
                units.append(clause[0])
            else:
                watches.append([clause[0], clause[1]])
                watch(clause[0], index)
                watch(clause[1], index)

        # Branching heuristic: static literal frequency.
        frequency = [0] * (n + 1)
        polarity_balance = [0] * (n + 1)
        for clause in self._clauses:
            for lit in clause:
                frequency[abs(lit)] += 1
                polarity_balance[abs(lit)] += 1 if lit > 0 else -1
        order = sorted(
            range(1, n + 1), key=lambda v: -frequency[v]
        )
        for v in range(1, n + 1):
            phase[v] = polarity_balance[v] >= 0

        trail: list[int] = []
        # Decision records: (trail length before decision, decided literal,
        # whether the complement was already tried).
        decisions_stack: list[tuple[int, int, bool]] = []
        stats_decisions = 0
        stats_propagations = 0
        stats_conflicts = 0

        def lit_value(lit: int) -> bool | None:
            v = value[abs(lit)]
            if v is None:
                return None
            return v if lit > 0 else not v

        def assign(lit: int) -> None:
            value[abs(lit)] = lit > 0
            phase[abs(lit)] = lit > 0
            trail.append(lit)

        def propagate(queue: list[int]) -> bool:
            """Assign queued literals and propagate; False on conflict."""
            nonlocal stats_propagations
            for lit in queue:
                current = lit_value(lit)
                if current is False:
                    return False
                if current is None:
                    assign(lit)
            queue = [l for l in queue]
            # Re-scan from the units just placed on the trail.
            pending = list(queue)
            while pending:
                lit = pending.pop()
                stats_propagations += 1
                falsified = -lit
                clause_ids = watch_list.get(falsified)
                if not clause_ids:
                    continue
                still_watching: list[int] = []
                conflict = False
                for position, clause_index in enumerate(clause_ids):
                    clause = self._clauses[clause_index]
                    pair = watches[clause_index]
                    other = pair[0] if pair[1] == falsified else pair[1]
                    if lit_value(other) is True:
                        still_watching.append(clause_index)
                        continue
                    # Find a replacement watch.
                    replacement = None
                    for candidate in clause:
                        if candidate == other or candidate == falsified:
                            continue
                        if lit_value(candidate) is not False:
                            replacement = candidate
                            break
                    if replacement is not None:
                        if pair[0] == falsified:
                            pair[0] = replacement
                        else:
                            pair[1] = replacement
                        watch(replacement, clause_index)
                        continue
                    # No replacement: clause is unit or conflicting.
                    still_watching.append(clause_index)
                    other_value = lit_value(other)
                    if other_value is False:
                        # Keep the unprocessed tail watched before bailing.
                        still_watching.extend(clause_ids[position + 1:])
                        conflict = True
                        break
                    if other_value is None:
                        assign(other)
                        pending.append(other)
                watch_list[falsified] = still_watching
                if conflict:
                    return False
            return True

        # Initial unit propagation.
        initial = []
        seen_units = set()
        for lit in units:
            if -lit in seen_units:
                return Solution(False, {}, conflicts=1)
            if lit not in seen_units:
                seen_units.add(lit)
                initial.append(lit)
        if not propagate(initial):
            return Solution(False, {}, conflicts=1)

        def pick_branch() -> int | None:
            for v in order:
                if value[v] is None:
                    return v if phase[v] else -v
            return None

        while True:
            lit = pick_branch()
            if lit is None:
                assignment = {
                    v: bool(value[v]) if value[v] is not None else False
                    for v in range(1, n + 1)
                }
                return Solution(
                    True,
                    assignment,
                    decisions=stats_decisions,
                    propagations=stats_propagations,
                    conflicts=stats_conflicts,
                )
            stats_decisions += 1
            decisions_stack.append((len(trail), lit, False))
            ok = propagate([lit])
            while not ok:
                stats_conflicts += 1
                # Chronological backtracking with complement flip.
                flipped_lit = None
                while decisions_stack:
                    mark, decided, tried = decisions_stack.pop()
                    while len(trail) > mark:
                        undo = trail.pop()
                        value[abs(undo)] = None
                    if not tried:
                        flipped_lit = -decided
                        decisions_stack.append((mark, flipped_lit, True))
                        break
                if flipped_lit is None:
                    return Solution(
                        False,
                        {},
                        decisions=stats_decisions,
                        propagations=stats_propagations,
                        conflicts=stats_conflicts,
                    )
                ok = propagate([flipped_lit])


def solve_clauses(
    clauses: Iterable[Sequence[int]], num_vars: int | None = None
) -> Solution:
    """One-shot convenience wrapper around :class:`SatSolver`."""
    return SatSolver(clauses, num_vars).solve()


def verify_assignment(
    clauses: Iterable[Sequence[int]], assignment: dict[int, bool]
) -> bool:
    """Check that ``assignment`` satisfies every clause (used in tests)."""

    def lit_true(lit: int) -> bool:
        v = assignment.get(abs(lit), False)
        return v if lit > 0 else not v

    return all(any(lit_true(lit) for lit in clause) for clause in clauses)
