"""First-order formula AST.

Terms are the datalog :class:`~repro.datalog.ast.Variable` and
:class:`~repro.datalog.ast.Constant` (no function symbols -- the
Bernays-Schoenfinkel class forbids them anyway).  Formulas are immutable
trees.  Convenience constructors :func:`conjoin` / :func:`disjoin`
flatten and simplify trivial cases so encoders can be written without
special-casing empty conjunctions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.datalog.ast import Constant, Term, Variable


class Formula:
    """Base class for first-order formulas."""

    def free_variables(self) -> frozenset[Variable]:
        raise NotImplementedError

    def constants(self) -> frozenset:
        raise NotImplementedError

    def substitute(self, binding: Mapping[Variable, Term]) -> "Formula":
        """Simultaneous substitution of terms for free variables.

        Bindings map variables to terms (usually constants); quantified
        occurrences shadow as expected.  Capture cannot occur when all
        substituted terms are constants, which is the only use in this
        library (grounding).
        """
        raise NotImplementedError

    # sugar
    def __and__(self, other: "Formula") -> "Formula":
        return conjoin([self, other])

    def __or__(self, other: "Formula") -> "Formula":
        return disjoin([self, other])

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class Top(Formula):
    """The true constant."""

    def __str__(self) -> str:
        return "⊤"

    def free_variables(self) -> frozenset[Variable]:
        return frozenset()

    def constants(self) -> frozenset:
        return frozenset()

    def substitute(self, binding: Mapping[Variable, Term]) -> Formula:
        return self


@dataclass(frozen=True)
class Bottom(Formula):
    """The false constant."""

    def __str__(self) -> str:
        return "⊥"

    def free_variables(self) -> frozenset[Variable]:
        return frozenset()

    def constants(self) -> frozenset:
        return frozenset()

    def substitute(self, binding: Mapping[Variable, Term]) -> Formula:
        return self


TOP = Top()
BOTTOM = Bottom()


def _term_str(term: Term) -> str:
    return str(term)


@dataclass(frozen=True)
class Rel(Formula):
    """A relational atom ``predicate(t1, ..., tk)``."""

    predicate: str
    terms: tuple[Term, ...] = ()

    def __str__(self) -> str:
        if not self.terms:
            return self.predicate
        return f"{self.predicate}({', '.join(map(_term_str, self.terms))})"

    def free_variables(self) -> frozenset[Variable]:
        return frozenset(t for t in self.terms if isinstance(t, Variable))

    def constants(self) -> frozenset:
        return frozenset(t.value for t in self.terms if isinstance(t, Constant))

    def substitute(self, binding: Mapping[Variable, Term]) -> Formula:
        return Rel(
            self.predicate,
            tuple(binding.get(t, t) if isinstance(t, Variable) else t
                  for t in self.terms),
        )


@dataclass(frozen=True)
class Eq(Formula):
    """The equality atom ``left = right``."""

    left: Term
    right: Term

    def __str__(self) -> str:
        return f"{_term_str(self.left)} = {_term_str(self.right)}"

    def free_variables(self) -> frozenset[Variable]:
        return frozenset(
            t for t in (self.left, self.right) if isinstance(t, Variable)
        )

    def constants(self) -> frozenset:
        return frozenset(
            t.value for t in (self.left, self.right) if isinstance(t, Constant)
        )

    def substitute(self, binding: Mapping[Variable, Term]) -> Formula:
        def sub(t: Term) -> Term:
            return binding.get(t, t) if isinstance(t, Variable) else t

        return Eq(sub(self.left), sub(self.right))


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"¬{self.operand}" if isinstance(
            self.operand, (Rel, Eq, Top, Bottom, Not)
        ) else f"¬({self.operand})"

    def free_variables(self) -> frozenset[Variable]:
        return self.operand.free_variables()

    def constants(self) -> frozenset:
        return self.operand.constants()

    def substitute(self, binding: Mapping[Variable, Term]) -> Formula:
        return Not(self.operand.substitute(binding))


@dataclass(frozen=True)
class And(Formula):
    operands: tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " ∧ ".join(map(str, self.operands)) + ")"

    def free_variables(self) -> frozenset[Variable]:
        out: frozenset[Variable] = frozenset()
        for f in self.operands:
            out |= f.free_variables()
        return out

    def constants(self) -> frozenset:
        out: frozenset = frozenset()
        for f in self.operands:
            out |= f.constants()
        return out

    def substitute(self, binding: Mapping[Variable, Term]) -> Formula:
        return And(tuple(f.substitute(binding) for f in self.operands))


@dataclass(frozen=True)
class Or(Formula):
    operands: tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " ∨ ".join(map(str, self.operands)) + ")"

    def free_variables(self) -> frozenset[Variable]:
        out: frozenset[Variable] = frozenset()
        for f in self.operands:
            out |= f.free_variables()
        return out

    def constants(self) -> frozenset:
        out: frozenset = frozenset()
        for f in self.operands:
            out |= f.constants()
        return out

    def substitute(self, binding: Mapping[Variable, Term]) -> Formula:
        return Or(tuple(f.substitute(binding) for f in self.operands))


@dataclass(frozen=True)
class Implies(Formula):
    antecedent: Formula
    consequent: Formula

    def __str__(self) -> str:
        return f"({self.antecedent} → {self.consequent})"

    def free_variables(self) -> frozenset[Variable]:
        return self.antecedent.free_variables() | self.consequent.free_variables()

    def constants(self) -> frozenset:
        return self.antecedent.constants() | self.consequent.constants()

    def substitute(self, binding: Mapping[Variable, Term]) -> Formula:
        return Implies(
            self.antecedent.substitute(binding),
            self.consequent.substitute(binding),
        )


@dataclass(frozen=True)
class Iff(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} ↔ {self.right})"

    def free_variables(self) -> frozenset[Variable]:
        return self.left.free_variables() | self.right.free_variables()

    def constants(self) -> frozenset:
        return self.left.constants() | self.right.constants()

    def substitute(self, binding: Mapping[Variable, Term]) -> Formula:
        return Iff(self.left.substitute(binding), self.right.substitute(binding))


@dataclass(frozen=True)
class Exists(Formula):
    variables: tuple[Variable, ...]
    body: Formula

    def __str__(self) -> str:
        vars_ = " ".join(f"∃{v}" for v in self.variables)
        return f"{vars_}.({self.body})"

    def free_variables(self) -> frozenset[Variable]:
        return self.body.free_variables() - frozenset(self.variables)

    def constants(self) -> frozenset:
        return self.body.constants()

    def substitute(self, binding: Mapping[Variable, Term]) -> Formula:
        inner = {
            v: t for v, t in binding.items() if v not in self.variables
        }
        return Exists(self.variables, self.body.substitute(inner))


@dataclass(frozen=True)
class Forall(Formula):
    variables: tuple[Variable, ...]
    body: Formula

    def __str__(self) -> str:
        vars_ = " ".join(f"∀{v}" for v in self.variables)
        return f"{vars_}.({self.body})"

    def free_variables(self) -> frozenset[Variable]:
        return self.body.free_variables() - frozenset(self.variables)

    def constants(self) -> frozenset:
        return self.body.constants()

    def substitute(self, binding: Mapping[Variable, Term]) -> Formula:
        inner = {
            v: t for v, t in binding.items() if v not in self.variables
        }
        return Forall(self.variables, self.body.substitute(inner))


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def conjoin(formulas: Iterable[Formula]) -> Formula:
    """N-ary conjunction with flattening and unit simplification."""
    flat: list[Formula] = []
    for f in formulas:
        if isinstance(f, Bottom):
            return BOTTOM
        if isinstance(f, Top):
            continue
        if isinstance(f, And):
            flat.extend(f.operands)
        else:
            flat.append(f)
    if not flat:
        return TOP
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjoin(formulas: Iterable[Formula]) -> Formula:
    """N-ary disjunction with flattening and unit simplification."""
    flat: list[Formula] = []
    for f in formulas:
        if isinstance(f, Top):
            return TOP
        if isinstance(f, Bottom):
            continue
        if isinstance(f, Or):
            flat.extend(f.operands)
        else:
            flat.append(f)
    if not flat:
        return BOTTOM
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def exists(variables: Iterable[Variable], body: Formula) -> Formula:
    """∃ constructor dropping vacuous quantifiers."""
    used = tuple(v for v in variables if v in body.free_variables())
    if not used:
        return body
    return Exists(used, body)


def forall(variables: Iterable[Variable], body: Formula) -> Formula:
    """∀ constructor dropping vacuous quantifiers."""
    used = tuple(v for v in variables if v in body.free_variables())
    if not used:
        return body
    return Forall(used, body)


def iter_subformulas(formula: Formula) -> Iterator[Formula]:
    """Depth-first iterator over all subformulas (including the root)."""
    yield formula
    if isinstance(formula, Not):
        yield from iter_subformulas(formula.operand)
    elif isinstance(formula, (And, Or)):
        for f in formula.operands:
            yield from iter_subformulas(f)
    elif isinstance(formula, Implies):
        yield from iter_subformulas(formula.antecedent)
        yield from iter_subformulas(formula.consequent)
    elif isinstance(formula, Iff):
        yield from iter_subformulas(formula.left)
        yield from iter_subformulas(formula.right)
    elif isinstance(formula, (Exists, Forall)):
        yield from iter_subformulas(formula.body)


def predicates_of(formula: Formula) -> dict[str, int]:
    """Map each predicate occurring in ``formula`` to its arity."""
    out: dict[str, int] = {}
    for sub in iter_subformulas(formula):
        if isinstance(sub, Rel):
            out[sub.predicate] = len(sub.terms)
    return out
