"""Propositional CNF construction (Tseitin transform).

The grounding step of the BSR procedure produces a propositional
formula tree over hashable atom keys.  :class:`CnfBuilder` assigns SAT
variable numbers to atoms and converts formula trees to clause lists
with fresh definition variables so the clause count stays linear in the
tree size.

Propositional trees reuse a tiny node algebra (:class:`PTrue`,
:class:`PFalse`, :class:`PVar`, :class:`PNot`, :class:`PAnd`,
:class:`POr`) rather than the first-order classes, keeping the SAT layer
independent of the FO layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable


class PropFormula:
    """Base class of propositional formula nodes."""


@dataclass(frozen=True)
class PTrue(PropFormula):
    pass


@dataclass(frozen=True)
class PFalse(PropFormula):
    pass


@dataclass(frozen=True)
class PVar(PropFormula):
    key: Hashable


@dataclass(frozen=True)
class PNot(PropFormula):
    operand: PropFormula


@dataclass(frozen=True)
class PAnd(PropFormula):
    operands: tuple[PropFormula, ...]


@dataclass(frozen=True)
class POr(PropFormula):
    operands: tuple[PropFormula, ...]


def pand(operands: Iterable[PropFormula]) -> PropFormula:
    flat: list[PropFormula] = []
    for op in operands:
        if isinstance(op, PFalse):
            return PFalse()
        if isinstance(op, PTrue):
            continue
        if isinstance(op, PAnd):
            flat.extend(op.operands)
        else:
            flat.append(op)
    if not flat:
        return PTrue()
    if len(flat) == 1:
        return flat[0]
    return PAnd(tuple(flat))


def por(operands: Iterable[PropFormula]) -> PropFormula:
    flat: list[PropFormula] = []
    for op in operands:
        if isinstance(op, PTrue):
            return PTrue()
        if isinstance(op, PFalse):
            continue
        if isinstance(op, POr):
            flat.extend(op.operands)
        else:
            flat.append(op)
    if not flat:
        return PFalse()
    if len(flat) == 1:
        return flat[0]
    return POr(tuple(flat))


def pnot(operand: PropFormula) -> PropFormula:
    if isinstance(operand, PTrue):
        return PFalse()
    if isinstance(operand, PFalse):
        return PTrue()
    if isinstance(operand, PNot):
        return operand.operand
    return PNot(operand)


class CnfBuilder:
    """Accumulates CNF clauses over integer literals (DIMACS convention).

    Atoms are arbitrary hashable keys; :meth:`variable` interns them.
    :meth:`add_formula` asserts a propositional formula via the Tseitin
    transform.  :meth:`clauses` returns the clause list for the solver
    and :meth:`decode` converts a model back to a key->bool mapping.
    """

    def __init__(self) -> None:
        self._var_of_key: dict[Hashable, int] = {}
        self._key_of_var: dict[int, Hashable] = {}
        self._next_var = 1
        self._clauses: list[list[int]] = []

    # -- variables --------------------------------------------------------------

    def variable(self, key: Hashable) -> int:
        var = self._var_of_key.get(key)
        if var is None:
            var = self._next_var
            self._next_var += 1
            self._var_of_key[key] = var
            self._key_of_var[var] = key
        return var

    def fresh_variable(self) -> int:
        var = self._next_var
        self._next_var += 1
        return var

    @property
    def variable_count(self) -> int:
        return self._next_var - 1

    @property
    def clause_count(self) -> int:
        return len(self._clauses)

    def clauses(self) -> list[list[int]]:
        return self._clauses

    def key_of(self, var: int) -> Hashable | None:
        return self._key_of_var.get(var)

    # -- clause construction -----------------------------------------------------

    def add_clause(self, literals: Iterable[int]) -> None:
        self._clauses.append(list(literals))

    def add_exactly_one(self, literals: list[int]) -> None:
        """Assert exactly one of ``literals`` (pairwise encoding)."""
        self.add_clause(literals)
        for i in range(len(literals)):
            for j in range(i + 1, len(literals)):
                self.add_clause([-literals[i], -literals[j]])

    def add_formula(self, formula: PropFormula) -> None:
        """Assert ``formula`` via Tseitin definition variables."""
        literal = self._tseitin(formula)
        if literal is None:  # constant
            if isinstance(formula, PFalse) or (
                isinstance(formula, PNot) and isinstance(formula.operand, PTrue)
            ):
                self.add_clause([])  # unsatisfiable
            return
        self.add_clause([literal])

    def _tseitin(self, formula: PropFormula) -> int | None:
        """Return a literal equisatisfiable with ``formula`` (None = ⊤).

        Constants are simplified away by the smart constructors before
        they reach here, but we handle them defensively.
        """
        if isinstance(formula, PTrue):
            return None
        if isinstance(formula, PFalse):
            # Represent ⊥ as a fresh variable forced false.
            var = self.fresh_variable()
            self.add_clause([-var])
            return var
        if isinstance(formula, PVar):
            return self.variable(formula.key)
        if isinstance(formula, PNot):
            inner = self._tseitin(formula.operand)
            if inner is None:
                var = self.fresh_variable()
                self.add_clause([-var])
                return var
            return -inner
        if isinstance(formula, PAnd):
            parts = [self._tseitin(op) for op in formula.operands]
            parts = [p for p in parts if p is not None]
            if not parts:
                return None
            out = self.fresh_variable()
            for p in parts:
                self.add_clause([-out, p])
            self.add_clause([out] + [-p for p in parts])
            return out
        if isinstance(formula, POr):
            parts = [self._tseitin(op) for op in formula.operands]
            if any(p is None for p in parts):
                return None
            out = self.fresh_variable()
            for p in parts:
                self.add_clause([-p, out])
            self.add_clause([-out] + list(parts))
            return out
        raise TypeError(f"unknown propositional node: {formula!r}")

    def decode(self, assignment: dict[int, bool]) -> dict[Hashable, bool]:
        """Map a solver assignment back to atom keys."""
        return {
            key: assignment.get(var, False)
            for key, var in self._var_of_key.items()
        }
