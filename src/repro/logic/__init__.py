"""First-order logic substrate.

The paper's decision procedures all reduce to finite satisfiability of
sentences in the Bernays-Schoenfinkel prefix class (∃*∀*FO with
constants and equality, no function symbols).  This subpackage provides:

* a first-order formula AST (:mod:`repro.logic.fol`) reusing the datalog
  term types;
* prenexing and prefix-class classification (:mod:`repro.logic.prenex`);
* finite structures and a model checker (:mod:`repro.logic.structures`);
* grounding of BSR sentences to propositional logic
  (:mod:`repro.logic.grounding`);
* Tseitin CNF conversion (:mod:`repro.logic.cnf`);
* a from-scratch DPLL SAT solver with watched literals
  (:mod:`repro.logic.sat`);
* the BSR finite-satisfiability decision procedure with model extraction
  (:mod:`repro.logic.bsr`).
"""

from repro.logic.fol import (
    And,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Rel,
    Top,
    conjoin,
    disjoin,
)
from repro.logic.prenex import PrenexSentence, classify_prefix, prenex, rectify, to_nnf
from repro.logic.structures import Structure
from repro.logic.cnf import CnfBuilder
from repro.logic.sat import SatSolver, Solution
from repro.logic.bsr import BsrResult, decide_bsr

__all__ = [
    "Formula",
    "Rel",
    "Eq",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Exists",
    "Forall",
    "Top",
    "Bottom",
    "conjoin",
    "disjoin",
    "prenex",
    "rectify",
    "to_nnf",
    "classify_prefix",
    "PrenexSentence",
    "Structure",
    "CnfBuilder",
    "SatSolver",
    "Solution",
    "decide_bsr",
    "BsrResult",
]
