"""Finite satisfiability for the Bernays-Schoenfinkel class.

Implements the decision procedure underlying every decidability theorem
in the paper.  A sentence ∃x₁…x_k ∀y₁…y_m φ (relational vocabulary,
constants, equality, no functions) is finitely satisfiable iff it has a
model over a domain consisting of the sentence's constants plus at most
k fresh elements (Ramsey 1930; the paper cites this as the basis of
Theorems 3.1-3.5, 4.4 and 4.6).  Under the unique-name assumption the
domain is therefore *fixed*, and satisfiability reduces to propositional
satisfiability:

* each existential variable gets an exactly-one block of *selector*
  variables ranging over the domain;
* universal variables are expanded by instantiation over the domain;
* ground relational atoms become propositional variables;
* equality between domain elements is identity (UNA), and equality
  involving existential variables translates to selector literals.

Grounding is *structural*: the sentence is normalized to NNF and each
``∀`` node is expanded in place, so a conjunction of many independent
∀-sentences (the shape every encoder in :mod:`repro.verify` produces)
costs the *sum* of the per-conjunct expansions rather than the product.
Existential quantifiers are only admitted outside the scope of any
universal -- exactly the Bernays-Schoenfinkel discipline; anything else
raises :class:`~repro.errors.NotInPrefixClassError`.

The resulting propositional formula goes through the Tseitin CNF
builder to the DPLL solver.  On SAT, a finite model is extracted and
(optionally) re-checked with the independent model checker.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.datalog.ast import Constant, Term, Variable
from repro.errors import NotInPrefixClassError, SolverError
from repro.logic.cnf import (
    CnfBuilder,
    PFalse,
    PropFormula,
    PTrue,
    PVar,
    pand,
    pnot,
    por,
)
from repro.logic.fol import (
    And,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Rel,
    Top,
    predicates_of,
)
from repro.logic.prenex import PrenexSentence, prenex, rectify, to_nnf
from repro.logic.sat import SatSolver
from repro.logic.structures import Structure

_FRESH_PREFIX = "@elem"


@dataclass
class GroundingStats:
    """Size statistics for a grounding, reported by the benchmarks."""

    domain_size: int = 0
    existential_count: int = 0
    universal_count: int = 0
    universal_instantiations: int = 0
    cnf_variables: int = 0
    cnf_clauses: int = 0
    sat_decisions: int = 0
    sat_propagations: int = 0
    sat_conflicts: int = 0


@dataclass
class BsrResult:
    """Outcome of :func:`decide_bsr`.

    When satisfiable, ``model`` is a finite structure over the grounding
    domain and ``witnesses`` maps each existential variable (after
    rectification) to its domain element.
    """

    satisfiable: bool
    model: Structure | None = None
    witnesses: dict[Variable, object] = field(default_factory=dict)
    stats: GroundingStats = field(default_factory=GroundingStats)


def _count_quantifiers(formula: Formula) -> tuple[int, int]:
    """(existential, universal) variable counts of an NNF formula."""
    exist = universal = 0
    stack = [formula]
    while stack:
        node = stack.pop()
        if isinstance(node, Exists):
            exist += len(node.variables)
            stack.append(node.body)
        elif isinstance(node, Forall):
            universal += len(node.variables)
            stack.append(node.body)
        elif isinstance(node, (And, Or)):
            stack.extend(node.operands)
        elif isinstance(node, Not):
            stack.append(node.operand)
    return exist, universal


class _StructuralGrounder:
    """Grounds a rectified NNF sentence to a propositional formula."""

    def __init__(self, domain: tuple, budget: int) -> None:
        self.domain = domain
        self.budget = budget
        self.work = 0
        self.existentials: list[Variable] = []
        self.instantiations = 0

    def _spend(self, amount: int = 1) -> None:
        self.work += amount
        if self.work > self.budget:
            raise SolverError(
                f"grounding exceeded work budget ({self.budget}); "
                "the domain or quantifier structure is too large"
            )

    def selector(self, variable: Variable, element: object) -> PropFormula:
        return PVar(("sel", variable.name, element))

    def ground(
        self,
        formula: Formula,
        env: dict[Variable, object],
        free_existentials: set[Variable],
        under_forall: bool,
    ) -> PropFormula:
        self._spend()
        if isinstance(formula, Top):
            return PTrue()
        if isinstance(formula, Bottom):
            return PFalse()
        if isinstance(formula, Rel):
            return self._ground_rel(formula, env, free_existentials)
        if isinstance(formula, Eq):
            return self._ground_eq(formula, env, free_existentials)
        if isinstance(formula, Not):
            return pnot(
                self.ground(formula.operand, env, free_existentials, under_forall)
            )
        if isinstance(formula, And):
            return pand(
                self.ground(f, env, free_existentials, under_forall)
                for f in formula.operands
            )
        if isinstance(formula, Or):
            return por(
                self.ground(f, env, free_existentials, under_forall)
                for f in formula.operands
            )
        if isinstance(formula, Forall):
            parts = []
            count = len(formula.variables)
            for values in itertools.product(self.domain, repeat=count):
                inner = dict(env)
                inner.update(zip(formula.variables, values))
                self.instantiations += 1
                parts.append(
                    self.ground(formula.body, inner, free_existentials, True)
                )
            return pand(parts)
        if isinstance(formula, Exists):
            if under_forall:
                raise NotInPrefixClassError(
                    "existential quantifier inside a universal scope: "
                    "the sentence is outside the Bernays-Schoenfinkel class"
                )
            self.existentials.extend(formula.variables)
            extended = free_existentials | set(formula.variables)
            return self.ground(formula.body, env, extended, False)
        raise SolverError(f"unsupported node after NNF: {formula!r}")

    def _resolve(
        self,
        term: Term,
        env: dict[Variable, object],
        free_existentials: set[Variable],
    ):
        if isinstance(term, Constant):
            return term.value
        if term in env:
            return env[term]
        if term in free_existentials:
            return term
        raise SolverError(f"unbound variable {term} during grounding")

    def _ground_rel(
        self,
        atom: Rel,
        env: dict[Variable, object],
        free_existentials: set[Variable],
    ) -> PropFormula:
        resolved = [
            self._resolve(t, env, free_existentials) for t in atom.terms
        ]
        open_vars = list(
            dict.fromkeys(v for v in resolved if isinstance(v, Variable))
        )
        if not open_vars:
            return PVar(("atom", atom.predicate, tuple(resolved)))
        # Truth of the atom = some selected valuation of its existential
        # variables makes the ground atom true.  Shared selector
        # variables keep multiple occurrences of a variable consistent.
        choices = []
        for values in itertools.product(self.domain, repeat=len(open_vars)):
            self._spend()
            assignment = dict(zip(open_vars, values))
            grounded = tuple(
                assignment[v] if isinstance(v, Variable) else v
                for v in resolved
            )
            parts: list[PropFormula] = [
                self.selector(v, assignment[v]) for v in open_vars
            ]
            parts.append(PVar(("atom", atom.predicate, grounded)))
            choices.append(pand(parts))
        return por(choices)

    def _ground_eq(
        self,
        formula: Eq,
        env: dict[Variable, object],
        free_existentials: set[Variable],
    ) -> PropFormula:
        left = self._resolve(formula.left, env, free_existentials)
        right = self._resolve(formula.right, env, free_existentials)
        left_open = isinstance(left, Variable)
        right_open = isinstance(right, Variable)
        if not left_open and not right_open:
            return PTrue() if left == right else PFalse()
        if left_open and right_open:
            if left == right:
                return PTrue()
            return por(
                pand([self.selector(left, d), self.selector(right, d)])
                for d in self.domain
            )
        variable, element = (left, right) if left_open else (right, left)
        return self.selector(variable, element)


def decide_bsr(
    formula: Formula,
    extra_constants: tuple = (),
    minimum_domain: int = 1,
    max_work: int = 5_000_000,
    verify_model: bool = False,
) -> BsrResult:
    """Decide finite satisfiability of a BSR sentence.

    Parameters
    ----------
    formula:
        A sentence (no free variables).  It is normalized internally;
        an existential quantifier nested inside a universal raises
        :class:`~repro.errors.NotInPrefixClassError`.
    extra_constants:
        Additional domain elements beyond the sentence's own constants
        (e.g. the active domain of a database the sentence talks about).
    minimum_domain:
        Lower bound on the domain size (the small-model bound is
        ``max(1, k + #constants)``; a larger minimum is sound).
    max_work:
        Safety valve on grounding work (number of grounder steps).
    verify_model:
        When True, a found model is re-checked with the independent
        model checker; a discrepancy raises :class:`SolverError`.  The
        test suite turns this on; production callers usually skip the
        exponential recheck.
    """
    if formula.free_variables():
        raise SolverError(
            f"not a sentence; free variables: "
            f"{sorted(v.name for v in formula.free_variables())}"
        )
    normal = rectify(to_nnf(formula))
    k, m = _count_quantifiers(normal)

    constants = tuple(
        sorted(formula.constants() | set(extra_constants), key=repr)
    )
    fresh_needed = max(k, minimum_domain - len(constants), 0)
    if not constants and fresh_needed == 0:
        fresh_needed = 1  # non-empty domain required
    fresh = tuple(f"{_FRESH_PREFIX}{i}" for i in range(fresh_needed))
    domain = constants + fresh

    grounder = _StructuralGrounder(domain, max_work)
    proposition = grounder.ground(normal, {}, set(), False)

    builder = CnfBuilder()
    for variable in grounder.existentials:
        builder.add_exactly_one(
            [builder.variable(("sel", variable.name, d)) for d in domain]
        )
    builder.add_formula(proposition)

    solution = SatSolver(builder.clauses(), builder.variable_count).solve()
    stats = GroundingStats(
        domain_size=len(domain),
        existential_count=k,
        universal_count=m,
        universal_instantiations=grounder.instantiations,
        cnf_variables=builder.variable_count,
        cnf_clauses=builder.clause_count,
        sat_decisions=solution.decisions,
        sat_propagations=solution.propagations,
        sat_conflicts=solution.conflicts,
    )
    if not solution.satisfiable:
        return BsrResult(False, stats=stats)

    truths = builder.decode(solution.assignment)
    relations: dict[str, set[tuple]] = {
        pred: set() for pred in predicates_of(formula)
    }
    witnesses: dict[Variable, object] = {}
    for key, true in truths.items():
        if not true:
            continue
        if key[0] == "atom":
            _, predicate, values = key
            relations.setdefault(predicate, set()).add(values)
        elif key[0] == "sel":
            _, var_name, element = key
            witnesses[Variable(var_name)] = element
    model = Structure.of(domain, relations)
    if verify_model and not model.evaluate(formula):
        raise SolverError(
            "internal error: extracted model does not satisfy the sentence"
        )
    return BsrResult(True, model, witnesses, stats)


def valid_bsr(formula: Formula, **kwargs) -> bool:
    """Check validity of a ∀*∃* sentence by refuting its negation.

    The negation of a ∀*∃* sentence is ∃*∀*, so validity of the former
    is decidable through :func:`decide_bsr`.
    """
    return not decide_bsr(Not(formula), **kwargs).satisfiable


# Re-exported for the scaling benchmarks, which inspect prefixes.
__all__ = [
    "BsrResult",
    "GroundingStats",
    "decide_bsr",
    "valid_bsr",
    "PrenexSentence",
    "prenex",
]
