"""Prenexing and prefix-class classification.

The pipeline is: eliminate ``→``/``↔``, push negations to atoms (negation
normal form), rectify (rename quantified variables apart), then pull
quantifiers to the front.  In NNF the pull is order-preserving and needs
no special rules for implication.  :func:`classify_prefix` then checks
whether the quantifier prefix matches ∃*∀* -- the Bernays-Schoenfinkel
class whose finite satisfiability is decidable (Ramsey 1930; complexity
by Lewis 1980, as cited in the paper).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.datalog.ast import Variable
from repro.errors import NotInPrefixClassError
from repro.logic.fol import (
    And,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Rel,
    Top,
    conjoin,
    disjoin,
)


def eliminate_implications(formula: Formula) -> Formula:
    """Rewrite ``→`` and ``↔`` in terms of ∧, ∨, ¬."""
    if isinstance(formula, (Rel, Eq, Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(eliminate_implications(formula.operand))
    if isinstance(formula, And):
        return conjoin(eliminate_implications(f) for f in formula.operands)
    if isinstance(formula, Or):
        return disjoin(eliminate_implications(f) for f in formula.operands)
    if isinstance(formula, Implies):
        return disjoin(
            [
                Not(eliminate_implications(formula.antecedent)),
                eliminate_implications(formula.consequent),
            ]
        )
    if isinstance(formula, Iff):
        left = eliminate_implications(formula.left)
        right = eliminate_implications(formula.right)
        return conjoin(
            [disjoin([Not(left), right]), disjoin([Not(right), left])]
        )
    if isinstance(formula, Exists):
        return Exists(formula.variables, eliminate_implications(formula.body))
    if isinstance(formula, Forall):
        return Forall(formula.variables, eliminate_implications(formula.body))
    raise TypeError(f"unknown formula node: {formula!r}")


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form (implications eliminated first)."""
    return _nnf(eliminate_implications(formula), positive=True)


def _nnf(formula: Formula, positive: bool) -> Formula:
    if isinstance(formula, (Rel, Eq)):
        return formula if positive else Not(formula)
    if isinstance(formula, Top):
        return formula if positive else Bottom()
    if isinstance(formula, Bottom):
        return formula if positive else Top()
    if isinstance(formula, Not):
        return _nnf(formula.operand, not positive)
    if isinstance(formula, And):
        parts = [_nnf(f, positive) for f in formula.operands]
        return conjoin(parts) if positive else disjoin(parts)
    if isinstance(formula, Or):
        parts = [_nnf(f, positive) for f in formula.operands]
        return disjoin(parts) if positive else conjoin(parts)
    if isinstance(formula, Exists):
        body = _nnf(formula.body, positive)
        return Exists(formula.variables, body) if positive else Forall(
            formula.variables, body
        )
    if isinstance(formula, Forall):
        body = _nnf(formula.body, positive)
        return Forall(formula.variables, body) if positive else Exists(
            formula.variables, body
        )
    raise TypeError(f"unexpected node in NNF pass: {formula!r}")


def rectify(formula: Formula) -> Formula:
    """Rename quantified variables so each is bound exactly once.

    Free variables are never renamed.  The fresh names are ``v#<n>``,
    chosen to avoid every variable occurring anywhere in the input.
    """
    taken = {v.name for v in _all_variables(formula)}
    counter = itertools.count()

    def fresh(base: str) -> Variable:
        while True:
            name = f"{base}#{next(counter)}"
            if name not in taken:
                taken.add(name)
                return Variable(name)

    def walk(f: Formula, renaming: dict[Variable, Variable]) -> Formula:
        if isinstance(f, Rel):
            return Rel(
                f.predicate,
                tuple(
                    renaming.get(t, t) if isinstance(t, Variable) else t
                    for t in f.terms
                ),
            )
        if isinstance(f, Eq):
            def sub(t):
                return renaming.get(t, t) if isinstance(t, Variable) else t

            return Eq(sub(f.left), sub(f.right))
        if isinstance(f, (Top, Bottom)):
            return f
        if isinstance(f, Not):
            return Not(walk(f.operand, renaming))
        if isinstance(f, And):
            return And(tuple(walk(g, renaming) for g in f.operands))
        if isinstance(f, Or):
            return Or(tuple(walk(g, renaming) for g in f.operands))
        if isinstance(f, Implies):
            return Implies(walk(f.antecedent, renaming), walk(f.consequent, renaming))
        if isinstance(f, Iff):
            return Iff(walk(f.left, renaming), walk(f.right, renaming))
        if isinstance(f, (Exists, Forall)):
            new_vars = tuple(fresh(v.name) for v in f.variables)
            inner = dict(renaming)
            inner.update(zip(f.variables, new_vars))
            body = walk(f.body, inner)
            cls = Exists if isinstance(f, Exists) else Forall
            return cls(new_vars, body)
        raise TypeError(f"unknown formula node: {f!r}")

    return walk(formula, {})


def _all_variables(formula: Formula) -> set[Variable]:
    out: set[Variable] = set()

    def walk(f: Formula) -> None:
        if isinstance(f, Rel):
            out.update(t for t in f.terms if isinstance(t, Variable))
        elif isinstance(f, Eq):
            out.update(
                t for t in (f.left, f.right) if isinstance(t, Variable)
            )
        elif isinstance(f, Not):
            walk(f.operand)
        elif isinstance(f, (And, Or)):
            for g in f.operands:
                walk(g)
        elif isinstance(f, Implies):
            walk(f.antecedent)
            walk(f.consequent)
        elif isinstance(f, Iff):
            walk(f.left)
            walk(f.right)
        elif isinstance(f, (Exists, Forall)):
            out.update(f.variables)
            walk(f.body)

    walk(formula)
    return out


@dataclass(frozen=True)
class PrenexSentence:
    """A sentence in prenex normal form.

    ``prefix`` is a sequence of ('exists'|'forall', variable) pairs in
    binding order; ``matrix`` is quantifier-free.
    """

    prefix: tuple[tuple[str, Variable], ...]
    matrix: Formula

    def __str__(self) -> str:
        symbols = {"exists": "∃", "forall": "∀"}
        prefix = " ".join(f"{symbols[kind]}{var}" for kind, var in self.prefix)
        return f"{prefix}.({self.matrix})" if prefix else str(self.matrix)

    def existential_variables(self) -> tuple[Variable, ...]:
        return tuple(v for kind, v in self.prefix if kind == "exists")

    def universal_variables(self) -> tuple[Variable, ...]:
        return tuple(v for kind, v in self.prefix if kind == "forall")


def prenex(formula: Formula) -> PrenexSentence:
    """Convert to prenex normal form (via NNF and rectification).

    After rectification, quantifiers in sibling branches bind independent
    variables, so they may be interleaved freely; only the ancestor order
    along each path is semantically binding.  We exploit this freedom to
    place every existential with no universal ancestor *first*, which
    recovers the Bernays-Schoenfinkel prefix for the conjunctions of
    ∃*FO and ∀*FO sentences produced by the paper's encodings (proof of
    Theorem 3.1).
    """
    normal = rectify(to_nnf(formula))
    front: list[tuple[str, Variable]] = []  # ∃ with no ∀ ancestor
    rest: list[tuple[str, Variable]] = []  # everything else, DFS order

    def pull(f: Formula, under_forall: bool) -> Formula:
        if isinstance(f, Exists):
            target = rest if under_forall else front
            for v in f.variables:
                target.append(("exists", v))
            return pull(f.body, under_forall)
        if isinstance(f, Forall):
            for v in f.variables:
                rest.append(("forall", v))
            return pull(f.body, True)
        if isinstance(f, And):
            return conjoin(pull(g, under_forall) for g in f.operands)
        if isinstance(f, Or):
            return disjoin(pull(g, under_forall) for g in f.operands)
        if isinstance(f, Not):
            # NNF: operand is an atom.
            return f
        return f

    matrix = pull(normal, False)
    return PrenexSentence(tuple(front + rest), matrix)


def classify_prefix(sentence: PrenexSentence) -> str:
    """Classify the quantifier prefix: 'exists*', 'forall*', 'exists*forall*', or 'other'."""
    kinds = [kind for kind, _ in sentence.prefix]
    if all(k == "exists" for k in kinds):
        return "exists*"
    if all(k == "forall" for k in kinds):
        return "forall*"
    switch = kinds.index("forall")
    if all(k == "forall" for k in kinds[switch:]):
        return "exists*forall*"
    return "other"


def require_bsr(sentence: PrenexSentence) -> PrenexSentence:
    """Raise unless the sentence is in the Bernays-Schoenfinkel class.

    Note that pulling quantifiers out of a conjunction can turn an
    encoder-produced conjunction of ∃*FO and ∀*FO sentences into
    ∃*∀*FO, exactly as in the proof of Theorem 3.1.
    """
    if classify_prefix(sentence) == "other":
        raise NotInPrefixClassError(
            f"sentence is not in ∃*∀*FO: prefix "
            f"{''.join(k[0] for k, _ in sentence.prefix)}"
        )
    return sentence
