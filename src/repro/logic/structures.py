"""Finite first-order structures and a model checker.

A :class:`Structure` interprets relation symbols over a finite domain
under the unique-name assumption (constants denote themselves; a
constant appearing in a formula must be an element of the domain).
The model checker evaluates arbitrary FO formulas by exhaustive
quantifier expansion -- exponential in quantifier depth, but the
structures produced by the BSR procedure are tiny, and having an
independent evaluator lets the test suite cross-validate the solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.datalog.ast import Constant, Term, Variable
from repro.errors import SolverError
from repro.logic.fol import (
    And,
    Bottom,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Rel,
    Top,
)


@dataclass
class Structure:
    """A finite relational structure.

    ``domain`` is a finite set of values; ``relations`` maps relation
    names to sets of tuples over the domain.
    """

    domain: frozenset
    relations: dict[str, frozenset[tuple]] = field(default_factory=dict)

    @classmethod
    def of(
        cls,
        domain: Iterable,
        relations: Mapping[str, Iterable[tuple]] | None = None,
    ) -> "Structure":
        dom = frozenset(domain)
        rels: dict[str, frozenset[tuple]] = {}
        if relations:
            for name, rows in relations.items():
                frozen = frozenset(tuple(r) for r in rows)
                for row in frozen:
                    bad = [v for v in row if v not in dom]
                    if bad:
                        raise SolverError(
                            f"tuple {row!r} of {name!r} uses values outside "
                            f"the domain: {bad!r}"
                        )
                rels[name] = frozen
        return cls(dom, rels)

    def tuples(self, predicate: str) -> frozenset[tuple]:
        return self.relations.get(predicate, frozenset())

    def with_relation(self, name: str, rows: Iterable[tuple]) -> "Structure":
        rels = dict(self.relations)
        rels[name] = frozenset(tuple(r) for r in rows)
        return Structure(self.domain, rels)

    # -- evaluation -------------------------------------------------------------

    def _value(self, term: Term, env: Mapping[Variable, object]) -> object:
        if isinstance(term, Constant):
            if term.value not in self.domain:
                raise SolverError(
                    f"constant {term.value!r} is not in the domain"
                )
            return term.value
        if term in env:
            return env[term]
        raise SolverError(f"unbound variable {term} during evaluation")

    def evaluate(
        self, formula: Formula, env: Mapping[Variable, object] | None = None
    ) -> bool:
        """Decide whether the structure satisfies ``formula`` under ``env``."""
        env = dict(env or {})
        return self._eval(formula, env)

    def _eval(self, formula: Formula, env: dict[Variable, object]) -> bool:
        if isinstance(formula, Top):
            return True
        if isinstance(formula, Bottom):
            return False
        if isinstance(formula, Rel):
            row = tuple(self._value(t, env) for t in formula.terms)
            return row in self.tuples(formula.predicate)
        if isinstance(formula, Eq):
            return self._value(formula.left, env) == self._value(
                formula.right, env
            )
        if isinstance(formula, Not):
            return not self._eval(formula.operand, env)
        if isinstance(formula, And):
            return all(self._eval(f, env) for f in formula.operands)
        if isinstance(formula, Or):
            return any(self._eval(f, env) for f in formula.operands)
        if isinstance(formula, Implies):
            return (not self._eval(formula.antecedent, env)) or self._eval(
                formula.consequent, env
            )
        if isinstance(formula, Iff):
            return self._eval(formula.left, env) == self._eval(
                formula.right, env
            )
        if isinstance(formula, Exists):
            return self._eval_quantifier(formula.variables, formula.body, env, any)
        if isinstance(formula, Forall):
            return self._eval_quantifier(formula.variables, formula.body, env, all)
        raise TypeError(f"unknown formula node: {formula!r}")

    def _eval_quantifier(self, variables, body, env, combine) -> bool:
        def assignments(index: int):
            if index == len(variables):
                yield None
                return
            var = variables[index]
            saved = env.get(var, _MISSING)
            for value in self.domain:
                env[var] = value
                yield from assignments(index + 1)
            if saved is _MISSING:
                env.pop(var, None)
            else:
                env[var] = saved

        return combine(self._eval(body, env) for _ in assignments(0))

    def __repr__(self) -> str:
        rels = ", ".join(
            f"{name}({len(rows)})" for name, rows in sorted(self.relations.items())
        )
        return f"Structure(|D|={len(self.domain)}; {rels})"


_MISSING = object()
