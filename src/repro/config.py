"""Validated environment-variable parsing for the runtime knobs.

Every runtime tunable that can come from the environment --
``REPRO_BATCH_CONCURRENCY`` (default ``submit_batch`` fan-out),
``REPRO_MAX_RESIDENT`` (hot-session cache bound), and the
``REPRO_SERVER_*`` family of the process-level pod server -- funnels
through :func:`env_int`, so every knob validates the same way and
misconfiguration fails with the same clear message shape::

    invalid REPRO_BATCH_CONCURRENCY='zero': need an integer >= 1

Errors are raised as :class:`~repro.errors.SessionError` (the lifecycle
error type callers of :mod:`repro.pods` already handle); pass
``error=`` to raise a different type at other call sites.
"""

from __future__ import annotations

import os
from typing import Type

from repro.errors import SessionError


def parse_int(
    name: str,
    raw: "str | int",
    *,
    minimum: int = 1,
    error: Type[Exception] = SessionError,
) -> int:
    """``raw`` as a validated integer ``>= minimum``.

    ``name`` labels the knob in the error message (an environment
    variable name or argument name); ``raw`` may already be an int
    (argument paths reuse the same bound check as env paths).
    """
    if isinstance(raw, int) and not isinstance(raw, bool):
        value = raw
    else:
        try:
            value = int(str(raw).strip())
        except ValueError:
            raise error(
                f"invalid {name}={raw!r}: need an integer >= {minimum}"
            ) from None
    if value < minimum:
        raise error(
            f"invalid {name}={value!r}: need an integer >= {minimum}"
        )
    return value


_FLAG_TRUE = frozenset({"1", "true", "yes", "on"})
_FLAG_FALSE = frozenset({"0", "false", "no", "off"})


def env_flag(
    name: str,
    *,
    default: bool,
    error: Type[Exception] = SessionError,
) -> bool:
    """The boolean value of environment variable ``name``.

    Unset or empty returns ``default``; otherwise the value must spell a
    boolean (``1/true/yes/on`` or ``0/false/no/off``, case-insensitive).
    The kill switches of the evaluation stack
    (``REPRO_COMPILED_KERNELS``, ``REPRO_JOINGRAPH``) parse through
    here.
    """
    raw = os.environ.get(name, "")
    text = raw.strip().lower()
    if not text:
        return default
    if text in _FLAG_TRUE:
        return True
    if text in _FLAG_FALSE:
        return False
    raise error(f"invalid {name}={raw!r}: need a boolean flag (0 or 1)")


def env_int(
    name: str,
    *,
    default: "int | None",
    minimum: int = 1,
    error: Type[Exception] = SessionError,
) -> "int | None":
    """The integer value of environment variable ``name``.

    Unset or empty/whitespace returns ``default`` untouched; anything
    else must parse as an integer ``>= minimum`` or ``error`` is raised
    with the knob's name in the message.
    """
    raw = os.environ.get(name, "")
    if not raw.strip():
        return default
    return parse_int(name, raw, minimum=minimum, error=error)
