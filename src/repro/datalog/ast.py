"""Abstract syntax for datalog rules.

Terms are variables or constants; literals are positive atoms, negated
atoms, or inequalities; rules have one head atom and a body of literals.
A rule may be *cumulative* (written ``+:-`` in the paper), which is how
Spocus state rules accumulate inputs.

All AST nodes are immutable and hashable so they can live in sets and be
used as dictionary keys by the analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import RuleError


class Term:
    """Base class of :class:`Variable` and :class:`Constant`."""

    def substitute(self, binding: Mapping["Variable", object]) -> "Term":
        raise NotImplementedError


@dataclass(frozen=True)
class Variable(Term):
    """A logical variable, e.g. ``X``."""

    name: str

    def __str__(self) -> str:
        return self.name

    def substitute(self, binding: Mapping["Variable", object]) -> Term:
        if self in binding:
            return Constant(binding[self])
        return self


@dataclass(frozen=True)
class Constant(Term):
    """A constant value (str, int, ...) under the unique-name assumption."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return self.value
        return repr(self.value)

    def substitute(self, binding: Mapping["Variable", object]) -> Term:
        return self


@dataclass(frozen=True)
class Atom:
    """A relational atom ``predicate(t1, ..., tk)`` (k may be 0)."""

    predicate: str
    terms: tuple[Term, ...] = ()

    def __str__(self) -> str:
        if not self.terms:
            return self.predicate
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({args})"

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Iterator[Variable]:
        for term in self.terms:
            if isinstance(term, Variable):
                yield term

    def constants(self) -> Iterator[object]:
        for term in self.terms:
            if isinstance(term, Constant):
                yield term.value

    def substitute(self, binding: Mapping[Variable, object]) -> "Atom":
        return Atom(
            self.predicate, tuple(t.substitute(binding) for t in self.terms)
        )

    def ground_tuple(self, binding: Mapping[Variable, object]) -> tuple:
        """Return the tuple of values, requiring all variables bound."""
        values = []
        for term in self.terms:
            if isinstance(term, Constant):
                values.append(term.value)
            elif term in binding:
                values.append(binding[term])
            else:
                raise RuleError(f"unbound variable {term} in {self}")
        return tuple(values)


class Literal:
    """Base class of body literals."""

    def variables(self) -> Iterator[Variable]:
        raise NotImplementedError


@dataclass(frozen=True)
class PositiveAtom(Literal):
    atom: Atom

    def __str__(self) -> str:
        return str(self.atom)

    def variables(self) -> Iterator[Variable]:
        return self.atom.variables()


@dataclass(frozen=True)
class NegatedAtom(Literal):
    atom: Atom

    def __str__(self) -> str:
        return f"NOT {self.atom}"

    def variables(self) -> Iterator[Variable]:
        return self.atom.variables()


@dataclass(frozen=True)
class Inequality(Literal):
    """The built-in ``left <> right``."""

    left: Term
    right: Term

    def __str__(self) -> str:
        return f"{self.left} <> {self.right}"

    def variables(self) -> Iterator[Variable]:
        for term in (self.left, self.right):
            if isinstance(term, Variable):
                yield term


@dataclass(frozen=True)
class Rule:
    """A rule ``head :- body`` (or ``head +:- body`` when cumulative)."""

    head: Atom
    body: tuple[Literal, ...] = ()
    cumulative: bool = False

    def __str__(self) -> str:
        op = "+:-" if self.cumulative else ":-"
        if not self.body:
            return f"{self.head}."
        return f"{self.head} {op} {', '.join(str(l) for l in self.body)}"

    def head_variables(self) -> set[Variable]:
        return set(self.head.variables())

    def body_variables(self) -> set[Variable]:
        out: set[Variable] = set()
        for literal in self.body:
            out.update(literal.variables())
        return out

    def positive_body_variables(self) -> set[Variable]:
        out: set[Variable] = set()
        for literal in self.body:
            if isinstance(literal, PositiveAtom):
                out.update(literal.variables())
        return out

    def positive_atoms(self) -> list[Atom]:
        return [l.atom for l in self.body if isinstance(l, PositiveAtom)]

    def negated_atoms(self) -> list[Atom]:
        return [l.atom for l in self.body if isinstance(l, NegatedAtom)]

    def inequalities(self) -> list[Inequality]:
        return [l for l in self.body if isinstance(l, Inequality)]

    def body_predicates(self) -> set[str]:
        preds = {a.predicate for a in self.positive_atoms()}
        preds.update(a.predicate for a in self.negated_atoms())
        return preds

    def constants(self) -> set[object]:
        values = set(self.head.constants())
        for literal in self.body:
            if isinstance(literal, (PositiveAtom, NegatedAtom)):
                values.update(literal.atom.constants())
            elif isinstance(literal, Inequality):
                for term in (literal.left, literal.right):
                    if isinstance(term, Constant):
                        values.add(term.value)
        return values


@dataclass(frozen=True)
class Program:
    """An ordered collection of rules."""

    rules: tuple[Rule, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __str__(self) -> str:
        return "\n".join(f"{rule};" for rule in self.rules)

    @classmethod
    def of(cls, rules: Iterable[Rule]) -> "Program":
        return cls(tuple(rules))

    def head_predicates(self) -> set[str]:
        """The IDB predicates (those defined by some rule)."""
        return {rule.head.predicate for rule in self.rules}

    def body_predicates(self) -> set[str]:
        out: set[str] = set()
        for rule in self.rules:
            out |= rule.body_predicates()
        return out

    def edb_predicates(self) -> set[str]:
        """Predicates used in bodies but never defined (the EDB)."""
        return self.body_predicates() - self.head_predicates()

    def all_predicates(self) -> set[str]:
        return self.body_predicates() | self.head_predicates()

    def rules_for(self, predicate: str) -> list[Rule]:
        return [r for r in self.rules if r.head.predicate == predicate]

    def constants(self) -> set[object]:
        values: set[object] = set()
        for rule in self.rules:
            values |= rule.constants()
        return values

    def head_arities(self) -> dict[str, int]:
        """Arity of each IDB predicate; raises on inconsistency."""
        arities: dict[str, int] = {}
        for rule in self.rules:
            existing = arities.get(rule.head.predicate)
            if existing is not None and existing != rule.head.arity:
                raise RuleError(
                    f"predicate {rule.head.predicate!r} has heads of "
                    f"arity {existing} and {rule.head.arity}"
                )
            arities[rule.head.predicate] = rule.head.arity
        return arities
