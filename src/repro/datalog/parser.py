"""Parser for the paper's rule syntax.

The concrete syntax follows the programs printed in the paper::

    sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
    past-order(X) +:- order(X);
    b :- B, past-A, NOT past-C, NOT C;
    violation-F :- past-R(x,y), past-R(x,y'), y <> y';

Conventions:

* identifiers may contain letters, digits, ``_``, ``-`` and a trailing
  run of ``'`` (primes, as in ``y'``);
* a term identifier starting with an upper-case letter **or** ending in a
  prime is a variable; others are constants -- except that inside a rule,
  lower-case single letters used by the paper's formal examples
  (``x, y, z``) are also treated as variables when the ``lowercase_vars``
  flag is set;
* numbers are integer constants, quoted strings are string constants;
* ``NOT`` negates the following atom; ``<>`` is inequality;
* ``:-`` introduces a plain rule, ``+:-`` a cumulative rule; a rule ends
  with ``;`` or end of input.  A bare head (no ``:-``) is a fact.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParseError
from repro.datalog.ast import (
    Atom,
    Constant,
    Inequality,
    Literal,
    NegatedAtom,
    PositiveAtom,
    Program,
    Rule,
    Term,
    Variable,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*|%[^\n]*)
  | (?P<cumulative>\+:-)
  | (?P<implies>:-)
  | (?P<neq><>)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<semicolon>;)
  | (?P<period>\.(?!\d))
  | (?P<number>-?\d+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_-]*'*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    line: int


def _tokenize(source: str) -> Iterator[_Token]:
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(f"unexpected character {source[pos]!r}", line)
        kind = match.lastgroup or ""
        text = match.group()
        line += text.count("\n")
        pos = match.end()
        if kind in ("ws", "comment"):
            continue
        yield _Token(kind, text, line)


class _Parser:
    def __init__(self, source: str, lowercase_vars: bool = False) -> None:
        self._tokens = list(_tokenize(source))
        self._index = 0
        self._lowercase_vars = lowercase_vars

    # -- token plumbing -------------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, got {token.text!r}", token.line
            )
        return token

    def _accept(self, kind: str) -> _Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return token
        return None

    def at_end(self) -> bool:
        return self._peek() is None

    # -- grammar --------------------------------------------------------------

    def parse_program(self) -> Program:
        rules = []
        while not self.at_end():
            rules.append(self.parse_rule())
            while self._accept("semicolon") or self._accept("period"):
                pass
        return Program(tuple(rules))

    def parse_rule(self) -> Rule:
        head = self._parse_atom()
        cumulative = False
        body: tuple[Literal, ...] = ()
        if self._accept("cumulative"):
            cumulative = True
            body = self._parse_body()
        elif self._accept("implies"):
            body = self._parse_body()
        return Rule(head, body, cumulative)

    def _parse_body(self) -> tuple[Literal, ...]:
        literals = [self._parse_literal()]
        while self._accept("comma"):
            literals.append(self._parse_literal())
        return tuple(literals)

    def _parse_literal(self) -> Literal:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in rule body")
        if token.kind == "ident" and token.text.upper() == "NOT":
            self._next()
            return NegatedAtom(self._parse_atom())
        # Could be an atom or an inequality; parse a term and look ahead.
        start = self._index
        term = self._parse_term_or_none()
        if term is not None and self._accept("neq"):
            right = self._parse_term()
            return Inequality(term, right)
        self._index = start
        return PositiveAtom(self._parse_atom())

    def _parse_atom(self) -> Atom:
        token = self._expect("ident")
        predicate = token.text
        terms: list[Term] = []
        if self._accept("lparen"):
            if not self._accept("rparen"):
                terms.append(self._parse_term())
                while self._accept("comma"):
                    terms.append(self._parse_term())
                self._expect("rparen")
        return Atom(predicate, tuple(terms))

    def _parse_term(self) -> Term:
        term = self._parse_term_or_none()
        if term is None:
            token = self._peek()
            text = token.text if token else "end of input"
            raise ParseError(f"expected a term, got {text!r}")
        return term

    def _parse_term_or_none(self) -> Term | None:
        token = self._peek()
        if token is None:
            return None
        if token.kind == "number":
            self._next()
            return Constant(int(token.text))
        if token.kind == "string":
            self._next()
            return Constant(token.text[1:-1])
        if token.kind == "ident":
            # An identifier followed by '(' is an atom, not a term.
            following = (
                self._tokens[self._index + 1]
                if self._index + 1 < len(self._tokens)
                else None
            )
            if following is not None and following.kind == "lparen":
                return None
            self._next()
            return self._make_term(token.text)
        return None

    def _make_term(self, text: str) -> Term:
        if text[0].isupper() or text.endswith("'"):
            return Variable(text)
        if self._lowercase_vars and len(text.rstrip("'")) == 1:
            return Variable(text)
        return Constant(text)


def parse_rule(source: str, lowercase_vars: bool = False) -> Rule:
    """Parse a single rule.  See module docstring for the syntax."""
    parser = _Parser(source, lowercase_vars)
    rule = parser.parse_rule()
    while parser._accept("semicolon") or parser._accept("period"):
        pass
    if not parser.at_end():
        token = parser._peek()
        raise ParseError(
            f"trailing input after rule: {token.text!r}",
            token.line if token else None,
        )
    return rule


def parse_program(source: str, lowercase_vars: bool = False) -> Program:
    """Parse a sequence of rules separated by ``;`` (or newlines)."""
    return _Parser(source, lowercase_vars).parse_program()
