"""High-level datalog engine API.

:class:`DatalogEngine` bundles a parsed program with its static analyses
(safety, stratification, arities) and evaluates it over
:class:`~repro.relalg.instance.Instance` objects rather than raw fact
dictionaries.  This is the interface the transducer core uses for output
programs.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import RuleError, SchemaError
from repro.datalog.ast import Program
from repro.datalog.evaluate import evaluate_program
from repro.datalog.parser import parse_program
from repro.datalog.safety import check_program_safety
from repro.datalog.stratify import is_nonrecursive, is_semipositive, stratify
from repro.relalg.instance import Instance
from repro.relalg.schema import DatabaseSchema, RelationSchema


class DatalogEngine:
    """A parsed, validated, evaluable datalog program.

    Parameters
    ----------
    program:
        A :class:`~repro.datalog.ast.Program` or source text to parse.
    edb_schema:
        Optional schema of the extensional relations.  When provided,
        body predicates that are neither IDB nor in the schema raise
        :class:`SchemaError` at construction time, catching typos early.
    """

    def __init__(
        self,
        program: Program | str,
        edb_schema: DatabaseSchema | None = None,
    ) -> None:
        if isinstance(program, str):
            program = parse_program(program)
        check_program_safety(program)
        self._program = program
        self._arities = program.head_arities()
        self._strata = stratify(program)
        if edb_schema is not None:
            unknown = (
                program.edb_predicates()
                - set(edb_schema.names)
                - set(self._arities)
            )
            if unknown:
                raise SchemaError(
                    f"body predicates not in EDB schema or IDB: "
                    f"{sorted(unknown)}"
                )
        self._edb_schema = edb_schema

    # -- analyses --------------------------------------------------------------

    @property
    def program(self) -> Program:
        return self._program

    @property
    def strata(self) -> list[set[str]]:
        return self._strata

    def idb_predicates(self) -> set[str]:
        return self._program.head_predicates()

    def idb_schema(self) -> DatabaseSchema:
        """Schema of the derived predicates (arities inferred from heads)."""
        return DatabaseSchema(
            RelationSchema(name, arity)
            for name, arity in sorted(self._arities.items())
        )

    def is_nonrecursive(self) -> bool:
        return is_nonrecursive(self._program)

    def is_semipositive(self, edb: set[str] | None = None) -> bool:
        return is_semipositive(self._program, edb)

    # -- evaluation --------------------------------------------------------------

    def evaluate_facts(
        self, edb_facts: Mapping[str, Iterable[tuple]]
    ) -> dict[str, frozenset[tuple]]:
        """Evaluate over a raw fact mapping; return *all* facts."""
        frozen = {
            name: frozenset(tuple(r) for r in rows)
            for name, rows in edb_facts.items()
        }
        return evaluate_program(self._program, frozen)

    def evaluate(self, instance: Instance) -> Instance:
        """Evaluate over an instance; return an instance of the IDB schema."""
        edb_facts = {name: instance[name] for name in instance.schema.names}
        clash = set(self._arities) & set(instance.schema.names)
        if clash:
            raise RuleError(
                f"IDB predicates collide with EDB relations: {sorted(clash)}"
            )
        all_facts = self.evaluate_facts(edb_facts)
        idb = self.idb_schema()
        return Instance(
            idb, {name: all_facts.get(name, frozenset()) for name in idb.names}
        )
