"""Predicate dependency analysis and stratification.

Builds the dependency graph of a program (edges from body predicates to
head predicates, marked negative when the body occurrence is negated)
and derives:

* whether the program is *nonrecursive* (no cycle through IDB
  predicates) -- required of Spocus output programs;
* whether it is *semipositive* (negation applied only to EDB
  predicates) -- the other half of the Spocus restriction;
* a stratification for general stratified-negation programs, used by the
  engine's fixpoint evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import RuleError
from repro.datalog.ast import Program


@dataclass
class DependencyGraph:
    """Predicate-level dependency graph of a datalog program.

    ``positive_edges[p]`` and ``negative_edges[p]`` hold the head
    predicates that depend on ``p`` positively / negatively.
    """

    predicates: set[str] = field(default_factory=set)
    positive_edges: dict[str, set[str]] = field(default_factory=dict)
    negative_edges: dict[str, set[str]] = field(default_factory=dict)

    @classmethod
    def of(cls, program: Program) -> "DependencyGraph":
        graph = cls()
        graph.predicates = program.all_predicates()
        for rule in program:
            head = rule.head.predicate
            graph.predicates.add(head)
            for atom in rule.positive_atoms():
                graph.positive_edges.setdefault(atom.predicate, set()).add(head)
            for atom in rule.negated_atoms():
                graph.negative_edges.setdefault(atom.predicate, set()).add(head)
        return graph

    def successors(self, predicate: str) -> set[str]:
        return self.positive_edges.get(predicate, set()) | self.negative_edges.get(
            predicate, set()
        )

    def reachable_from(self, sources: Iterable[str]) -> set[str]:
        """All predicates reachable from ``sources`` (any edge polarity)."""
        seen: set[str] = set()
        stack = list(sources)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.successors(node))
        return seen

    def has_cycle_through(self, idb: set[str]) -> bool:
        """True if some cycle uses only IDB predicates."""
        color: dict[str, int] = {}

        def visit(node: str) -> bool:
            color[node] = 1
            for succ in self.successors(node):
                if succ not in idb:
                    continue
                state = color.get(succ, 0)
                if state == 1:
                    return True
                if state == 0 and visit(succ):
                    return True
            color[node] = 2
            return False

        return any(
            color.get(node, 0) == 0 and visit(node) for node in sorted(idb)
        )


def is_nonrecursive(program: Program) -> bool:
    """True if no IDB predicate depends (transitively) on itself."""
    graph = DependencyGraph.of(program)
    return not graph.has_cycle_through(program.head_predicates())


def is_semipositive(program: Program, edb: set[str] | None = None) -> bool:
    """True if negation is applied only to EDB predicates.

    ``edb`` defaults to the predicates never appearing in a head.  Spocus
    output programs must be semipositive with respect to input, state,
    and database relations.
    """
    if edb is None:
        edb = program.edb_predicates()
    for rule in program:
        for atom in rule.negated_atoms():
            if atom.predicate not in edb:
                return False
    return True


def stratify(program: Program) -> list[set[str]]:
    """Return a stratification: a list of predicate strata.

    Stratum computation is the classical one: ``stratum(head) >=
    stratum(body)`` for positive dependencies and ``stratum(head) >
    stratum(body)`` for negative ones.  Raises :class:`RuleError` if the
    program is not stratifiable (negative cycle).
    """
    idb = program.head_predicates()
    stratum = {p: 0 for p in program.all_predicates()}
    bound = len(idb) + 1
    changed = True
    iterations = 0
    while changed:
        changed = False
        iterations += 1
        if iterations > bound * max(1, len(stratum)):
            raise RuleError("program is not stratifiable (negative cycle)")
        for rule in program:
            head = rule.head.predicate
            for atom in rule.positive_atoms():
                if stratum[head] < stratum[atom.predicate]:
                    stratum[head] = stratum[atom.predicate]
                    changed = True
            for atom in rule.negated_atoms():
                if stratum[head] < stratum[atom.predicate] + 1:
                    stratum[head] = stratum[atom.predicate] + 1
                    changed = True
            if stratum[head] > bound:
                raise RuleError("program is not stratifiable (negative cycle)")
    height = max(stratum.values(), default=0)
    strata: list[set[str]] = [set() for _ in range(height + 1)]
    for predicate, level in stratum.items():
        strata[level].add(predicate)
    return [s for s in strata if s]


def evaluation_order(program: Program) -> list[str]:
    """Topological order of IDB predicates for nonrecursive programs."""
    idb = program.head_predicates()
    graph = DependencyGraph.of(program)
    if graph.has_cycle_through(idb):
        raise RuleError("program is recursive; no topological order exists")
    order: list[str] = []
    visited: set[str] = set()

    def visit(node: str) -> None:
        if node in visited:
            return
        visited.add(node)
        for rule in program.rules_for(node):
            for dep in sorted(rule.body_predicates()):
                if dep in idb:
                    visit(dep)
        order.append(node)

    for predicate in sorted(idb):
        visit(predicate)
    return order
