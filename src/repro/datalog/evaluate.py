"""Bottom-up evaluation of datalog programs.

Rule bodies are joined with per-predicate hash indexes
(:class:`~repro.relalg.indexes.FactStore`): positive atoms are reordered
greedily by expected selectivity (most bound terms first, smaller
relations breaking ties), each atom enumerates only the rows compatible
with the current partial binding via an index lookup, and bindings live
in a single mutable dict with an undo trail instead of being copied per
row.  Negated atoms and inequalities are checked as soon as their
variables are bound.

Programs are evaluated stratum by stratum; within a recursive stratum a
semi-naive fixpoint is run, re-deriving per iteration only the join
variants in which some positive occurrence ranges over the previous
iteration's new tuples.  Nonrecursive semipositive programs (Spocus
output programs) take the single-pass path.

:func:`evaluate_rule_naive` / :func:`evaluate_program_naive` keep the
original scan-based nested-loop join as an executable reference; the
property-based tests cross-check the indexed path against it and the
benchmarks report the speedup.
"""

from __future__ import annotations

from contextlib import contextmanager
from functools import lru_cache
from typing import Mapping, Sequence

from repro.errors import EvaluationError
from repro.datalog.ast import (
    Constant,
    Inequality,
    NegatedAtom,
    PositiveAtom,
    Program,
    Rule,
    Variable,
)
from repro.datalog.safety import check_rule_safety
from repro.datalog.stratify import stratify
from repro.relalg.indexes import FactStore

Facts = Mapping[str, frozenset[tuple]]
Binding = dict[Variable, object]

_UNSET = object()


def _coerce_store(facts: Facts | FactStore) -> FactStore:
    if isinstance(facts, FactStore):
        return facts
    return FactStore(facts)


def _term_value(term, binding: Binding):
    if isinstance(term, Constant):
        return term.value
    if term in binding:
        return binding[term]
    return _UNSET


def _check_bound_literal(
    literal, binding: Binding, store: FactStore
) -> bool:
    """Evaluate a fully-bound negated atom or inequality."""
    if isinstance(literal, NegatedAtom):
        row = literal.atom.ground_tuple(binding)
        return not store.contains(literal.atom.predicate, row)
    if isinstance(literal, Inequality):
        return _term_value(literal.left, binding) != _term_value(
            literal.right, binding
        )
    raise EvaluationError(f"not a checkable literal: {literal}")


# -- join planning ----------------------------------------------------------------


class _AtomInfo:
    """Precomputed view of one positive body atom."""

    __slots__ = ("index", "atom", "variables", "constant_count")

    def __init__(self, index: int, atom) -> None:
        self.index = index
        self.atom = atom
        self.variables = frozenset(atom.variables())
        self.constant_count = sum(
            1 for term in atom.terms if isinstance(term, Constant)
        )


class _RulePlan:
    """Safety-checked, precomputed join ingredients of one rule.

    Plans are cached per :class:`Rule`, so the per-evaluation work is
    just the (size-dependent) greedy ordering; check schedules are
    memoized per ordering.
    """

    __slots__ = ("rule", "positive", "checks", "pre_checks", "_schedules")

    def __init__(self, rule: Rule) -> None:
        check_rule_safety(rule)
        self.rule = rule
        self.positive = [
            _AtomInfo(i, l.atom)
            for i, l in enumerate(
                l for l in rule.body if isinstance(l, PositiveAtom)
            )
        ]
        checks = [l for l in rule.body if not isinstance(l, PositiveAtom)]
        self.pre_checks = [c for c in checks if not set(c.variables())]
        self.checks = [c for c in checks if set(c.variables())]
        self._schedules: dict[tuple[int, ...], list[list]] = {}

    def schedule(self, order: Sequence[_AtomInfo]) -> list[list]:
        """``checks_at[i]``: checks to run right after ``order[i]`` matches."""
        key = tuple(info.index for info in order)
        cached = self._schedules.get(key)
        if cached is not None:
            return cached
        checks_at: list[list] = [[] for _ in order]
        bound: set[Variable] = set()
        bound_by: list[set[Variable]] = []
        for info in order:
            bound |= info.variables
            bound_by.append(set(bound))
        for check in self.checks:
            variables = set(check.variables())
            for i, available in enumerate(bound_by):
                if variables <= available:
                    checks_at[i].append(check)
                    break
            else:
                raise EvaluationError(
                    f"literal {check} has variables not bound by any "
                    "positive atom"
                )
        self._schedules[key] = checks_at
        return checks_at


_plan_cache: dict[Rule, _RulePlan] = {}
_PLAN_CACHE_LIMIT = 4096


def _get_plan(rule: Rule) -> _RulePlan:
    plan = _plan_cache.get(rule)
    if plan is None:
        if len(_plan_cache) >= _PLAN_CACHE_LIMIT:
            _plan_cache.clear()
        plan = _RulePlan(rule)
        _plan_cache[rule] = plan
    return plan


def _order_atoms(
    positive: Sequence[_AtomInfo],
    store: FactStore,
    first: _AtomInfo | None = None,
) -> list[_AtomInfo]:
    """Greedy selectivity ordering of the positive body atoms.

    At each step pick the atom with the most terms already bound
    (constants plus variables bound by earlier atoms); ties go to the
    atom over the smaller relation, then to body order, which keeps the
    ordering deterministic.
    """
    remaining = list(positive)
    order: list[_AtomInfo] = []
    bound: set[Variable] = set()
    if first is not None:
        remaining.remove(first)
        order.append(first)
        bound.update(first.variables)
    while remaining:
        best_index = 0
        best_score: tuple[int, int] | None = None
        for i, info in enumerate(remaining):
            bound_terms = info.constant_count + sum(
                1 for v in info.variables if v in bound
            )
            score = (-bound_terms, store.count(info.atom.predicate))
            if best_score is None or score < best_score:
                best_score = score
                best_index = i
        chosen = remaining.pop(best_index)
        order.append(chosen)
        bound.update(chosen.variables)
    return order


def _candidate_rows(atom, binding: Binding, store: FactStore):
    """The rows of ``atom``'s relation compatible with ``binding``.

    Uses a hash-index lookup on the bound positions; falls back to a
    membership test when every position is bound and to a full scan when
    none is.
    """
    positions: list[int] = []
    key: list = []
    for i, term in enumerate(atom.terms):
        value = _term_value(term, binding)
        if value is not _UNSET:
            positions.append(i)
            key.append(value)
    if len(positions) == len(atom.terms):
        row = tuple(key)
        if store.contains(atom.predicate, row):
            return (row,)
        return ()
    if positions:
        return store.lookup(atom.predicate, tuple(positions), tuple(key))
    return store.rows(atom.predicate)


def _match_into(
    atom, row: tuple, binding: Binding, trail: list[Variable]
) -> bool:
    """Extend ``binding`` in place so ``atom`` matches ``row``.

    Newly bound variables are pushed on ``trail``; on mismatch the
    caller unwinds via :func:`_undo_to`.  Index lookups already filtered
    on the bound positions, so this only binds fresh variables and
    re-checks repeated ones.
    """
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if term.value != value:
                return False
        else:
            bound = binding.get(term, _UNSET)
            if bound is _UNSET:
                binding[term] = value
                trail.append(term)
            elif bound != value:
                return False
    return True


def _undo_to(binding: Binding, trail: list[Variable], mark: int) -> None:
    while len(trail) > mark:
        del binding[trail.pop()]


def _join(
    plan: _RulePlan,
    store: FactStore,
    derived: set[tuple],
    first: _AtomInfo | None = None,
    first_rows=None,
) -> None:
    """Run the indexed join for one rule, adding head tuples to ``derived``.

    With ``first``/``first_rows`` given, that occurrence is evaluated
    first and enumerates only ``first_rows`` (the semi-naive delta
    restriction); the other atoms read the full store.
    """
    for check in plan.pre_checks:
        if not _check_bound_literal(check, {}, store):
            return
    order = _order_atoms(plan.positive, store, first=first)
    checks_at = plan.schedule(order)
    head = plan.rule.head
    binding: Binding = {}
    trail: list[Variable] = []
    depth = len(order)

    def extend(index: int) -> None:
        if index == depth:
            derived.add(head.ground_tuple(binding))
            return
        atom = order[index].atom
        if index == 0 and first_rows is not None:
            candidates = first_rows
        else:
            candidates = _candidate_rows(atom, binding, store)
        slot_checks = checks_at[index]
        for row in candidates:
            if len(row) != atom.arity:
                continue
            mark = len(trail)
            if _match_into(atom, row, binding, trail):
                if all(
                    _check_bound_literal(check, binding, store)
                    for check in slot_checks
                ):
                    extend(index + 1)
            _undo_to(binding, trail, mark)

    extend(0)


# -- public API -------------------------------------------------------------------


def evaluate_rule(
    rule: Rule,
    facts: Facts | FactStore,
    delta: Facts | None = None,
) -> frozenset[tuple]:
    """Evaluate one rule against ``facts``; return derived head tuples.

    With ``delta`` given, performs the semi-naive version: one join
    variant per positive occurrence whose predicate has delta rows, with
    that occurrence restricted to the delta (used inside recursive
    strata).  Negated atoms are always evaluated against the full
    ``facts``.
    """
    plan = _get_plan(rule)
    store = _coerce_store(facts)
    derived: set[tuple] = set()

    if not plan.positive:
        # Body is empty or has only checks over constants.  A delta pass
        # can never use such a rule (no positive occurrence to restrict).
        if delta is not None:
            return frozenset()
        if all(
            _check_bound_literal(c, {}, store) for c in plan.pre_checks
        ):
            derived.add(rule.head.ground_tuple({}))
        return frozenset(derived)

    if delta is None:
        _join(plan, store, derived)
        return frozenset(derived)

    for info in plan.positive:
        delta_rows = delta.get(info.atom.predicate)
        if not delta_rows:
            continue
        _join(plan, store, derived, first=info, first_rows=delta_rows)
    return frozenset(derived)


def evaluate_program(
    program: Program,
    edb_facts: Facts | FactStore,
    max_iterations: int = 100_000,
) -> dict[str, frozenset[tuple]]:
    """Evaluate a stratified program; return all facts (EDB + derived).

    The program is stratified; each stratum is run to fixpoint with
    semi-naive iteration (a single pass suffices for nonrecursive
    strata).  The result maps every predicate, including EDB ones, to
    its final set of tuples.

    ``edb_facts`` may be a plain mapping or a pre-indexed
    :class:`~repro.relalg.indexes.FactStore`; a store is layered over,
    never mutated, so its indexes (e.g. over a large shared catalog) are
    reused across evaluations.
    """
    if _FORCE_NAIVE:
        mapping = (
            edb_facts.as_dict()
            if isinstance(edb_facts, FactStore)
            else edb_facts
        )
        return evaluate_program_naive(program, mapping, max_iterations)
    if isinstance(edb_facts, FactStore):
        store = FactStore(base=edb_facts)
    else:
        store = FactStore(edb_facts)
    idb = program.head_predicates()
    for predicate in idb:
        store.ensure(predicate)

    for stratum in _stratify_cached(program):
        stratum_rules = [
            (r, r.body_predicates())
            for r in program
            if r.head.predicate in stratum & idb
        ]
        if not stratum_rules:
            continue
        # First full pass.
        delta: dict[str, frozenset[tuple]] = {}
        for rule, _preds in stratum_rules:
            fresh = store.add(rule.head.predicate, evaluate_rule(rule, store))
            if fresh:
                delta[rule.head.predicate] = (
                    delta.get(rule.head.predicate, frozenset()) | fresh
                )
        # Semi-naive iteration to fixpoint.
        iterations = 0
        while delta:
            iterations += 1
            if iterations > max_iterations:
                raise EvaluationError("fixpoint iteration budget exceeded")
            next_delta: dict[str, frozenset[tuple]] = {}
            for rule, body_preds in stratum_rules:
                if not (body_preds & set(delta)):
                    continue
                fresh = store.add(
                    rule.head.predicate,
                    evaluate_rule(rule, store, delta=delta),
                )
                if fresh:
                    next_delta[rule.head.predicate] = (
                        next_delta.get(rule.head.predicate, frozenset())
                        | fresh
                    )
            delta = next_delta
    return store.as_dict()


@lru_cache(maxsize=256)
def _stratify_cached(program: Program) -> list[set[str]]:
    """Stratification is purely syntactic; cache it per program so hot
    paths (one evaluation per transducer step) don't recompute it."""
    return stratify(program)


# -- scan-based reference implementation ------------------------------------------

_FORCE_NAIVE = False


@contextmanager
def naive_evaluation():
    """Route :func:`evaluate_program` through the scan-based reference.

    Benchmark/testing hook: everything built on the evaluator (Spocus
    transducers, the runtime engine) transparently falls back to the
    original nested-loop join inside this context, which is how the
    index-vs-scan speedups and equivalence checks are measured end to
    end.  Not thread-safe; intended for benchmarks and tests only.
    """
    global _FORCE_NAIVE
    saved = _FORCE_NAIVE
    _FORCE_NAIVE = True
    try:
        yield
    finally:
        _FORCE_NAIVE = saved


def _match_atom(atom, row: tuple, binding: Binding) -> Binding | None:
    """Copying variant of :func:`_match_into` kept for the naive path."""
    if len(row) != atom.arity:
        return None
    extended = dict(binding)
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = extended.get(term, _UNSET)
            if bound is _UNSET:
                extended[term] = value
            elif bound != value:
                return None
    return extended


def _check_bound_literal_mapping(
    literal, binding: Binding, facts: Facts
) -> bool:
    """Mapping-backed twin of :func:`_check_bound_literal` (naive path)."""
    if isinstance(literal, NegatedAtom):
        row = literal.atom.ground_tuple(binding)
        return row not in facts.get(literal.atom.predicate, frozenset())
    if isinstance(literal, Inequality):
        return _term_value(literal.left, binding) != _term_value(
            literal.right, binding
        )
    raise EvaluationError(f"not a checkable literal: {literal}")


def evaluate_rule_naive(
    rule: Rule,
    facts: Facts,
    delta: Facts | None = None,
) -> frozenset[tuple]:
    """The original nested-loop join: full scan per atom, dict copied per
    row, atoms in body order.  Reference semantics for cross-checks and
    the baseline of the indexing benchmarks."""
    check_rule_safety(rule)
    positive = [l for l in rule.body if isinstance(l, PositiveAtom)]
    checks = [l for l in rule.body if not isinstance(l, PositiveAtom)]
    derived: set[tuple] = set()

    def run_checks(binding: Binding, pending: list) -> list | None:
        remaining = []
        for literal in pending:
            if all(v in binding for v in literal.variables()):
                if not _check_bound_literal_mapping(literal, binding, facts):
                    return None
            else:
                remaining.append(literal)
        return remaining

    def extend(index: int, binding: Binding, pending: list, used_delta: bool):
        if index == len(positive):
            if pending:
                unbound = {
                    v.name for l in pending for v in l.variables()
                } - {v.name for v in binding}
                raise EvaluationError(
                    f"rule {rule}: literals left unbound: {sorted(unbound)}"
                )
            if delta is None or used_delta:
                derived.add(rule.head.ground_tuple(binding))
            return
        atom = positive[index].atom
        for row in facts.get(atom.predicate, frozenset()):
            is_delta = bool(
                delta and row in delta.get(atom.predicate, frozenset())
            )
            extended = _match_atom(atom, row, binding)
            if extended is None:
                continue
            still_pending = run_checks(extended, pending)
            if still_pending is None:
                continue
            extend(index + 1, extended, still_pending, used_delta or is_delta)

    if not positive:
        pending = run_checks({}, list(checks))
        if pending is not None and not pending and delta is None:
            derived.add(rule.head.ground_tuple({}))
        return frozenset(derived)

    extend(0, {}, list(checks), False)
    return frozenset(derived)


def evaluate_program_naive(
    program: Program,
    edb_facts: Facts,
    max_iterations: int = 100_000,
) -> dict[str, frozenset[tuple]]:
    """Stratified fixpoint over :func:`evaluate_rule_naive` (seed path)."""
    facts: dict[str, frozenset[tuple]] = {
        name: frozenset(rows) for name, rows in edb_facts.items()
    }
    idb = program.head_predicates()
    for predicate in idb:
        facts.setdefault(predicate, frozenset())

    for stratum in stratify(program):
        stratum_rules = [
            r for r in program if r.head.predicate in stratum & idb
        ]
        if not stratum_rules:
            continue
        delta: dict[str, frozenset[tuple]] = {}
        for rule in stratum_rules:
            new_rows = evaluate_rule_naive(rule, facts)
            fresh = new_rows - facts[rule.head.predicate]
            if fresh:
                facts[rule.head.predicate] |= fresh
                delta[rule.head.predicate] = (
                    delta.get(rule.head.predicate, frozenset()) | fresh
                )
        iterations = 0
        while delta:
            iterations += 1
            if iterations > max_iterations:
                raise EvaluationError("fixpoint iteration budget exceeded")
            next_delta: dict[str, frozenset[tuple]] = {}
            for rule in stratum_rules:
                if not (rule.body_predicates() & set(delta)):
                    continue
                new_rows = evaluate_rule_naive(rule, facts, delta=delta)
                fresh = new_rows - facts[rule.head.predicate]
                if fresh:
                    facts[rule.head.predicate] |= fresh
                    next_delta[rule.head.predicate] = (
                        next_delta.get(rule.head.predicate, frozenset())
                        | fresh
                    )
            delta = next_delta
    return facts
