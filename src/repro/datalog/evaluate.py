"""Bottom-up evaluation of datalog programs.

Rule bodies are evaluated by an ordered nested-loop join with early
filtering: positive atoms extend partial bindings; negated atoms and
inequalities are checked as soon as their variables are bound.  Programs
are evaluated stratum by stratum; within a recursive stratum a semi-naive
fixpoint is run.  Nonrecursive semipositive programs (Spocus output
programs) take the single-pass path.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import EvaluationError
from repro.datalog.ast import (
    Atom,
    Constant,
    Inequality,
    NegatedAtom,
    PositiveAtom,
    Program,
    Rule,
    Variable,
)
from repro.datalog.safety import check_rule_safety
from repro.datalog.stratify import stratify

Facts = Mapping[str, frozenset[tuple]]
Binding = dict[Variable, object]


def _match_atom(atom: Atom, row: tuple, binding: Binding) -> Binding | None:
    """Try to extend ``binding`` so that ``atom`` matches ``row``."""
    if len(row) != atom.arity:
        return None
    extended = dict(binding)
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = extended.get(term, _UNSET)
            if bound is _UNSET:
                extended[term] = value
            elif bound != value:
                return None
    return extended


_UNSET = object()


def _term_value(term, binding: Binding):
    if isinstance(term, Constant):
        return term.value
    if term in binding:
        return binding[term]
    return _UNSET


def _literal_ready(literal, binding: Binding) -> bool:
    """True when all of the literal's variables are bound."""
    return all(v in binding for v in literal.variables())


def _check_bound_literal(literal, binding: Binding, facts: Facts) -> bool:
    """Evaluate a fully-bound negated atom or inequality."""
    if isinstance(literal, NegatedAtom):
        row = literal.atom.ground_tuple(binding)
        return row not in facts.get(literal.atom.predicate, frozenset())
    if isinstance(literal, Inequality):
        left = _term_value(literal.left, binding)
        right = _term_value(literal.right, binding)
        return left != right
    raise EvaluationError(f"not a checkable literal: {literal}")


def evaluate_rule(
    rule: Rule,
    facts: Facts,
    delta: Facts | None = None,
) -> frozenset[tuple]:
    """Evaluate one rule against ``facts``; return derived head tuples.

    With ``delta`` given, performs the semi-naive version: at least one
    positive atom must match a delta fact (used inside recursive strata).
    Negated atoms are always evaluated against the full ``facts``.
    """
    check_rule_safety(rule)
    positive = [l for l in rule.body if isinstance(l, PositiveAtom)]
    checks = [l for l in rule.body if not isinstance(l, PositiveAtom)]

    derived: set[tuple] = set()

    def run_checks(binding: Binding, pending: list) -> list:
        """Evaluate every check whose variables just became bound.

        Returns the still-pending checks, or None to signal failure.
        """
        remaining = []
        for literal in pending:
            if _literal_ready(literal, binding):
                if not _check_bound_literal(literal, binding, facts):
                    return None  # type: ignore[return-value]
            else:
                remaining.append(literal)
        return remaining

    def extend(index: int, binding: Binding, pending: list, used_delta: bool) -> None:
        if index == len(positive):
            if pending:
                unbound = {
                    v.name for l in pending for v in l.variables()
                } - {v.name for v in binding}
                raise EvaluationError(
                    f"rule {rule}: literals left unbound: {sorted(unbound)}"
                )
            if delta is None or used_delta:
                derived.add(rule.head.ground_tuple(binding))
            return
        atom = positive[index].atom
        sources: list[tuple[frozenset[tuple], bool]] = [
            (facts.get(atom.predicate, frozenset()), False)
        ]
        # Semi-naive: additionally try only-delta rows when no delta row
        # has been used yet.  (Delta rows are included in facts already;
        # the flag tracks whether some delta row was used.)
        for row in sources[0][0]:
            is_delta = bool(
                delta and row in delta.get(atom.predicate, frozenset())
            )
            extended = _match_atom(atom, row, binding)
            if extended is None:
                continue
            still_pending = run_checks(extended, pending)
            if still_pending is None:
                continue
            extend(index + 1, extended, still_pending, used_delta or is_delta)

    if not positive:
        # Body is empty or has only checks over constants.
        binding: Binding = {}
        pending = run_checks(binding, list(checks))
        if pending is not None and not pending:
            derived.add(rule.head.ground_tuple(binding))
        return frozenset(derived)

    extend(0, {}, list(checks), False)
    return frozenset(derived)


def evaluate_program(
    program: Program,
    edb_facts: Facts,
    max_iterations: int = 100_000,
) -> dict[str, frozenset[tuple]]:
    """Evaluate a stratified program; return all facts (EDB + derived).

    The program is stratified; each stratum is run to fixpoint with
    semi-naive iteration (a single pass suffices for nonrecursive
    strata).  The result maps every predicate, including EDB ones, to its
    final set of tuples.
    """
    facts: dict[str, frozenset[tuple]] = {
        name: frozenset(rows) for name, rows in edb_facts.items()
    }
    idb = program.head_predicates()
    for predicate in idb:
        facts.setdefault(predicate, frozenset())

    for stratum in stratify(program):
        stratum_rules = [
            r for r in program if r.head.predicate in stratum & idb
        ]
        if not stratum_rules:
            continue
        # First full pass.
        delta: dict[str, frozenset[tuple]] = {}
        for rule in stratum_rules:
            new_rows = evaluate_rule(rule, facts)
            fresh = new_rows - facts[rule.head.predicate]
            if fresh:
                facts[rule.head.predicate] |= fresh
                delta[rule.head.predicate] = (
                    delta.get(rule.head.predicate, frozenset()) | fresh
                )
        # Semi-naive iteration to fixpoint.
        iterations = 0
        while delta:
            iterations += 1
            if iterations > max_iterations:
                raise EvaluationError("fixpoint iteration budget exceeded")
            next_delta: dict[str, frozenset[tuple]] = {}
            for rule in stratum_rules:
                if not (rule.body_predicates() & set(delta)):
                    continue
                new_rows = evaluate_rule(rule, facts, delta=delta)
                fresh = new_rows - facts[rule.head.predicate]
                if fresh:
                    facts[rule.head.predicate] |= fresh
                    next_delta[rule.head.predicate] = (
                        next_delta.get(rule.head.predicate, frozenset()) | fresh
                    )
            delta = next_delta
    return facts
