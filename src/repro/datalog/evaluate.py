"""Bottom-up evaluation of datalog programs.

As of the QueryPlan redesign this module is a thin, stable wrapper over
the typed plan API in :mod:`repro.datalog.plan`: programs are compiled
(once, process-wide) into a
:class:`~repro.datalog.plan.physical.PhysicalPlan` whose ``execute``
runs the stratified semi-naive fixpoint with hash-indexed joins and
cost-based join ordering (greedy selectivity order when statistics are
absent).  ``evaluate_program`` / ``evaluate_rule`` keep their original
signatures and exact semantics; callers that want planning, explain
output, or cross-step incremental evaluation use the plan API directly.

:func:`evaluate_rule_naive` / :func:`evaluate_program_naive` keep the
original scan-based nested-loop join as an executable reference; the
property-based tests cross-check the planned paths against it and the
benchmarks report the speedup.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Mapping

from repro.errors import EvaluationError
from repro.datalog.ast import (
    Constant,
    Inequality,
    NegatedAtom,
    PositiveAtom,
    Program,
    Rule,
    Variable,
)
from repro.datalog.plan.logical import RuleNode
from repro.datalog.plan.physical import (
    CompiledRule,
    coerce_store,
    derive_rule,
    make_orderer,
)
from repro.datalog.plan.planner import ORDERING_COST, compile_program
from repro.datalog.safety import check_rule_safety
from repro.datalog.stratify import stratify
from repro.relalg.indexes import FactStore

Facts = Mapping[str, frozenset[tuple]]
Binding = dict[Variable, object]

_UNSET = object()


# -- public API -------------------------------------------------------------------

_rule_cache: dict[Rule, CompiledRule] = {}
_RULE_CACHE_LIMIT = 4096


def _compiled_rule(rule: Rule) -> CompiledRule:
    crule = _rule_cache.get(rule)
    if crule is None:
        if len(_rule_cache) >= _RULE_CACHE_LIMIT:
            _rule_cache.clear()
        crule = CompiledRule(RuleNode(rule))
        _rule_cache[rule] = crule
    return crule


def evaluate_rule(
    rule: Rule,
    facts: Facts | FactStore,
    delta: Facts | None = None,
) -> frozenset[tuple]:
    """Evaluate one rule against ``facts``; return derived head tuples.

    With ``delta`` given, performs the semi-naive version: one join
    variant per positive occurrence whose predicate has delta rows, with
    that occurrence restricted to the delta (used inside recursive
    strata).  Negated atoms are always evaluated against the full
    ``facts``.
    """
    crule = _compiled_rule(rule)
    store = coerce_store(facts)
    orderer = make_orderer(ORDERING_COST, store)
    return frozenset(derive_rule(crule, store, orderer, delta=delta))


def evaluate_program(
    program: Program,
    edb_facts: Facts | FactStore,
    max_iterations: int = 100_000,
) -> dict[str, frozenset[tuple]]:
    """Evaluate a stratified program; return all facts (EDB + derived).

    Compiles the program into its shared
    :class:`~repro.datalog.plan.physical.PhysicalPlan` (cached per
    program) and executes it.  ``edb_facts`` may be a plain mapping or a
    pre-indexed :class:`~repro.relalg.indexes.FactStore`; a store is
    layered over, never mutated, so its indexes (e.g. over a large
    shared catalog) are reused across evaluations.
    """
    if _FORCE_NAIVE:
        mapping = (
            edb_facts.as_dict()
            if isinstance(edb_facts, FactStore)
            else edb_facts
        )
        return evaluate_program_naive(program, mapping, max_iterations)
    plan = compile_program(program)
    return plan.execute(edb_facts, max_iterations=max_iterations)


# -- scan-based reference implementation ------------------------------------------

_FORCE_NAIVE = False


@contextmanager
def naive_evaluation():
    """Route :func:`evaluate_program` through the scan-based reference.

    Benchmark/testing hook: everything built on the evaluator (Spocus
    transducers, the runtime engine) transparently falls back to the
    original nested-loop join inside this context, which is how the
    index-vs-scan speedups and equivalence checks are measured end to
    end.  Incremental step contexts are also disabled while active (see
    :meth:`~repro.core.transducer.RelationalTransducer.new_step_context`).
    Not thread-safe; intended for benchmarks and tests only.
    """
    global _FORCE_NAIVE
    saved = _FORCE_NAIVE
    _FORCE_NAIVE = True
    try:
        yield
    finally:
        _FORCE_NAIVE = saved


def _term_value(term, binding: Binding):
    if isinstance(term, Constant):
        return term.value
    if term in binding:
        return binding[term]
    return _UNSET


def _match_atom(atom, row: tuple, binding: Binding) -> Binding | None:
    """Copying row matcher kept for the naive path."""
    if len(row) != atom.arity:
        return None
    extended = dict(binding)
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = extended.get(term, _UNSET)
            if bound is _UNSET:
                extended[term] = value
            elif bound != value:
                return None
    return extended


def _check_bound_literal_mapping(
    literal, binding: Binding, facts: Facts
) -> bool:
    """Mapping-backed bound-literal check (naive path)."""
    if isinstance(literal, NegatedAtom):
        row = literal.atom.ground_tuple(binding)
        return row not in facts.get(literal.atom.predicate, frozenset())
    if isinstance(literal, Inequality):
        return _term_value(literal.left, binding) != _term_value(
            literal.right, binding
        )
    raise EvaluationError(f"not a checkable literal: {literal}")


def evaluate_rule_naive(
    rule: Rule,
    facts: Facts,
    delta: Facts | None = None,
) -> frozenset[tuple]:
    """The original nested-loop join: full scan per atom, dict copied per
    row, atoms in body order.  Reference semantics for cross-checks and
    the baseline of the indexing benchmarks."""
    check_rule_safety(rule)
    positive = [l for l in rule.body if isinstance(l, PositiveAtom)]
    checks = [l for l in rule.body if not isinstance(l, PositiveAtom)]
    derived: set[tuple] = set()

    def run_checks(binding: Binding, pending: list) -> list | None:
        remaining = []
        for literal in pending:
            if all(v in binding for v in literal.variables()):
                if not _check_bound_literal_mapping(literal, binding, facts):
                    return None
            else:
                remaining.append(literal)
        return remaining

    def extend(index: int, binding: Binding, pending: list, used_delta: bool):
        if index == len(positive):
            if pending:
                unbound = {
                    v.name for l in pending for v in l.variables()
                } - {v.name for v in binding}
                raise EvaluationError(
                    f"rule {rule}: literals left unbound: {sorted(unbound)}"
                )
            if delta is None or used_delta:
                derived.add(rule.head.ground_tuple(binding))
            return
        atom = positive[index].atom
        for row in facts.get(atom.predicate, frozenset()):
            is_delta = bool(
                delta and row in delta.get(atom.predicate, frozenset())
            )
            extended = _match_atom(atom, row, binding)
            if extended is None:
                continue
            still_pending = run_checks(extended, pending)
            if still_pending is None:
                continue
            extend(index + 1, extended, still_pending, used_delta or is_delta)

    if not positive:
        pending = run_checks({}, list(checks))
        if pending is not None and not pending and delta is None:
            derived.add(rule.head.ground_tuple({}))
        return frozenset(derived)

    extend(0, {}, list(checks), False)
    return frozenset(derived)


def evaluate_program_naive(
    program: Program,
    edb_facts: Facts,
    max_iterations: int = 100_000,
) -> dict[str, frozenset[tuple]]:
    """Stratified fixpoint over :func:`evaluate_rule_naive` (seed path)."""
    facts: dict[str, frozenset[tuple]] = {
        name: frozenset(rows) for name, rows in edb_facts.items()
    }
    idb = program.head_predicates()
    for predicate in idb:
        facts.setdefault(predicate, frozenset())

    for stratum in stratify(program):
        stratum_rules = [
            r for r in program if r.head.predicate in stratum & idb
        ]
        if not stratum_rules:
            continue
        delta: dict[str, frozenset[tuple]] = {}
        for rule in stratum_rules:
            new_rows = evaluate_rule_naive(rule, facts)
            fresh = new_rows - facts[rule.head.predicate]
            if fresh:
                facts[rule.head.predicate] |= fresh
                delta[rule.head.predicate] = (
                    delta.get(rule.head.predicate, frozenset()) | fresh
                )
        iterations = 0
        while delta:
            iterations += 1
            if iterations > max_iterations:
                raise EvaluationError("fixpoint iteration budget exceeded")
            next_delta: dict[str, frozenset[tuple]] = {}
            for rule in stratum_rules:
                if not (rule.body_predicates() & set(delta)):
                    continue
                new_rows = evaluate_rule_naive(rule, facts, delta=delta)
                fresh = new_rows - facts[rule.head.predicate]
                if fresh:
                    facts[rule.head.predicate] |= fresh
                    next_delta[rule.head.predicate] = (
                        next_delta.get(rule.head.predicate, frozenset())
                        | fresh
                    )
            delta = next_delta
    return facts
