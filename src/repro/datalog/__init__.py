"""Datalog engine.

Implements the rule language of the paper: datalog with negation and
inequality, evaluated bottom-up.  Spocus output programs are the
*nonrecursive semipositive* fragment (negation and inequality allowed,
no recursion through derived predicates, every variable range-restricted)
but the engine also supports general stratified programs, which the
chase-free parts of the library and the extension experiments use.
"""

from repro.datalog.ast import (
    Atom,
    Constant,
    Inequality,
    Literal,
    NegatedAtom,
    PositiveAtom,
    Program,
    Rule,
    Term,
    Variable,
)
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.safety import check_program_safety, check_rule_safety
from repro.datalog.stratify import (
    DependencyGraph,
    is_nonrecursive,
    is_semipositive,
    stratify,
)
from repro.datalog.evaluate import (
    evaluate_program,
    evaluate_program_naive,
    evaluate_rule,
    evaluate_rule_naive,
)
from repro.datalog.engine import DatalogEngine
from repro.datalog.plan import (
    IncrementalExecutor,
    LogicalPlan,
    PhysicalPlan,
    Planner,
    compile_program,
)

__all__ = [
    "Term",
    "Variable",
    "Constant",
    "Atom",
    "Literal",
    "PositiveAtom",
    "NegatedAtom",
    "Inequality",
    "Rule",
    "Program",
    "parse_rule",
    "parse_program",
    "check_rule_safety",
    "check_program_safety",
    "DependencyGraph",
    "stratify",
    "is_nonrecursive",
    "is_semipositive",
    "evaluate_rule",
    "evaluate_program",
    "evaluate_rule_naive",
    "evaluate_program_naive",
    "DatalogEngine",
    "LogicalPlan",
    "Planner",
    "PhysicalPlan",
    "IncrementalExecutor",
    "compile_program",
]
