"""Join-order selection and plan compilation.

Two ordering strategies:

* :func:`greedy_order` -- the selectivity heuristic the evaluator has
  always used: most bound terms first, smaller relation breaking ties,
  then body order.  It needs nothing but relation counts, so it is the
  fallback whenever index statistics are absent (no store in hand yet,
  or an empty one).
* :func:`cost_order` -- cost-based over the
  :class:`~repro.datalog.plan.cost.CostModel` estimates: at each step
  place the atom expected to enumerate the fewest rows given what is
  already bound, using the per-index bucket counts of the live
  :class:`~repro.relalg.indexes.FactStore`.  Ties (and the bound-term
  structure) fall back to the greedy score, keeping orders
  deterministic.  When handed a rule's join graph
  (:attr:`~repro.datalog.plan.logical.RuleNode.adjacency`) the
  expansion is *connected-subgraph*: only atoms sharing a variable with
  the subplan built so far are candidates, so Cartesian products are
  deferred until a connected component is exhausted instead of sneaking
  in whenever a tiny unrelated relation looks cheap.  Set
  ``REPRO_JOINGRAPH=0`` to fall back to considering every remaining
  atom (the pre-join-graph behaviour), or ``ordering="greedy"`` to
  bypass the cost model entirely.

:func:`compile_program` is the module-level compilation cache: one
:class:`~repro.datalog.plan.physical.PhysicalPlan` per (program,
ordering), shared by every session of every service in the process.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.config import env_flag
from repro.errors import PlanError
from repro.datalog.ast import Program, Variable
from repro.datalog.plan.cost import CostModel
from repro.datalog.plan.logical import AtomNode, LogicalPlan

if TYPE_CHECKING:
    from repro.datalog.plan.physical import IncrementalExecutor, PhysicalPlan
    from repro.relalg.indexes import FactStore

ORDERING_COST = "cost"
ORDERING_GREEDY = "greedy"
ORDERINGS = (ORDERING_COST, ORDERING_GREEDY)


def greedy_order(
    positive: Sequence[AtomNode],
    store: "FactStore | None" = None,
    first: AtomNode | None = None,
) -> list[AtomNode]:
    """Greedy selectivity ordering of the positive body atoms.

    At each step pick the atom with the most terms already bound
    (constants plus variables bound by earlier atoms); ties go to the
    atom over the smaller relation, then to body order, which keeps the
    ordering deterministic.  Without a store the size tiebreak is
    skipped (static ordering).
    """
    remaining = list(positive)
    order: list[AtomNode] = []
    bound: set[Variable] = set()
    if first is not None:
        remaining.remove(first)
        order.append(first)
        bound.update(first.variables)
    while remaining:
        best_index = 0
        best_score: tuple[int, int] | None = None
        for i, info in enumerate(remaining):
            bound_terms = info.constant_count + sum(
                1 for v in info.variables if v in bound
            )
            size = store.count(info.atom.predicate) if store is not None else 0
            score = (-bound_terms, size)
            if best_score is None or score < best_score:
                best_score = score
                best_index = i
        chosen = remaining.pop(best_index)
        order.append(chosen)
        bound.update(chosen.variables)
    return order


def joingraph_enabled() -> bool:
    """Whether join-graph-aware ordering is on (``REPRO_JOINGRAPH``)."""
    return env_flag("REPRO_JOINGRAPH", default=True, error=PlanError)


def cost_order(
    positive: Sequence[AtomNode],
    store: "FactStore",
    model: CostModel | None = None,
    first: AtomNode | None = None,
    adjacency: "Mapping[int, frozenset[int]] | None" = None,
) -> list[AtomNode]:
    """Cost-based ordering: cheapest estimated enumeration next.

    The primary key is the cost model's row estimate; the greedy
    (bound-terms, size, body-order) score breaks exact ties so the
    order degrades gracefully to the greedy one when statistics cannot
    discriminate (e.g. every candidate is an unindexed scan of the same
    size).

    With ``adjacency`` (a rule's precomputed join graph) the expansion
    is restricted to *connected* candidates: once a seed atom is placed,
    only atoms sharing a variable with the subplan so far compete, and
    disconnected components are started fresh only when the frontier
    runs dry.  The seed (and each new component's seed) is still chosen
    by cost over all remaining atoms.
    """
    if model is None:
        model = CostModel(store)
    remaining = list(positive)
    order: list[AtomNode] = []
    bound: set[Variable] = set()
    chosen_ids: set[int] = set()
    frontier: set[int] = set()
    if first is not None:
        remaining.remove(first)
        order.append(first)
        bound.update(first.variables)
        if adjacency is not None:
            chosen_ids.add(first.index)
            frontier |= adjacency.get(first.index, frozenset())
    while remaining:
        if adjacency is not None and frontier:
            candidates = [
                (i, info)
                for i, info in enumerate(remaining)
                if info.index in frontier
            ]
            if not candidates:
                candidates = list(enumerate(remaining))
        else:
            candidates = list(enumerate(remaining))
        best_index = candidates[0][0]
        best_score: tuple[float, int, int] | None = None
        for i, info in candidates:
            bound_terms = info.constant_count + sum(
                1 for v in info.variables if v in bound
            )
            score = (
                model.estimate(info, bound),
                -bound_terms,
                store.count(info.atom.predicate),
            )
            if best_score is None or score < best_score:
                best_score = score
                best_index = i
        chosen = remaining.pop(best_index)
        order.append(chosen)
        bound.update(chosen.variables)
        if adjacency is not None:
            chosen_ids.add(chosen.index)
            frontier |= adjacency.get(chosen.index, frozenset())
            frontier -= chosen_ids
    return order


class Planner:
    """Compiles programs into physical plans under one ordering policy."""

    __slots__ = ("ordering",)

    def __init__(self, ordering: str = ORDERING_COST) -> None:
        if ordering not in ORDERINGS:
            raise PlanError(
                f"unknown ordering {ordering!r}; expected one of {ORDERINGS}"
            )
        self.ordering = ordering

    def plan(self, program: "Program | LogicalPlan") -> "PhysicalPlan":
        """The physical plan of ``program`` under this planner's policy."""
        from repro.datalog.plan.physical import PhysicalPlan

        if isinstance(program, LogicalPlan):
            logical = program
        else:
            logical = LogicalPlan.of(program)
        return PhysicalPlan(logical, self.ordering)


# -- process-wide compilation cache -------------------------------------------

_plan_cache: dict[tuple[Program, str], "PhysicalPlan"] = {}
_PLAN_CACHE_LIMIT = 1024
_cache_info = {"compiled": 0, "hits": 0}
# The cache is process-wide and sessions may be created from worker
# threads (concurrent submit_batch restores sessions lazily), so every
# lookup-or-compile is serialized: one (program, ordering) pair is
# compiled exactly once no matter how many threads race on first touch,
# and the compiled/hits counters stay exact.
_plan_cache_lock = threading.Lock()


def compile_cached(
    program: Program, ordering: str = ORDERING_COST
) -> tuple["PhysicalPlan", bool]:
    """``(plan, was_cache_hit)`` for one (program, ordering) pair."""
    key = (program, ordering)
    with _plan_cache_lock:
        plan = _plan_cache.get(key)
        if plan is not None:
            _cache_info["hits"] += 1
            return plan, True
        if len(_plan_cache) >= _PLAN_CACHE_LIMIT:
            _plan_cache.clear()
        plan = Planner(ordering).plan(program)
        _plan_cache[key] = plan
        _cache_info["compiled"] += 1
        return plan, False


def compile_program(
    program: Program, ordering: str = ORDERING_COST
) -> "PhysicalPlan":
    """The shared compiled plan of ``program`` (cached per ordering)."""
    plan, _hit = compile_cached(program, ordering)
    return plan


def incremental_executor_for(
    program: Program,
    *,
    volatile: "Sequence[str] | frozenset[str]",
    monotone: "Sequence[str] | frozenset[str]",
    ordering: str = ORDERING_COST,
) -> "IncrementalExecutor | None":
    """A delta-capable executor over the shared cached plan, or ``None``.

    The one-stop compilation path for cross-step incremental stepping:
    compiles (or reuses) the process-wide plan for ``program``, attempts
    to build an :class:`~repro.datalog.plan.physical.IncrementalExecutor`
    with the given volatile/monotone predicate classification, and
    charges the compile-vs-hit outcome to the executor's counters.
    Programs outside the incremental scope (non-flat) return ``None`` so
    callers can fall back to full per-step evaluation.  Used both by the
    transducer runtime (per-session output stepping) and by the
    verification monitors of :mod:`repro.verify.api` (delta-checkable
    property programs).
    """
    plan, hit = compile_cached(program, ordering)
    try:
        executor = plan.new_incremental(volatile=volatile, monotone=monotone)
    except PlanError:
        return None
    if hit:
        executor.counters.plan_cache_hits += 1
    else:
        executor.counters.plans_compiled += 1
    return executor


def plan_cache_info() -> dict[str, int]:
    """Process-wide compilation counters (plans compiled / cache hits)."""
    with _plan_cache_lock:
        return {
            "compiled": _cache_info["compiled"],
            "hits": _cache_info["hits"],
            "size": len(_plan_cache),
        }


def clear_plan_cache() -> None:
    """Drop all compiled plans (tests and benchmarks)."""
    with _plan_cache_lock:
        _plan_cache.clear()
