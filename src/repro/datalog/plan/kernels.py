"""Compiled rule kernels: specialized closures for hot join bodies.

The reference executor in :mod:`repro.datalog.plan.physical` interprets
a rule body per row: for every candidate it walks the atom's terms,
branching on term kind (constant? variable? bound?) and maintaining a
binding dict with an undo trail.  Those branches are the same for every
row -- they depend only on the rule and the join order -- so a *kernel*
resolves them once at compile time and runs the join as a chain of
closures over a flat environment:

* variables become integer *slots* in a per-call environment list
  (assigned in binding order along the join), so binding is a list
  store and an equality recheck is a list read -- no dict, no trail;
* each join level precomputes its access mode (id-bucket index lookup /
  membership test / scan), its lookup-key recipe, which positions bind
  fresh slots, and which positions recheck already-bound ones;
* negated atoms, inequalities, and the head tuple compile to closures
  reading the same slots.

Kernels enumerate candidates through the columnar side of
:class:`~repro.relalg.indexes.FactStore` -- :meth:`lookup_ids` id
buckets dereferenced against the shared :meth:`row_list` -- rather than
the tuple-bucket index the interpreter uses.

One kernel is compiled per (rule, join order) and cached on the rule
(see :class:`~repro.datalog.plan.physical.CompiledRule`), with two entry
points: the full join, and the semi-naive variant whose first level
enumerates supplied delta rows (filtering constants and bound positions
explicitly, since those rows bypass the index).  Kernels derive exactly
the tuples the interpreter derives -- the hypothesis equivalence suite
in ``tests/test_kernels.py`` pins that -- and ``REPRO_COMPILED_KERNELS=0``
switches every caller back to the interpreter.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.config import env_flag
from repro.errors import EvaluationError, PlanError
from repro.datalog.ast import Constant, Inequality, NegatedAtom
from repro.datalog.plan.logical import AtomNode, RuleNode
from repro.relalg.indexes import FactStore

__all__ = ["Kernel", "compile_kernel", "kernels_enabled"]

# (is_slot, slot_or_value) recipe entries; a compiled term reference.
_Part = tuple[bool, object]
# check(store, env) -> bool closures compiled from negations/inequalities.
_Check = Callable[[FactStore, list], bool]

_MODE_CONTAINS = 0
_MODE_INDEX = 1
_MODE_SCAN = 2


def kernels_enabled() -> bool:
    """Whether compiled kernels are on (``REPRO_COMPILED_KERNELS``)."""
    return env_flag("REPRO_COMPILED_KERNELS", default=True, error=PlanError)


def _part(term, slot_of: dict) -> _Part:
    if isinstance(term, Constant):
        return (False, term.value)
    return (True, slot_of[term])


def _parts(terms, slot_of: dict) -> tuple[_Part, ...]:
    return tuple(_part(term, slot_of) for term in terms)


def _compile_check(check, slot_of: dict) -> _Check:
    """One negated atom or inequality as a ``(store, env) -> bool`` closure."""
    if isinstance(check, NegatedAtom):
        pred = check.atom.predicate
        parts = _parts(check.atom.terms, slot_of)

        def run_negated(store: FactStore, env: list) -> bool:
            return not store.contains(
                pred, tuple(env[x] if f else x for f, x in parts)
            )

        return run_negated
    if isinstance(check, Inequality):
        left_is_slot, left = _part(check.left, slot_of)
        right_is_slot, right = _part(check.right, slot_of)

        def run_inequality(store: FactStore, env: list) -> bool:
            return (env[left] if left_is_slot else left) != (
                env[right] if right_is_slot else right
            )

        return run_inequality
    raise EvaluationError(f"not a checkable literal: {check}")


class _LevelSpec:
    """The precomputed join plan of one level (one positive atom)."""

    __slots__ = (
        "pred", "arity", "mode", "positions", "key_parts",
        "binds", "rechecks", "const_checks",
    )

    def __init__(self, atom, bound_slots: dict, slot_of: dict) -> None:
        positions: list[int] = []
        key_parts: list[_Part] = []
        binds: list[tuple[int, int]] = []
        rechecks: list[tuple[int, int]] = []
        const_checks: list[tuple[int, object]] = []
        seen_here: set = set()
        for p, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                positions.append(p)
                key_parts.append((False, term.value))
                const_checks.append((p, term.value))
            elif term in bound_slots:
                positions.append(p)
                key_parts.append((True, bound_slots[term]))
            elif term in seen_here:
                rechecks.append((p, slot_of[term]))
            else:
                slot = slot_of.setdefault(term, len(slot_of))
                binds.append((p, slot))
                seen_here.add(term)
        self.pred = atom.predicate
        self.arity = atom.arity
        self.positions = tuple(positions)
        self.key_parts = tuple(key_parts)
        self.binds = tuple(binds)
        self.rechecks = tuple(rechecks)
        self.const_checks = tuple(const_checks)
        if len(positions) == self.arity:
            self.mode = _MODE_CONTAINS
        elif positions:
            self.mode = _MODE_INDEX
        else:
            self.mode = _MODE_SCAN


def _make_emit(head_parts: tuple[_Part, ...]):
    def emit(store: FactStore, env: list, derived: set) -> None:
        derived.add(tuple(env[x] if f else x for f, x in head_parts))

    return emit


def _make_level(spec: _LevelSpec, checks: tuple[_Check, ...], nxt):
    """The closure running one join level, chaining into ``nxt``.

    Three specializations, chosen at compile time: fully-bound levels
    become a membership test, partially-bound ones an id-bucket lookup
    over the columnar index, unbound ones a row-list scan.
    """
    pred = spec.pred
    arity = spec.arity
    key_parts = spec.key_parts
    positions = spec.positions
    binds = spec.binds
    rechecks = spec.rechecks

    if spec.mode == _MODE_CONTAINS:

        def run_contains(store: FactStore, env: list, derived: set) -> None:
            row = tuple(env[x] if f else x for f, x in key_parts)
            if not store.contains(pred, row):
                return
            for check in checks:
                if not check(store, env):
                    return
            nxt(store, env, derived)

        return run_contains

    # The per-row body is inlined into both loops (instead of a shared
    # closure) to keep one Python call per candidate off the hot path.
    # Index lookups already filtered the key positions, so only fresh
    # binds and repeated variables remain per row.
    if spec.mode == _MODE_INDEX:

        def run_index(store: FactStore, env: list, derived: set) -> None:
            ids = store.lookup_ids(
                pred, positions, tuple(env[x] if f else x for f, x in key_parts)
            )
            if not ids:
                return
            rows = store.row_list(pred)
            for rid in ids:
                row = rows[rid]
                if len(row) != arity:
                    continue
                for p, s in binds:
                    env[s] = row[p]
                ok = True
                for p, s in rechecks:
                    if row[p] != env[s]:
                        ok = False
                        break
                if ok:
                    for check in checks:
                        if not check(store, env):
                            ok = False
                            break
                if ok:
                    nxt(store, env, derived)

        return run_index

    def run_scan(store: FactStore, env: list, derived: set) -> None:
        for row in store.row_list(pred):
            if len(row) != arity:
                continue
            for p, s in binds:
                env[s] = row[p]
            ok = True
            for p, s in rechecks:
                if row[p] != env[s]:
                    ok = False
                    break
            if ok:
                for check in checks:
                    if not check(store, env):
                        ok = False
                        break
            if ok:
                nxt(store, env, derived)

    return run_scan


def _make_delta_entry(spec: _LevelSpec, checks: tuple[_Check, ...], nxt):
    """The first level of the semi-naive variant: enumerate given rows.

    Delta rows arrive from the caller instead of an index lookup, so the
    constants (and any repeated variables) the index would have filtered
    are checked explicitly here.  Nothing is bound before level 0, so
    there are no prior-slot positions to recheck.
    """
    arity = spec.arity
    const_checks = spec.const_checks
    binds = spec.binds
    rechecks = spec.rechecks

    def run_delta(
        store: FactStore, env: list, derived: set, rows
    ) -> None:
        for row in rows:
            if len(row) != arity:
                continue
            ok = True
            for p, v in const_checks:
                if row[p] != v:
                    ok = False
                    break
            if not ok:
                continue
            for p, s in binds:
                env[s] = row[p]
            for p, s in rechecks:
                if row[p] != env[s]:
                    ok = False
                    break
            if not ok:
                continue
            for check in checks:
                if not check(store, env):
                    ok = False
                    break
            if ok:
                nxt(store, env, derived)

    return run_delta


class Kernel:
    """A compiled (rule, join order) pair: full and delta entry points."""

    __slots__ = ("nslots", "_full", "_delta")

    def __init__(self, nslots: int, full, delta) -> None:
        self.nslots = nslots
        self._full = full
        self._delta = delta

    def run_full(self, store: FactStore, derived: set) -> None:
        """Run the full join, adding head tuples to ``derived``."""
        self._full(store, [None] * self.nslots, derived)

    def run_delta(self, store: FactStore, derived: set, rows) -> None:
        """Run the join with level 0 restricted to ``rows`` (the delta)."""
        self._delta(store, [None] * self.nslots, derived, rows)


def compile_kernel(
    node: RuleNode,
    order: Sequence[AtomNode],
    checks_at: Sequence[Sequence],
) -> Kernel:
    """Compile one rule body, joined in ``order``, into a :class:`Kernel`.

    ``checks_at`` is the check schedule for this order (see
    :meth:`~repro.datalog.plan.physical.CompiledRule.schedule`): the
    negations/inequalities to evaluate right after each level matches.
    Pre-checks (ground literals) stay with the caller.
    """
    if not order:
        raise PlanError("cannot compile a kernel for an empty join order")
    slot_of: dict = {}
    bound_slots: dict = {}
    specs: list[_LevelSpec] = []
    for info in order:
        spec = _LevelSpec(info.atom, bound_slots, slot_of)
        specs.append(spec)
        for variable in info.variables:
            bound_slots[variable] = slot_of[variable]
    compiled_checks = [
        tuple(_compile_check(check, slot_of) for check in checks)
        for checks in checks_at
    ]
    head_parts = _parts(node.rule.head.terms, slot_of)
    # Build the chain innermost-first; levels 1.. are shared between the
    # full and delta entry points (only level 0 differs).
    chain = _make_emit(head_parts)
    for i in range(len(order) - 1, 0, -1):
        chain = _make_level(specs[i], compiled_checks[i], chain)
    full = _make_level(specs[0], compiled_checks[0], chain)
    delta = _make_delta_entry(specs[0], compiled_checks[0], chain)
    return Kernel(len(slot_of), full, delta)
