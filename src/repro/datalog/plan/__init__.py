"""The query-plan API of the datalog layer.

The evaluation pipeline is explicit and typed:

``Program`` -> :class:`LogicalPlan` (stratification + per-rule atom
graphs) -> :class:`Planner` (join ordering: cost-based over
:class:`~repro.relalg.indexes.FactStore` index statistics with
connected-subgraph expansion over the rule's join graph, greedy
fallback) -> :class:`PhysicalPlan` (``execute`` / ``execute_delta`` /
``explain``; hot bodies run as compiled closures, see
:mod:`repro.datalog.plan.kernels`) -> optionally an
:class:`IncrementalExecutor` for cross-step delta evaluation of flat
programs over monotone facts.

:func:`compile_program` is the process-wide compilation cache the thin
wrappers in :mod:`repro.datalog.evaluate` and the transducer runtime
share.
"""

from repro.datalog.plan.cost import CostModel, bound_positions
from repro.datalog.plan.logical import AtomNode, LogicalPlan, RuleNode
from repro.datalog.plan.planner import (
    ORDERING_COST,
    ORDERING_GREEDY,
    ORDERINGS,
    Planner,
    clear_plan_cache,
    compile_cached,
    compile_program,
    cost_order,
    greedy_order,
    incremental_executor_for,
    joingraph_enabled,
    plan_cache_info,
)
from repro.datalog.plan.kernels import Kernel, compile_kernel, kernels_enabled
from repro.datalog.plan.physical import (
    CATEGORY_DELTA,
    CATEGORY_RECOMPUTE,
    CATEGORY_STATIC,
    CompiledRule,
    EvalCounters,
    IncrementalExecutor,
    PhysicalPlan,
    derive_rule,
)

__all__ = [
    "AtomNode",
    "LogicalPlan",
    "RuleNode",
    "CostModel",
    "bound_positions",
    "Planner",
    "ORDERING_COST",
    "ORDERING_GREEDY",
    "ORDERINGS",
    "greedy_order",
    "cost_order",
    "joingraph_enabled",
    "Kernel",
    "compile_kernel",
    "kernels_enabled",
    "compile_program",
    "compile_cached",
    "incremental_executor_for",
    "plan_cache_info",
    "clear_plan_cache",
    "PhysicalPlan",
    "CompiledRule",
    "IncrementalExecutor",
    "EvalCounters",
    "derive_rule",
    "CATEGORY_DELTA",
    "CATEGORY_RECOMPUTE",
    "CATEGORY_STATIC",
]
