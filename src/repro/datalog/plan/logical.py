"""Logical query plans: the analyzed, execution-free view of a program.

A :class:`LogicalPlan` is built once from a
:class:`~repro.datalog.ast.Program` and captures everything that is
purely syntactic: the stratification, whether the program is recursive,
and -- per rule -- the safety-checked decomposition of the body into
positive atoms (the join inputs) and checks (negated atoms and
inequalities), plus the variable-sharing graph between the positive
atoms.  Nothing here touches facts; choosing a join order and running it
is the :class:`~repro.datalog.plan.planner.Planner` /
:class:`~repro.datalog.plan.physical.PhysicalPlan` side of the API.
"""

from __future__ import annotations

from functools import lru_cache

from repro.datalog.ast import (
    Constant,
    NegatedAtom,
    PositiveAtom,
    Program,
    Rule,
    Variable,
)
from repro.datalog.safety import check_rule_safety
from repro.datalog.stratify import is_nonrecursive, stratify


class AtomNode:
    """One positive body atom as a join input.

    ``index`` is the atom's position among the rule's positive atoms in
    body order -- the identity used by delta restriction and by the
    check schedules.
    """

    __slots__ = ("index", "atom", "variables", "constant_count")

    def __init__(self, index: int, atom) -> None:
        self.index = index
        self.atom = atom
        self.variables = frozenset(atom.variables())
        self.constant_count = sum(
            1 for term in atom.terms if isinstance(term, Constant)
        )

    def __repr__(self) -> str:
        return f"AtomNode({self.index}, {self.atom})"


class RuleNode:
    """The analyzed body of one safety-checked rule.

    ``positive`` are the join inputs; ``pre_checks`` are ground checks
    (no variables) runnable before any join work; ``checks`` are the
    remaining negated atoms and inequalities, to be scheduled as soon as
    their variables are bound.
    """

    __slots__ = ("rule", "positive", "checks", "pre_checks",
                 "positive_preds", "negated_preds", "body_preds",
                 "adjacency")

    def __init__(self, rule: Rule) -> None:
        check_rule_safety(rule)
        self.rule = rule
        self.positive = [
            AtomNode(i, literal.atom)
            for i, literal in enumerate(
                l for l in rule.body if isinstance(l, PositiveAtom)
            )
        ]
        checks = [l for l in rule.body if not isinstance(l, PositiveAtom)]
        self.pre_checks = [c for c in checks if not set(c.variables())]
        self.checks = [c for c in checks if set(c.variables())]
        # Predicate sets are consulted per delta pass / fixpoint
        # iteration; precompute them once per (process-wide) plan.
        self.positive_preds = frozenset(
            node.atom.predicate for node in self.positive
        )
        self.negated_preds = frozenset(
            check.atom.predicate
            for check in (*self.pre_checks, *self.checks)
            if isinstance(check, NegatedAtom)
        )
        self.body_preds = self.positive_preds | self.negated_preds
        # Variable-sharing adjacency between the positive atoms, keyed
        # by atom index.  Computed once per (process-wide) plan: the
        # join-graph-aware orderer walks it on every (re)ordering.
        adjacency: dict[int, set[int]] = {
            node.index: set() for node in self.positive
        }
        for a in self.positive:
            for b in self.positive:
                if a.index < b.index and a.variables & b.variables:
                    adjacency[a.index].add(b.index)
                    adjacency[b.index].add(a.index)
        self.adjacency: dict[int, frozenset[int]] = {
            index: frozenset(neighbors)
            for index, neighbors in adjacency.items()
        }

    def positive_predicates(self) -> frozenset[str]:
        return self.positive_preds

    def negated_predicates(self) -> frozenset[str]:
        return self.negated_preds

    def join_graph(self) -> dict[int, frozenset[int]]:
        """Variable-sharing adjacency between the positive atoms.

        ``graph[i]`` holds the indexes of the atoms sharing at least one
        variable with atom ``i`` -- the structure a join order walks.
        Precomputed at analysis time (see :attr:`adjacency`).
        """
        return self.adjacency

    def variables(self) -> set[Variable]:
        out: set[Variable] = set()
        for node in self.positive:
            out |= node.variables
        return out

    def __repr__(self) -> str:
        return f"RuleNode({self.rule})"


class LogicalPlan:
    """A stratified program with per-rule atom graphs.

    ``strata`` is the predicate stratification, ``rules`` the analyzed
    rule nodes in program order, and ``nonrecursive`` records whether
    any IDB predicate depends on itself -- the property that gates
    single-pass execution and cross-step incremental stepping.
    """

    __slots__ = ("program", "strata", "rules", "nonrecursive", "idb")

    def __init__(self, program: Program) -> None:
        self.program = program
        self.strata = stratify(program)
        self.rules = [RuleNode(rule) for rule in program]
        self.nonrecursive = is_nonrecursive(program)
        self.idb = program.head_predicates()

    @classmethod
    def of(cls, program: Program) -> "LogicalPlan":
        """The (cached) logical plan of ``program``."""
        return _logical_cached(program)

    def strata_rules(self) -> list[list[RuleNode]]:
        """Rule nodes grouped by the stratum their head belongs to."""
        grouped: list[list[RuleNode]] = []
        for stratum in self.strata:
            members = [
                node
                for node in self.rules
                if node.rule.head.predicate in stratum & self.idb
            ]
            if members:
                grouped.append(members)
        return grouped

    def __repr__(self) -> str:
        shape = "nonrecursive" if self.nonrecursive else "recursive"
        return (
            f"LogicalPlan({len(self.rules)} rules, "
            f"{len(self.strata)} strata, {shape})"
        )


@lru_cache(maxsize=1024)
def _logical_cached(program: Program) -> LogicalPlan:
    return LogicalPlan(program)
