"""The planner's cost model over FactStore index statistics.

The unit cost of placing an atom next in a join order is the expected
number of rows the executor will enumerate for it given the variables
already bound: a full scan costs the relation's cardinality, an index
lookup costs the average bucket of the (predicate, bound-positions)
index (``rows / distinct_keys``), and a fully-bound atom costs a single
membership probe.  The statistics come straight from
:meth:`~repro.relalg.indexes.FactStore.index_stats`, i.e. from the very
hash indexes the executor uses, so estimate and execution never drift
apart structurally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.datalog.ast import Constant, Variable

if TYPE_CHECKING:
    from repro.datalog.plan.logical import AtomNode
    from repro.relalg.indexes import FactStore


def bound_positions(node: "AtomNode", bound: set[Variable]) -> tuple[int, ...]:
    """The term positions of ``node`` that a partial binding determines."""
    positions = []
    for i, term in enumerate(node.atom.terms):
        if isinstance(term, Constant) or term in bound:
            positions.append(i)
    return tuple(positions)


class CostModel:
    """Row-count estimates against one live :class:`FactStore`."""

    __slots__ = ("_store",)

    def __init__(self, store: "FactStore") -> None:
        self._store = store

    def estimate(self, node: "AtomNode", bound: set[Variable]) -> float:
        """Expected rows enumerated when ``node`` joins next.

        ``bound`` is the set of variables bound by the atoms already
        placed; constants in the atom count as bound positions too.
        """
        predicate = node.atom.predicate
        rows = self._store.count(predicate)
        positions = bound_positions(node, bound)
        if not positions:
            return float(rows)
        if len(positions) == node.atom.arity:
            # Fully bound: a single membership probe.
            return 1.0
        stats = self._store.index_stats(predicate, positions)
        if stats.distinct_keys <= 0:
            return float(rows)
        return stats.rows / stats.distinct_keys
