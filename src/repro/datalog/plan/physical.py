"""Physical plans: executable joins, delta passes, and explain output.

A :class:`PhysicalPlan` binds a
:class:`~repro.datalog.plan.logical.LogicalPlan` to an ordering policy
and executes it with the indexed join machinery (hash-index candidate
enumeration, single mutable binding with an undo trail, checks scheduled
as soon as their variables are bound):

* :meth:`PhysicalPlan.execute` runs the full stratified fixpoint --
  the engine behind :func:`repro.datalog.evaluate.evaluate_program`;
* :meth:`PhysicalPlan.execute_delta` runs one semi-naive delta pass
  (each rule restricted, per positive occurrence, to the delta rows) --
  the building block of both the in-fixpoint iteration and cross-step
  incremental evaluation;
* :meth:`PhysicalPlan.explain` renders a stable, testable description
  of the chosen join orders and check schedules;
* :meth:`PhysicalPlan.new_incremental` returns an
  :class:`IncrementalExecutor` that steps a *flat* program (no derived
  predicate in any body -- every Spocus output program) against
  monotonically growing facts, caching per-rule results between steps
  and re-deriving only from the delta.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping, Sequence

from dataclasses import dataclass, fields, replace

from repro.errors import EvaluationError, PlanError
from repro.datalog.ast import (
    Constant,
    Inequality,
    NegatedAtom,
    Variable,
)
from repro.datalog.plan.cost import CostModel
from repro.datalog.plan.logical import AtomNode, LogicalPlan, RuleNode
from repro.datalog.plan.planner import (
    ORDERING_COST,
    ORDERINGS,
    cost_order,
    greedy_order,
)
from repro.relalg.indexes import FactStore

Facts = Mapping[str, frozenset[tuple]]
Binding = dict[Variable, object]

_UNSET = object()


def coerce_store(facts: "Facts | FactStore") -> FactStore:
    if isinstance(facts, FactStore):
        return facts
    return FactStore(facts)


def _term_value(term, binding: Binding):
    if isinstance(term, Constant):
        return term.value
    if term in binding:
        return binding[term]
    return _UNSET


def _check_bound_literal(literal, binding: Binding, store: FactStore) -> bool:
    """Evaluate a fully-bound negated atom or inequality."""
    if isinstance(literal, NegatedAtom):
        row = literal.atom.ground_tuple(binding)
        return not store.contains(literal.atom.predicate, row)
    if isinstance(literal, Inequality):
        return _term_value(literal.left, binding) != _term_value(
            literal.right, binding
        )
    raise EvaluationError(f"not a checkable literal: {literal}")


def _candidate_rows(atom, binding: Binding, store: FactStore):
    """The rows of ``atom``'s relation compatible with ``binding``.

    Uses a hash-index lookup on the bound positions; falls back to a
    membership test when every position is bound and to a full scan when
    none is.
    """
    positions: list[int] = []
    key: list = []
    for i, term in enumerate(atom.terms):
        value = _term_value(term, binding)
        if value is not _UNSET:
            positions.append(i)
            key.append(value)
    if len(positions) == len(atom.terms):
        row = tuple(key)
        if store.contains(atom.predicate, row):
            return (row,)
        return ()
    if positions:
        return store.lookup(atom.predicate, tuple(positions), tuple(key))
    return store.rows(atom.predicate)


def _match_into(
    atom, row: tuple, binding: Binding, trail: list[Variable]
) -> bool:
    """Extend ``binding`` in place so ``atom`` matches ``row``.

    Newly bound variables are pushed on ``trail``; on mismatch the
    caller unwinds via :func:`_undo_to`.  Index lookups already filtered
    on the bound positions, so this only binds fresh variables and
    re-checks repeated ones.
    """
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if term.value != value:
                return False
        else:
            bound = binding.get(term, _UNSET)
            if bound is _UNSET:
                binding[term] = value
                trail.append(term)
            elif bound != value:
                return False
    return True


def _undo_to(binding: Binding, trail: list[Variable], mark: int) -> None:
    while len(trail) > mark:
        del binding[trail.pop()]


def make_orderer(ordering: str, store: FactStore | None):
    """The ``(atoms, first) -> order`` strategy for one ordering policy.

    Cost ordering needs live statistics, so without a store it degrades
    to the static greedy order (the documented stats-absent fallback).
    """
    if ordering == ORDERING_COST and store is not None:
        model = CostModel(store)
        return lambda positive, first=None: cost_order(
            positive, store, model, first
        )
    return lambda positive, first=None: greedy_order(positive, store, first)


class CompiledRule:
    """One rule's physical state: its node plus memoized check schedules.

    Compiled rules live inside the process-wide shared
    :class:`PhysicalPlan`, so concurrent sessions executing the same
    plan may race on a schedule's first use; the memo is therefore
    built under a lock and published whole, with the (hot) cached path
    staying lock-free.
    """

    __slots__ = ("node", "_schedules", "_schedule_lock")

    def __init__(self, node: RuleNode) -> None:
        self.node = node
        self._schedules: dict[tuple[int, ...], list[list]] = {}
        self._schedule_lock = threading.Lock()

    def schedule(self, order: Sequence[AtomNode]) -> list[list]:
        """``checks_at[i]``: checks to run right after ``order[i]`` matches."""
        key = tuple(info.index for info in order)
        cached = self._schedules.get(key)
        if cached is not None:
            return cached
        with self._schedule_lock:
            cached = self._schedules.get(key)
            if cached is not None:
                return cached
            checks_at: list[list] = [[] for _ in order]
            bound: set[Variable] = set()
            bound_by: list[set[Variable]] = []
            for info in order:
                bound |= info.variables
                bound_by.append(set(bound))
            for check in self.node.checks:
                variables = set(check.variables())
                for i, available in enumerate(bound_by):
                    if variables <= available:
                        checks_at[i].append(check)
                        break
                else:
                    raise EvaluationError(
                        f"literal {check} has variables not bound by any "
                        "positive atom"
                    )
            self._schedules[key] = checks_at
        return checks_at


def _join(
    crule: CompiledRule,
    store: FactStore,
    orderer,
    derived: set[tuple],
    first: AtomNode | None = None,
    first_rows=None,
) -> None:
    """Run the indexed join for one rule, adding head tuples to ``derived``.

    With ``first``/``first_rows`` given, that occurrence is evaluated
    first and enumerates only ``first_rows`` (the semi-naive delta
    restriction); the other atoms read the full store.
    """
    node = crule.node
    for check in node.pre_checks:
        if not _check_bound_literal(check, {}, store):
            return
    order = orderer(node.positive, first)
    checks_at = crule.schedule(order)
    head = node.rule.head
    binding: Binding = {}
    trail: list[Variable] = []
    depth = len(order)

    def extend(index: int) -> None:
        if index == depth:
            derived.add(head.ground_tuple(binding))
            return
        atom = order[index].atom
        if index == 0 and first_rows is not None:
            candidates = first_rows
        else:
            candidates = _candidate_rows(atom, binding, store)
        slot_checks = checks_at[index]
        for row in candidates:
            if len(row) != atom.arity:
                continue
            mark = len(trail)
            if _match_into(atom, row, binding, trail):
                if all(
                    _check_bound_literal(check, binding, store)
                    for check in slot_checks
                ):
                    extend(index + 1)
            _undo_to(binding, trail, mark)

    extend(0)


def derive_rule(
    crule: CompiledRule,
    store: FactStore,
    orderer,
    delta: Facts | None = None,
) -> set[tuple]:
    """All head tuples one rule derives (optionally delta-restricted)."""
    node = crule.node
    derived: set[tuple] = set()
    if not node.positive:
        # Body is empty or has only checks over constants.  A delta pass
        # can never use such a rule (no positive occurrence to restrict).
        if delta is not None:
            return derived
        if all(_check_bound_literal(c, {}, store) for c in node.pre_checks):
            derived.add(node.rule.head.ground_tuple({}))
        return derived
    if delta is None:
        _join(crule, store, orderer, derived)
        return derived
    for info in node.positive:
        delta_rows = delta.get(info.atom.predicate)
        if not delta_rows:
            continue
        _join(crule, store, orderer, derived, first=info, first_rows=delta_rows)
    return derived


@dataclass
class EvalCounters:
    """Plan/evaluation counters of one session (or one executor).

    ``full_rule_evals`` counts complete joins of a rule body;
    ``delta_rule_evals`` counts delta-restricted joins;
    ``delta_rules_skipped`` counts incremental rules skipped outright
    because their delta was empty; ``static_cache_hits`` counts
    database-only rules served from cache.  ``plans_compiled`` /
    ``plan_cache_hits`` record whether this session's physical plan was
    freshly compiled or reused.
    """

    plans_compiled: int = 0
    plan_cache_hits: int = 0
    full_rule_evals: int = 0
    delta_rule_evals: int = 0
    delta_rules_skipped: int = 0
    static_cache_hits: int = 0

    def copy(self) -> "EvalCounters":
        return replace(self)

    def __sub__(self, other: "EvalCounters") -> "EvalCounters":
        return EvalCounters(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


# Incremental rule categories: how one rule behaves across steps when
# ``volatile`` predicates change arbitrarily and ``monotone`` ones grow.
CATEGORY_RECOMPUTE = "recompute"  # touches volatile facts or negates monotone
CATEGORY_DELTA = "delta"  # monotone positive body: cache + delta join
CATEGORY_STATIC = "static"  # database-only body: cache forever


class IncrementalExecutor:
    """Cross-step incremental evaluation of one flat program.

    The contract: between successive :meth:`step` calls, the rows of
    every ``monotone`` predicate only grow and every non-``volatile``,
    non-``monotone`` predicate (the database) never changes -- exactly
    the Spocus situation, with per-step inputs volatile and cumulative
    state monotone.  Each rule is classified once:

    * ``recompute`` -- body mentions a volatile predicate (positively or
      negated) or negates a monotone one: its derivations can appear
      *and disappear*, so the rule re-joins every step (cheap: the
      ordering starts at the tiny per-step input relations);
    * ``delta`` -- positive atoms over monotone/database predicates
      only, negation only on the database: derivations are monotone, so
      the cached result is extended by a delta-restricted join over the
      step's new monotone rows (or skipped when nothing changed);
    * ``static`` -- database-only body: joined once, cached for the
      session's lifetime.

    An executor is per-session mutable state and is NOT thread-safe:
    the concurrent batch path keeps it safe by stepping each session on
    exactly one worker at a time (the shared, read-only
    :class:`PhysicalPlan` is what crosses threads).
    """

    __slots__ = ("plan", "volatile", "monotone", "categories", "_caches",
                 "_previous", "counters")

    def __init__(
        self,
        plan: "PhysicalPlan",
        volatile: Iterable[str],
        monotone: Iterable[str],
    ) -> None:
        program = plan.logical.program
        heads = program.head_predicates()
        if program.body_predicates() & heads:
            raise PlanError(
                "incremental execution needs a flat program (no derived "
                "predicate in any rule body)"
            )
        self.plan = plan
        self.volatile = frozenset(volatile)
        self.monotone = frozenset(monotone)
        overlap = self.volatile & self.monotone
        if overlap:
            raise PlanError(
                f"predicates cannot be volatile and monotone: {sorted(overlap)}"
            )
        self.categories: list[str] = []
        for crule in plan.compiled:
            node = crule.node
            positive = node.positive_predicates()
            negated = node.negated_predicates()
            if (positive | negated) & self.volatile:
                category = CATEGORY_RECOMPUTE
            elif negated & self.monotone:
                category = CATEGORY_RECOMPUTE
            elif positive & self.monotone:
                category = CATEGORY_DELTA
            else:
                category = CATEGORY_STATIC
            self.categories.append(category)
        self._caches: list[frozenset[tuple] | set[tuple] | None] = [
            None for _ in plan.compiled
        ]
        self._previous: dict[str, frozenset[tuple]] = {}
        self.counters = EvalCounters()

    def _delta_of(
        self, monotone_rows: Mapping[str, frozenset[tuple]]
    ) -> dict[str, frozenset[tuple]]:
        """New rows per monotone predicate since the previous step."""
        delta: dict[str, frozenset[tuple]] = {}
        for name, rows in monotone_rows.items():
            previous = self._previous.get(name)
            if previous is None:
                fresh = frozenset(rows)
            elif len(rows) == len(previous):
                continue  # monotone, so equal sizes mean equal sets
            else:
                fresh = frozenset(rows) - previous
            if fresh:
                delta[name] = fresh
        return delta

    def step(
        self,
        store: "Facts | FactStore",
        monotone_rows: Mapping[str, frozenset[tuple]],
    ) -> dict[str, frozenset[tuple]]:
        """Derive all head facts for the current step.

        ``store`` is the step's full fact store (volatile + monotone +
        database); ``monotone_rows`` the current rows of each monotone
        predicate, from which the executor computes the step's delta
        itself.  Returns every head predicate mapped to its derived
        rows.
        """
        store = coerce_store(store)
        orderer = self.plan.orderer(store)
        delta = self._delta_of(monotone_rows)
        counters = self.counters
        derived: dict[str, set[tuple]] = {
            predicate: set() for predicate in self.plan.logical.idb
        }
        for i, crule in enumerate(self.plan.compiled):
            category = self.categories[i]
            if category == CATEGORY_RECOMPUTE:
                rows = derive_rule(crule, store, orderer)
                counters.full_rule_evals += 1
            elif category == CATEGORY_STATIC:
                cache = self._caches[i]
                if cache is None:
                    cache = frozenset(derive_rule(crule, store, orderer))
                    self._caches[i] = cache
                    counters.full_rule_evals += 1
                else:
                    counters.static_cache_hits += 1
                rows = cache
            else:  # CATEGORY_DELTA
                cache = self._caches[i]
                if cache is None:
                    cache = derive_rule(crule, store, orderer)
                    counters.full_rule_evals += 1
                else:
                    relevant = {
                        name: delta[name]
                        for name in crule.node.positive_preds
                        if name in delta
                    }
                    if relevant:
                        cache |= derive_rule(
                            crule, store, orderer, delta=relevant
                        )
                        counters.delta_rule_evals += 1
                    else:
                        counters.delta_rules_skipped += 1
                self._caches[i] = cache
                rows = cache
            derived[crule.node.rule.head.predicate].update(rows)
        self._previous = {
            name: frozenset(rows) for name, rows in monotone_rows.items()
        }
        return {name: frozenset(rows) for name, rows in derived.items()}


class PhysicalPlan:
    """An executable plan: logical structure + ordering policy."""

    __slots__ = ("logical", "ordering", "compiled")

    def __init__(
        self, logical: LogicalPlan, ordering: str = ORDERING_COST
    ) -> None:
        if ordering not in ORDERINGS:
            raise PlanError(
                f"unknown ordering {ordering!r}; expected one of {ORDERINGS}"
            )
        self.logical = logical
        self.ordering = ordering
        self.compiled = [CompiledRule(node) for node in logical.rules]

    # -- ordering ----------------------------------------------------------------

    def orderer(self, store: FactStore | None):
        """An ``(atoms, first) -> order`` callable for one store."""
        return make_orderer(self.ordering, store)

    def _compiled_by_stratum(self) -> list[list[CompiledRule]]:
        by_node = {id(crule.node): crule for crule in self.compiled}
        return [
            [by_node[id(node)] for node in stratum]
            for stratum in self.logical.strata_rules()
        ]

    # -- execution ---------------------------------------------------------------

    def execute(
        self,
        facts: "Facts | FactStore",
        max_iterations: int = 100_000,
    ) -> dict[str, frozenset[tuple]]:
        """Stratified fixpoint evaluation; returns all facts (EDB + IDB).

        ``facts`` may be a plain mapping or a pre-indexed
        :class:`~repro.relalg.indexes.FactStore`; a store is layered
        over, never mutated, so its indexes (e.g. over a large shared
        catalog) are reused across executions.
        """
        if isinstance(facts, FactStore):
            store = FactStore(base=facts)
        else:
            store = FactStore(facts)
        for predicate in self.logical.idb:
            store.ensure(predicate)
        orderer = self.orderer(store)

        for stratum_rules in self._compiled_by_stratum():
            # First full pass.
            delta: dict[str, frozenset[tuple]] = {}
            for crule in stratum_rules:
                head = crule.node.rule.head.predicate
                fresh = store.add(head, derive_rule(crule, store, orderer))
                if fresh:
                    delta[head] = delta.get(head, frozenset()) | fresh
            # Semi-naive iteration to fixpoint.
            iterations = 0
            while delta:
                iterations += 1
                if iterations > max_iterations:
                    raise EvaluationError("fixpoint iteration budget exceeded")
                next_delta: dict[str, frozenset[tuple]] = {}
                for crule in stratum_rules:
                    node = crule.node
                    if not (node.body_preds & delta.keys()):
                        continue
                    head = node.rule.head.predicate
                    fresh = store.add(
                        head,
                        derive_rule(crule, store, orderer, delta=delta),
                    )
                    if fresh:
                        next_delta[head] = (
                            next_delta.get(head, frozenset()) | fresh
                        )
                delta = next_delta
        return store.as_dict()

    def execute_delta(
        self,
        facts: "Facts | FactStore",
        delta: Facts,
    ) -> dict[str, frozenset[tuple]]:
        """One semi-naive delta pass over every rule.

        For each rule, runs one join variant per positive occurrence
        whose predicate has delta rows, with that occurrence restricted
        to the delta; ``facts`` must already contain the delta rows.
        Returns the derived head tuples per head predicate (no
        fixpoint: for flat/nonrecursive programs a single pass is
        complete; recursive strata iterate this inside
        :meth:`execute`).
        """
        store = coerce_store(facts)
        orderer = self.orderer(store)
        derived: dict[str, frozenset[tuple]] = {}
        for crule in self.compiled:
            head = crule.node.rule.head.predicate
            rows = derive_rule(crule, store, orderer, delta=delta)
            if rows or head not in derived:
                derived[head] = derived.get(head, frozenset()) | rows
        return derived

    def new_incremental(
        self, volatile: Iterable[str], monotone: Iterable[str]
    ) -> IncrementalExecutor:
        """A per-session incremental executor over this (shared) plan."""
        return IncrementalExecutor(self, volatile, monotone)

    # -- explain -----------------------------------------------------------------

    def explain(self, store: "Facts | FactStore | None" = None) -> str:
        """A stable, testable description of the plan.

        With a store, join orders are the ones :meth:`execute` would
        choose against it right now, annotated with relation sizes and
        (under cost ordering) the cost model's row estimates.  Without
        one, the static fallback order is shown.
        """
        if store is not None and not isinstance(store, FactStore):
            store = FactStore(store)
        model = (
            CostModel(store)
            if store is not None and self.ordering == ORDERING_COST
            else None
        )
        orderer = self.orderer(store)
        shape = "nonrecursive" if self.logical.nonrecursive else "recursive"
        strata = self.logical.strata_rules()
        lines = [
            f"plan: ordering={self.ordering}, {len(self.compiled)} rules, "
            f"{len(strata)} strata, {shape}"
            + ("" if store is not None else " (no statistics: static order)")
        ]
        by_node = {id(crule.node): crule for crule in self.compiled}
        for number, stratum in enumerate(strata, 1):
            lines.append(f"stratum {number}:")
            for node in stratum:
                crule = by_node[id(node)]
                lines.append(f"  {node.rule}")
                if not node.positive:
                    lines.append("    join: (no positive atoms)")
                else:
                    order = orderer(node.positive)
                    parts = []
                    bound: set[Variable] = set()
                    for info in order:
                        if store is None:
                            parts.append(str(info.atom))
                        else:
                            rows = store.count(info.atom.predicate)
                            note = f"rows={rows}"
                            if model is not None:
                                estimate = model.estimate(info, bound)
                                note += f", est={estimate:g}"
                            parts.append(f"{info.atom} [{note}]")
                        bound |= info.variables
                    lines.append("    join: " + " -> ".join(parts))
                    for slot, checks in enumerate(crule.schedule(order)):
                        for check in checks:
                            lines.append(
                                f"    check after {order[slot].atom}: {check}"
                            )
                for check in node.pre_checks:
                    lines.append(f"    pre-check: {check}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PhysicalPlan(ordering={self.ordering!r}, "
            f"rules={len(self.compiled)})"
        )
