"""Physical plans: executable joins, delta passes, and explain output.

A :class:`PhysicalPlan` binds a
:class:`~repro.datalog.plan.logical.LogicalPlan` to an ordering policy
and executes it with the indexed join machinery (hash-index candidate
enumeration, single mutable binding with an undo trail, checks scheduled
as soon as their variables are bound):

* :meth:`PhysicalPlan.execute` runs the full stratified fixpoint --
  the engine behind :func:`repro.datalog.evaluate.evaluate_program`;
* :meth:`PhysicalPlan.execute_delta` runs one semi-naive delta pass
  (each rule restricted, per positive occurrence, to the delta rows) --
  the building block of both the in-fixpoint iteration and cross-step
  incremental evaluation;
* :meth:`PhysicalPlan.explain` renders a stable, testable description
  of the chosen join orders and check schedules;
* :meth:`PhysicalPlan.new_incremental` returns an
  :class:`IncrementalExecutor` that steps a *flat* program (no derived
  predicate in any body -- every Spocus output program) against
  monotonically growing facts, caching per-rule results between steps
  and re-deriving only from the delta.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping, Sequence

from dataclasses import dataclass, fields

from repro.config import env_flag
from repro.errors import EvaluationError, PlanError
from repro.datalog.ast import (
    Constant,
    Inequality,
    NegatedAtom,
    Variable,
)
from repro.datalog.plan.cost import CostModel
from repro.datalog.plan.kernels import Kernel, compile_kernel, kernels_enabled
from repro.datalog.plan.logical import AtomNode, LogicalPlan, RuleNode
from repro.datalog.plan.planner import (
    ORDERING_COST,
    ORDERING_GREEDY,
    ORDERINGS,
    cost_order,
    greedy_order,
    joingraph_enabled,
)
from repro.relalg.indexes import FactStore

Facts = Mapping[str, frozenset[tuple]]
Binding = dict[Variable, object]

_UNSET = object()


def coerce_store(facts: "Facts | FactStore") -> FactStore:
    if isinstance(facts, FactStore):
        return facts
    return FactStore(facts)


def _term_value(term, binding: Binding):
    if isinstance(term, Constant):
        return term.value
    if term in binding:
        return binding[term]
    return _UNSET


def _check_bound_literal(literal, binding: Binding, store: FactStore) -> bool:
    """Evaluate a fully-bound negated atom or inequality."""
    if isinstance(literal, NegatedAtom):
        row = literal.atom.ground_tuple(binding)
        return not store.contains(literal.atom.predicate, row)
    if isinstance(literal, Inequality):
        return _term_value(literal.left, binding) != _term_value(
            literal.right, binding
        )
    raise EvaluationError(f"not a checkable literal: {literal}")


def _candidate_rows(atom, binding: Binding, store: FactStore):
    """The rows of ``atom``'s relation compatible with ``binding``.

    Uses a hash-index lookup on the bound positions; falls back to a
    membership test when every position is bound and to a full scan when
    none is.
    """
    positions: list[int] = []
    key: list = []
    for i, term in enumerate(atom.terms):
        value = _term_value(term, binding)
        if value is not _UNSET:
            positions.append(i)
            key.append(value)
    if len(positions) == len(atom.terms):
        row = tuple(key)
        if store.contains(atom.predicate, row):
            return (row,)
        return ()
    if positions:
        return store.lookup(atom.predicate, tuple(positions), tuple(key))
    return store.rows(atom.predicate)


def _match_into(
    atom, row: tuple, binding: Binding, trail: list[Variable]
) -> bool:
    """Extend ``binding`` in place so ``atom`` matches ``row``.

    Newly bound variables are pushed on ``trail``; on mismatch the
    caller unwinds via :func:`_undo_to`.  Index lookups already filtered
    on the bound positions, so this only binds fresh variables and
    re-checks repeated ones.
    """
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if term.value != value:
                return False
        else:
            bound = binding.get(term, _UNSET)
            if bound is _UNSET:
                binding[term] = value
                trail.append(term)
            elif bound != value:
                return False
    return True


def _undo_to(binding: Binding, trail: list[Variable], mark: int) -> None:
    while len(trail) > mark:
        del binding[trail.pop()]


class Orderer:
    """The join-order strategy bound to one store.

    Callable as ``orderer(atoms, first, adjacency)``; cost ordering
    needs live statistics, so without a store it degrades to the static
    greedy order (the documented stats-absent fallback).  The instance
    also carries the ingredients of the order-memo key (see
    :meth:`CompiledRule.order_for`): the policy, whether join-graph
    expansion is on, and the store whose relation sizes sign the memo.
    """

    __slots__ = ("policy", "store", "model", "joingraph", "kernels",
                 "order_memo", "_sig_cache")

    def __init__(self, ordering: str, store: FactStore | None) -> None:
        self.store = store
        # The kill switches are sampled once per orderer -- i.e. once
        # per step/execute, not once per rule join -- so flipping the
        # env mid-step is not observed (and os.environ stays off the
        # per-join path).  REPRO_ORDER_MEMO=0 disables the per-rule
        # join-order memo (benchmark ablations reconstructing the
        # replan-per-join behaviour; not a supported production mode).
        self.joingraph = joingraph_enabled()
        self.kernels = kernels_enabled()
        self.order_memo = env_flag(
            "REPRO_ORDER_MEMO", default=True, error=PlanError
        )
        self._sig_cache: dict[tuple[str, ...], tuple] = {}
        if ordering == ORDERING_COST and store is not None:
            self.policy = ORDERING_COST
            self.model = CostModel(store)
        else:
            self.policy = ORDERING_GREEDY
            self.model = None

    def __call__(
        self,
        positive: Sequence[AtomNode],
        first: AtomNode | None = None,
        adjacency: Mapping[int, frozenset[int]] | None = None,
    ) -> list[AtomNode]:
        if self.model is not None:
            return cost_order(
                positive,
                self.store,
                self.model,
                first,
                adjacency if self.joingraph else None,
            )
        return greedy_order(positive, self.store, first)

    def signature(self, predicates: Sequence[str]) -> tuple:
        """The memo key under which this orderer's choices stay valid.

        Relation sizes enter by bit length, so a memoized order is
        reused until some body relation roughly doubles (or empties) --
        the cardinality drift at which re-planning can pay for itself.
        Signatures are cached per predicate set for this orderer's
        lifetime (one step or one execute), which is also the window in
        which its cost model would see the same statistics.
        """
        cached = self._sig_cache.get(predicates)
        if cached is not None:
            return cached
        store = self.store
        if store is None:
            sizes: tuple[int, ...] = ()
        else:
            sizes = tuple(
                store.count(pred).bit_length() for pred in predicates
            )
        signature = (self.policy, self.joingraph, sizes)
        self._sig_cache[predicates] = signature
        return signature


def make_orderer(ordering: str, store: FactStore | None) -> Orderer:
    """The :class:`Orderer` for one (ordering policy, store) pair."""
    return Orderer(ordering, store)


_ORDER_MEMO_LIMIT = 64
_KERNEL_MEMO_LIMIT = 64


class CompiledRule:
    """One rule's physical state: memoized orders, schedules, and kernels.

    Compiled rules live inside the process-wide shared
    :class:`PhysicalPlan`, so concurrent sessions executing the same
    plan may race on a schedule's or kernel's first use; those memos are
    therefore built under a lock and published whole, with the (hot)
    cached paths staying lock-free.  The order memo is racy-but-benign:
    every thread computes the same deterministic order for a given key,
    so a lost publish only costs a recomputation.
    """

    __slots__ = ("node", "_order_preds", "_orders", "_schedules",
                 "_kernels", "_schedule_lock")

    def __init__(self, node: RuleNode) -> None:
        self.node = node
        self._order_preds = tuple(sorted(node.positive_preds))
        self._orders: dict[tuple, list[AtomNode]] = {}
        self._schedules: dict[tuple[int, ...], list[list]] = {}
        self._kernels: dict[tuple[int, ...], Kernel] = {}
        self._schedule_lock = threading.Lock()

    def order_for(
        self,
        orderer: "Orderer",
        first: AtomNode | None = None,
        counters: "EvalCounters | None" = None,
    ) -> Sequence[AtomNode]:
        """The join order for this rule under ``orderer``, memoized.

        Keyed by the delta occurrence and the orderer's signature
        (policy + join-graph flag + bit-length relation sizes), so
        re-planning a rule is a dictionary hit until the body relations'
        cardinalities drift by ~2x.  ``replans_avoided`` counts the
        hits.
        """
        positive = self.node.positive
        if len(positive) <= 1:
            return positive
        if not orderer.order_memo:
            return orderer(positive, first, self.node.adjacency)
        key = (
            -1 if first is None else first.index,
            orderer.signature(self._order_preds),
        )
        cached = self._orders.get(key)
        if cached is not None:
            if counters is not None:
                counters.replans_avoided += 1
            return cached
        order = orderer(positive, first, self.node.adjacency)
        if len(self._orders) >= _ORDER_MEMO_LIMIT:
            self._orders.clear()
        self._orders[key] = order
        return order

    def kernel_for(
        self,
        order: Sequence[AtomNode],
        counters: "EvalCounters | None" = None,
    ) -> Kernel:
        """The compiled kernel for one join order of this rule, cached.

        ``kernels_compiled`` counts fresh compilations,
        ``kernel_hits`` reuses; one kernel exists per distinct order no
        matter how many sessions share the plan.
        """
        key = tuple(info.index for info in order)
        cached = self._kernels.get(key)
        if cached is not None:
            if counters is not None:
                counters.kernel_hits += 1
            return cached
        # Resolve the check schedule before taking the lock (schedule()
        # takes the same non-reentrant lock on a miss).
        checks_at = self.schedule(order)
        with self._schedule_lock:
            cached = self._kernels.get(key)
            if cached is None:
                if len(self._kernels) >= _KERNEL_MEMO_LIMIT:
                    self._kernels.clear()
                cached = compile_kernel(self.node, order, checks_at)
                self._kernels[key] = cached
                if counters is not None:
                    counters.kernels_compiled += 1
                return cached
        if counters is not None:
            counters.kernel_hits += 1
        return cached

    def schedule(self, order: Sequence[AtomNode]) -> list[list]:
        """``checks_at[i]``: checks to run right after ``order[i]`` matches."""
        key = tuple(info.index for info in order)
        cached = self._schedules.get(key)
        if cached is not None:
            return cached
        with self._schedule_lock:
            cached = self._schedules.get(key)
            if cached is not None:
                return cached
            checks_at: list[list] = [[] for _ in order]
            bound: set[Variable] = set()
            bound_by: list[set[Variable]] = []
            for info in order:
                bound |= info.variables
                bound_by.append(set(bound))
            for check in self.node.checks:
                variables = set(check.variables())
                for i, available in enumerate(bound_by):
                    if variables <= available:
                        checks_at[i].append(check)
                        break
                else:
                    raise EvaluationError(
                        f"literal {check} has variables not bound by any "
                        "positive atom"
                    )
            self._schedules[key] = checks_at
        return checks_at


def _join(
    crule: CompiledRule,
    store: FactStore,
    orderer,
    derived: set[tuple],
    first: AtomNode | None = None,
    first_rows=None,
    counters: "EvalCounters | None" = None,
) -> None:
    """Run the indexed join for one rule, adding head tuples to ``derived``.

    With ``first``/``first_rows`` given, that occurrence is evaluated
    first and enumerates only ``first_rows`` (the semi-naive delta
    restriction); the other atoms read the full store.  Dispatches to
    the rule's compiled kernel unless ``REPRO_COMPILED_KERNELS=0``
    selects the reference interpreter below.
    """
    node = crule.node
    for check in node.pre_checks:
        if not _check_bound_literal(check, {}, store):
            return
    order = crule.order_for(orderer, first, counters)
    if orderer.kernels:
        kernel = crule.kernel_for(order, counters)
        if first_rows is not None:
            kernel.run_delta(store, derived, first_rows)
        else:
            kernel.run_full(store, derived)
        return
    checks_at = crule.schedule(order)
    head = node.rule.head
    binding: Binding = {}
    trail: list[Variable] = []
    depth = len(order)

    def extend(index: int) -> None:
        if index == depth:
            derived.add(head.ground_tuple(binding))
            return
        atom = order[index].atom
        if index == 0 and first_rows is not None:
            candidates = first_rows
        else:
            candidates = _candidate_rows(atom, binding, store)
        slot_checks = checks_at[index]
        for row in candidates:
            if len(row) != atom.arity:
                continue
            mark = len(trail)
            if _match_into(atom, row, binding, trail):
                if all(
                    _check_bound_literal(check, binding, store)
                    for check in slot_checks
                ):
                    extend(index + 1)
            _undo_to(binding, trail, mark)

    extend(0)


def derive_rule(
    crule: CompiledRule,
    store: FactStore,
    orderer,
    delta: Facts | None = None,
    counters: "EvalCounters | None" = None,
) -> set[tuple]:
    """All head tuples one rule derives (optionally delta-restricted)."""
    node = crule.node
    derived: set[tuple] = set()
    if not node.positive:
        # Body is empty or has only checks over constants.  A delta pass
        # can never use such a rule (no positive occurrence to restrict).
        if delta is not None:
            return derived
        if all(_check_bound_literal(c, {}, store) for c in node.pre_checks):
            derived.add(node.rule.head.ground_tuple({}))
        return derived
    if delta is None:
        _join(crule, store, orderer, derived, counters=counters)
        return derived
    for info in node.positive:
        delta_rows = delta.get(info.atom.predicate)
        if not delta_rows:
            continue
        _join(
            crule,
            store,
            orderer,
            derived,
            first=info,
            first_rows=delta_rows,
            counters=counters,
        )
    return derived


@dataclass
class EvalCounters:
    """Plan/evaluation counters of one session (or one executor).

    ``full_rule_evals`` counts complete joins of a rule body;
    ``delta_rule_evals`` counts delta-restricted joins;
    ``delta_rules_skipped`` counts incremental rules skipped outright
    because their delta was empty; ``static_cache_hits`` counts
    database-only rules served from cache.  ``plans_compiled`` /
    ``plan_cache_hits`` record whether this session's physical plan was
    freshly compiled or reused.  The hot-path counters:
    ``kernels_compiled`` / ``kernel_hits`` record compiled rule kernels
    built vs reused (see :mod:`repro.datalog.plan.kernels`), and
    ``replans_avoided`` counts join orders served from the per-rule
    memo instead of re-running the cost model.
    """

    plans_compiled: int = 0
    plan_cache_hits: int = 0
    full_rule_evals: int = 0
    delta_rule_evals: int = 0
    delta_rules_skipped: int = 0
    static_cache_hits: int = 0
    kernels_compiled: int = 0
    kernel_hits: int = 0
    replans_avoided: int = 0

    def copy(self) -> "EvalCounters":
        # Field-by-field construction: this runs twice per submit() (the
        # before/after delta) and dataclasses.replace() is measurably
        # slower than a direct call.
        return EvalCounters(
            self.plans_compiled,
            self.plan_cache_hits,
            self.full_rule_evals,
            self.delta_rule_evals,
            self.delta_rules_skipped,
            self.static_cache_hits,
            self.kernels_compiled,
            self.kernel_hits,
            self.replans_avoided,
        )

    def __sub__(self, other: "EvalCounters") -> "EvalCounters":
        return EvalCounters(
            self.plans_compiled - other.plans_compiled,
            self.plan_cache_hits - other.plan_cache_hits,
            self.full_rule_evals - other.full_rule_evals,
            self.delta_rule_evals - other.delta_rule_evals,
            self.delta_rules_skipped - other.delta_rules_skipped,
            self.static_cache_hits - other.static_cache_hits,
            self.kernels_compiled - other.kernels_compiled,
            self.kernel_hits - other.kernel_hits,
            self.replans_avoided - other.replans_avoided,
        )

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


# Incremental rule categories: how one rule behaves across steps when
# ``volatile`` predicates change arbitrarily and ``monotone`` ones grow.
CATEGORY_RECOMPUTE = "recompute"  # touches volatile facts or negates monotone
CATEGORY_DELTA = "delta"  # monotone positive body: cache + delta join
CATEGORY_STATIC = "static"  # database-only body: cache forever


class IncrementalExecutor:
    """Cross-step incremental evaluation of one flat program.

    The contract: between successive :meth:`step` calls, the rows of
    every ``monotone`` predicate only grow and every non-``volatile``,
    non-``monotone`` predicate (the database) never changes -- exactly
    the Spocus situation, with per-step inputs volatile and cumulative
    state monotone.  Each rule is classified once:

    * ``recompute`` -- body mentions a volatile predicate (positively or
      negated) or negates a monotone one: its derivations can appear
      *and disappear*, so the rule re-joins every step (cheap: the
      ordering starts at the tiny per-step input relations);
    * ``delta`` -- positive atoms over monotone/database predicates
      only, negation only on the database: derivations are monotone, so
      the cached result is extended by a delta-restricted join over the
      step's new monotone rows (or skipped when nothing changed);
    * ``static`` -- database-only body: joined once, cached for the
      session's lifetime.

    An executor is per-session mutable state and is NOT thread-safe:
    the concurrent batch path keeps it safe by stepping each session on
    exactly one worker at a time (the shared, read-only
    :class:`PhysicalPlan` is what crosses threads).
    """

    __slots__ = ("plan", "volatile", "monotone", "categories", "_caches",
                 "_previous", "counters")

    def __init__(
        self,
        plan: "PhysicalPlan",
        volatile: Iterable[str],
        monotone: Iterable[str],
    ) -> None:
        program = plan.logical.program
        heads = program.head_predicates()
        if program.body_predicates() & heads:
            raise PlanError(
                "incremental execution needs a flat program (no derived "
                "predicate in any rule body)"
            )
        self.plan = plan
        self.volatile = frozenset(volatile)
        self.monotone = frozenset(monotone)
        overlap = self.volatile & self.monotone
        if overlap:
            raise PlanError(
                f"predicates cannot be volatile and monotone: {sorted(overlap)}"
            )
        self.categories: list[str] = []
        for crule in plan.compiled:
            node = crule.node
            positive = node.positive_predicates()
            negated = node.negated_predicates()
            if (positive | negated) & self.volatile:
                category = CATEGORY_RECOMPUTE
            elif negated & self.monotone:
                category = CATEGORY_RECOMPUTE
            elif positive & self.monotone:
                category = CATEGORY_DELTA
            else:
                category = CATEGORY_STATIC
            self.categories.append(category)
        self._caches: list[frozenset[tuple] | set[tuple] | None] = [
            None for _ in plan.compiled
        ]
        self._previous: dict[str, frozenset[tuple]] = {}
        self.counters = EvalCounters()

    def _delta_of(
        self, monotone_rows: Mapping[str, frozenset[tuple]]
    ) -> dict[str, frozenset[tuple]]:
        """New rows per monotone predicate since the previous step."""
        delta: dict[str, frozenset[tuple]] = {}
        for name, rows in monotone_rows.items():
            previous = self._previous.get(name)
            if previous is None:
                fresh = frozenset(rows)
            elif len(rows) == len(previous):
                continue  # monotone, so equal sizes mean equal sets
            else:
                fresh = frozenset(rows) - previous
            if fresh:
                delta[name] = fresh
        return delta

    def step(
        self,
        store: "Facts | FactStore",
        monotone_rows: Mapping[str, frozenset[tuple]],
    ) -> dict[str, frozenset[tuple]]:
        """Derive all head facts for the current step.

        ``store`` is the step's full fact store (volatile + monotone +
        database); ``monotone_rows`` the current rows of each monotone
        predicate, from which the executor computes the step's delta
        itself.  Returns every head predicate mapped to its derived
        rows.
        """
        store = coerce_store(store)
        orderer = self.plan.orderer(store)
        delta = self._delta_of(monotone_rows)
        counters = self.counters
        derived: dict[str, set[tuple]] = {
            predicate: set() for predicate in self.plan.logical.idb
        }
        for i, crule in enumerate(self.plan.compiled):
            category = self.categories[i]
            if category == CATEGORY_RECOMPUTE:
                rows = derive_rule(crule, store, orderer, counters=counters)
                counters.full_rule_evals += 1
            elif category == CATEGORY_STATIC:
                cache = self._caches[i]
                if cache is None:
                    cache = frozenset(
                        derive_rule(crule, store, orderer, counters=counters)
                    )
                    self._caches[i] = cache
                    counters.full_rule_evals += 1
                else:
                    counters.static_cache_hits += 1
                rows = cache
            else:  # CATEGORY_DELTA
                cache = self._caches[i]
                if cache is None:
                    cache = derive_rule(crule, store, orderer, counters=counters)
                    counters.full_rule_evals += 1
                else:
                    relevant = {
                        name: delta[name]
                        for name in crule.node.positive_preds
                        if name in delta
                    }
                    if relevant:
                        cache |= derive_rule(
                            crule, store, orderer, delta=relevant,
                            counters=counters,
                        )
                        counters.delta_rule_evals += 1
                    else:
                        counters.delta_rules_skipped += 1
                self._caches[i] = cache
                rows = cache
            derived[crule.node.rule.head.predicate].update(rows)
        self._previous = {
            name: frozenset(rows) for name, rows in monotone_rows.items()
        }
        return {name: frozenset(rows) for name, rows in derived.items()}


class PhysicalPlan:
    """An executable plan: logical structure + ordering policy."""

    __slots__ = ("logical", "ordering", "compiled")

    def __init__(
        self, logical: LogicalPlan, ordering: str = ORDERING_COST
    ) -> None:
        if ordering not in ORDERINGS:
            raise PlanError(
                f"unknown ordering {ordering!r}; expected one of {ORDERINGS}"
            )
        self.logical = logical
        self.ordering = ordering
        self.compiled = [CompiledRule(node) for node in logical.rules]

    # -- ordering ----------------------------------------------------------------

    def orderer(self, store: FactStore | None):
        """An ``(atoms, first) -> order`` callable for one store."""
        return make_orderer(self.ordering, store)

    def _compiled_by_stratum(self) -> list[list[CompiledRule]]:
        by_node = {id(crule.node): crule for crule in self.compiled}
        return [
            [by_node[id(node)] for node in stratum]
            for stratum in self.logical.strata_rules()
        ]

    # -- execution ---------------------------------------------------------------

    def execute(
        self,
        facts: "Facts | FactStore",
        max_iterations: int = 100_000,
        counters: "EvalCounters | None" = None,
    ) -> dict[str, frozenset[tuple]]:
        """Stratified fixpoint evaluation; returns all facts (EDB + IDB).

        ``facts`` may be a plain mapping or a pre-indexed
        :class:`~repro.relalg.indexes.FactStore`; a store is layered
        over, never mutated, so its indexes (e.g. over a large shared
        catalog) are reused across executions.  ``counters`` (optional)
        collects the kernel/replan accounting of this execution.
        """
        if isinstance(facts, FactStore):
            store = FactStore(base=facts)
        else:
            store = FactStore(facts)
        for predicate in self.logical.idb:
            store.ensure(predicate)
        orderer = self.orderer(store)

        for stratum_rules in self._compiled_by_stratum():
            # First full pass.
            delta: dict[str, frozenset[tuple]] = {}
            for crule in stratum_rules:
                head = crule.node.rule.head.predicate
                fresh = store.add(
                    head,
                    derive_rule(crule, store, orderer, counters=counters),
                )
                if fresh:
                    delta[head] = delta.get(head, frozenset()) | fresh
            # Semi-naive iteration to fixpoint.
            iterations = 0
            while delta:
                iterations += 1
                if iterations > max_iterations:
                    raise EvaluationError("fixpoint iteration budget exceeded")
                next_delta: dict[str, frozenset[tuple]] = {}
                for crule in stratum_rules:
                    node = crule.node
                    if not (node.body_preds & delta.keys()):
                        continue
                    head = node.rule.head.predicate
                    fresh = store.add(
                        head,
                        derive_rule(
                            crule, store, orderer, delta=delta,
                            counters=counters,
                        ),
                    )
                    if fresh:
                        next_delta[head] = (
                            next_delta.get(head, frozenset()) | fresh
                        )
                delta = next_delta
        return store.as_dict()

    def execute_delta(
        self,
        facts: "Facts | FactStore",
        delta: Facts,
        counters: "EvalCounters | None" = None,
    ) -> dict[str, frozenset[tuple]]:
        """One semi-naive delta pass over every rule.

        For each rule, runs one join variant per positive occurrence
        whose predicate has delta rows, with that occurrence restricted
        to the delta; ``facts`` must already contain the delta rows.
        Returns the derived head tuples per head predicate (no
        fixpoint: for flat/nonrecursive programs a single pass is
        complete; recursive strata iterate this inside
        :meth:`execute`).
        """
        store = coerce_store(facts)
        orderer = self.orderer(store)
        derived: dict[str, frozenset[tuple]] = {}
        for crule in self.compiled:
            head = crule.node.rule.head.predicate
            rows = derive_rule(
                crule, store, orderer, delta=delta, counters=counters
            )
            if rows or head not in derived:
                derived[head] = derived.get(head, frozenset()) | rows
        return derived

    def new_incremental(
        self, volatile: Iterable[str], monotone: Iterable[str]
    ) -> IncrementalExecutor:
        """A per-session incremental executor over this (shared) plan."""
        return IncrementalExecutor(self, volatile, monotone)

    # -- explain -----------------------------------------------------------------

    def explain(self, store: "Facts | FactStore | None" = None) -> str:
        """A stable, testable description of the plan.

        With a store, join orders are the ones :meth:`execute` would
        choose against it right now, annotated with relation sizes and
        (under cost ordering) the cost model's row estimates.  Without
        one, the static fallback order is shown.
        """
        if store is not None and not isinstance(store, FactStore):
            store = FactStore(store)
        model = (
            CostModel(store)
            if store is not None and self.ordering == ORDERING_COST
            else None
        )
        orderer = self.orderer(store)
        shape = "nonrecursive" if self.logical.nonrecursive else "recursive"
        strata = self.logical.strata_rules()
        lines = [
            f"plan: ordering={self.ordering}, {len(self.compiled)} rules, "
            f"{len(strata)} strata, {shape}"
            + ("" if store is not None else " (no statistics: static order)")
        ]
        by_node = {id(crule.node): crule for crule in self.compiled}
        for number, stratum in enumerate(strata, 1):
            lines.append(f"stratum {number}:")
            for node in stratum:
                crule = by_node[id(node)]
                lines.append(f"  {node.rule}")
                if not node.positive:
                    lines.append("    join: (no positive atoms)")
                else:
                    order = orderer(node.positive, None, node.adjacency)
                    parts = []
                    bound: set[Variable] = set()
                    for info in order:
                        if store is None:
                            parts.append(str(info.atom))
                        else:
                            rows = store.count(info.atom.predicate)
                            note = f"rows={rows}"
                            if model is not None:
                                estimate = model.estimate(info, bound)
                                note += f", est={estimate:g}"
                            parts.append(f"{info.atom} [{note}]")
                        bound |= info.variables
                    lines.append("    join: " + " -> ".join(parts))
                    for slot, checks in enumerate(crule.schedule(order)):
                        for check in checks:
                            lines.append(
                                f"    check after {order[slot].atom}: {check}"
                            )
                for check in node.pre_checks:
                    lines.append(f"    pre-check: {check}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PhysicalPlan(ordering={self.ordering!r}, "
            f"rules={len(self.compiled)})"
        )
