"""Safety (range restriction) analysis.

The paper's output rules require that *each variable in the rule occurs
positively in the body* (Section 3.1, definition of Spocus transducers).
This is the classical range-restriction condition: it guarantees that
negated atoms and inequalities are evaluated only on bound values and
that rule results are finite.
"""

from __future__ import annotations

from repro.errors import SafetyError
from repro.datalog.ast import Program, Rule


def check_rule_safety(rule: Rule) -> None:
    """Raise :class:`SafetyError` unless ``rule`` is range-restricted.

    Every variable appearing in the head, in a negated atom, or in an
    inequality must also appear in some positive relational body atom.
    """
    positive = rule.positive_body_variables()
    unbound_head = rule.head_variables() - positive
    if unbound_head:
        names = ", ".join(sorted(v.name for v in unbound_head))
        raise SafetyError(
            f"rule {rule}: head variables not bound positively: {names}"
        )
    for atom in rule.negated_atoms():
        unbound = set(atom.variables()) - positive
        if unbound:
            names = ", ".join(sorted(v.name for v in unbound))
            raise SafetyError(
                f"rule {rule}: variables of negated atom {atom} "
                f"not bound positively: {names}"
            )
    for ineq in rule.inequalities():
        unbound = set(ineq.variables()) - positive
        if unbound:
            names = ", ".join(sorted(v.name for v in unbound))
            raise SafetyError(
                f"rule {rule}: variables of inequality {ineq} "
                f"not bound positively: {names}"
            )


def is_rule_safe(rule: Rule) -> bool:
    """Boolean form of :func:`check_rule_safety`."""
    try:
        check_rule_safety(rule)
    except SafetyError:
        return False
    return True


def check_program_safety(program: Program) -> None:
    """Check every rule of ``program``; raise on the first unsafe rule."""
    for rule in program:
        check_rule_safety(rule)
