"""Setup shim for environments without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables the
legacy `pip install -e .` code path (the sandbox this repo is developed
in has no network access and no `wheel` distribution, so PEP 660
editable installs are unavailable).
"""

from setuptools import setup

setup()
