"""Shared fixtures for the experiment benchmarks."""

import pytest

from repro.commerce.models import (
    build_buggy_store,
    build_friendly,
    build_short,
    default_database,
)


@pytest.fixture(scope="session")
def short():
    return build_short()


@pytest.fixture(scope="session")
def friendly():
    return build_friendly()


@pytest.fixture(scope="session")
def buggy():
    return build_buggy_store()


@pytest.fixture(scope="session")
def catalog_db():
    return default_database()
