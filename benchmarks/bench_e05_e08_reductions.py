"""E5 / E8: the undecidability reductions, validated on decidable cases.

E5 (Proposition 3.1): the extended transducer's log (∅, {violG}) is
valid iff F ⊭ G -- cross-checked against Armstrong-closure implication
for FD-only dependency sets.

E8 (Theorem 3.4): the pair (T_{F,G}, simulator T); well-formed runs are
clean, violations surface exactly, separating logs are invalid for T
(checked with the Theorem 3.1 decision procedure), and clean logs are
mimicable when F ⊨ G.
"""

from repro.core.acceptors import is_error_free
from repro.relalg.chase import implies_fd
from repro.relalg.dependencies import (
    FunctionalDependency as FD,
    InclusionDependency as IND,
)
from repro.verify import is_valid_log
from repro.verify.undecidable import (
    containment_reduction,
    mimic_inputs_for_log,
    projection_reduction,
    proposition_31_log_valid,
    wellformed_sequence,
)

FD_CASES = [
    ([FD("R", (0,), 1), FD("R", (1,), 2)], FD("R", (0,), 2), 3),
    ([FD("R", (0,), 1)], FD("R", (1,), 0), 2),
    ([FD("R", (0,), 1)], FD("R", (0, 2), 1), 3),
]


def test_e05_projection_reduction_agrees_with_armstrong(benchmark):
    def run_all():
        verdicts = []
        for f_deps, g_dep, arity in FD_CASES:
            transducer = projection_reduction(arity, f_deps, [g_dep])
            valid, _ = proposition_31_log_valid(
                transducer, arity, domain_size=3, max_tuples=2
            )
            verdicts.append(valid)
        return verdicts

    verdicts = benchmark(run_all)
    expected = [not implies_fd(f, g) for f, g, _ in FD_CASES]
    assert verdicts == expected
    print(f"\nlog-validity verdicts {verdicts} == not-implied {expected}")


def test_e05_mixed_dependencies(benchmark):
    f_deps = [FD("R", (0,), 1)]
    g_deps = [IND("R", (0,), "R", (1,))]
    transducer = projection_reduction(2, f_deps, g_deps)
    valid, witness = benchmark(
        proposition_31_log_valid, transducer, 2, 3, 3
    )
    assert valid  # F does not imply G
    print(f"\nF ⊭ G witness instance: {witness}")


def test_e08_wellformed_run_clean(benchmark):
    reduction = containment_reduction(2, [FD("R", (0,), 1)], [IND("R", (0,), "R", (1,))])
    rows = [("a", "b"), ("c", "d"), ("e", "f")]
    steps = wellformed_sequence(reduction, rows)
    run = benchmark(reduction.t_fg.run, {}, steps)
    assert is_error_free(run)
    assert all(output["ok"] for output in run.outputs)


def test_e08_separating_log_rejected_by_simulator(benchmark):
    reduction = containment_reduction(
        2, [FD("R", (0,), 1)], [IND("R", (0,), "R", (1,))]
    )
    rows = [("a", "b"), ("c", "a")]  # satisfies F, violates G
    run = reduction.t_fg.run({}, wellformed_sequence(reduction, rows))
    assert run.outputs[-1]["violG"] and not run.outputs[-1]["violF"]
    result = benchmark(is_valid_log, reduction.simulator, {}, run.logs)
    assert not result.valid
    print("\nF ⊭ G: T_FG produced a log the simulator cannot produce "
          "(containment fails, as Theorem 3.4 predicts)")


def test_e08_implied_case_mimicable(benchmark):
    reduction = containment_reduction(
        2,
        [FD("R", (0,), 1), IND("R", (0,), "R", (1,))],
        [FD("R", (0,), 1)],
    )
    rows = [("a", "a"), ("b", "b")]

    def mimic():
        run = reduction.t_fg.run({}, wellformed_sequence(reduction, rows))
        inputs = mimic_inputs_for_log(run.logs)
        sim = reduction.simulator.run({}, inputs)
        return list(sim.logs) == list(run.logs)

    assert benchmark(mimic)
    print("\nF ⊨ G: every well-formed T_FG log is reproduced by the "
          "simulator (containment holds)")
