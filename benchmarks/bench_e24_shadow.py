"""E24: what a shadow deploy costs, and how fast it catches a bug.

PR 9 adds :mod:`repro.shadow` -- every request mirrored to a candidate
service and diffed per step under a :class:`ComparisonPolicy`.  E24
prices that mirror and measures its detection power:

* ``shadow_matrix``: every standard scenario runs twice -- plain, and
  shadowed by an *identical* candidate (the no-divergence control).
  ``overhead_ratio`` is shadowed/unshadowed steps-per-second; an
  identical candidate must report zero divergences in every cell.
* ``digest_control``: one logged run proving the control is exact --
  incumbent and candidate log digests byte-identical.
* ``divergence_detection``: the commerce workload shadowed by the
  ``adversarial`` scenario's buggy store, plus the minimal SHORT-vs-
  buggy pair, reporting how many steps and how many wall-seconds pass
  before the first :class:`DivergenceReport` lands (and that its trace
  replays).
* ``check_every``: the slow-profile ``fraud-detection`` scenario (one
  BSR decision per audited step) with the auditor amortized to every
  4th step; ``check_every_amortization_speedup`` is the measured win.

Run as a script to emit the ``BENCH_e24.json`` perf record::

    python benchmarks/bench_e24_shadow.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path
from time import perf_counter

from repro.commerce.models import (
    build_buggy_store,
    build_short,
    default_database,
)
from repro.pods.api import StepRequest
from repro.pods.service import PodService
from repro.scenarios import list_scenarios, run_scenario
from repro.shadow import ShadowService

SEED = 24
SESSIONS = 100
MEAN_STEPS = 6
CHECK_EVERY = 4

_REPO_ROOT = Path(__file__).resolve().parent.parent


def matrix_scenarios() -> list[str]:
    """Every standard-profile scenario (slow ones priced separately)."""
    return [s.name for s in list_scenarios() if s.bench_profile == "standard"]


def measure_overhead_cell(name: str, sessions: int, steps: int) -> dict:
    """One scenario plain vs shadowed-by-itself (logs off, audited)."""
    plain = run_scenario(
        name, sessions=sessions, steps=steps, seed=SEED, keep_logs=False
    )
    shadowed = run_scenario(
        name,
        sessions=sessions,
        steps=steps,
        seed=SEED,
        keep_logs=False,
        shadow_candidate=name,
    )
    return {
        "scenario": name,
        "sessions": plain.sessions,
        "total_steps": plain.total_steps,
        "unshadowed_steps_per_second": round(plain.steps_per_second, 3),
        "shadowed_steps_per_second": round(shadowed.steps_per_second, 3),
        "overhead_ratio": round(
            shadowed.steps_per_second / plain.steps_per_second, 4
        ),
        "divergences": shadowed.divergences,
    }


def measure_digest_control(sessions: int, steps: int) -> dict:
    """Identical candidate, logs on: both digests must be equal."""
    report = run_scenario(
        "commerce",
        sessions=sessions,
        steps=steps,
        seed=SEED,
        shadow_candidate="commerce",
    )
    return {
        "scenario": "commerce",
        "divergences": report.divergences,
        "log_digest": report.log_digest,
        "shadow_log_digest": report.shadow_log_digest,
        "digests_equal": bool(
            report.log_digest is not None
            and report.shadow_log_digest == report.log_digest
        ),
    }


def measure_divergence_detection(sessions: int, steps: int) -> dict:
    """Shadowing commerce traffic with the adversarial buggy store."""
    started = perf_counter()
    report = run_scenario(
        "commerce",
        sessions=sessions,
        steps=steps,
        seed=SEED,
        shadow_candidate="adversarial",
    )
    wall = perf_counter() - started
    # The minimal pair: SHORT vs the buggy store, one session.  The
    # divergent step is the second submit; the latency of interest is
    # submit-to-report on that single call.
    db = default_database()
    shadow = ShadowService(
        PodService(build_short(), db), PodService(build_buggy_store(), db)
    )
    handle = shadow.create_session("probe")
    shadow.submit(StepRequest(handle, {"order": {("time",)}}))
    divergent_started = perf_counter()
    shadow.submit(StepRequest(handle, {"order": {("newsweek",)}}))
    detection_seconds = perf_counter() - divergent_started
    probe = shadow.first_divergence()
    return {
        "scenario": "commerce",
        "candidate": "adversarial",
        "divergences": report.divergences,
        "first_divergence_step": report.first_divergence_step,
        "run_wall_seconds": round(wall, 6),
        "probe": {
            "kind": probe.kind,
            "detected_at_step": probe.step,
            "first_divergent_step": probe.first_divergent_step,
            "divergent_submit_seconds": round(detection_seconds, 6),
            "trace_replays_on_incumbent": probe.trace.reproduces(
                build_short()
            ),
            "trace_fails_on_candidate": not probe.trace.reproduces(
                build_buggy_store()
            ),
        },
    }


def measure_check_every(sessions: int, steps: int) -> dict:
    """Amortizing the BSR-heavy fraud-detection auditor to every k-th step."""
    eager = run_scenario(
        "fraud-detection",
        sessions=sessions,
        steps=steps,
        seed=SEED,
        keep_logs=False,
        check_every=1,
    )
    lazy = run_scenario(
        "fraud-detection",
        sessions=sessions,
        steps=steps,
        seed=SEED,
        keep_logs=False,
        check_every=CHECK_EVERY,
    )
    return {
        "scenario": "fraud-detection",
        "check_every": CHECK_EVERY,
        "eager_steps_per_second": round(eager.steps_per_second, 3),
        "amortized_steps_per_second": round(lazy.steps_per_second, 3),
        "eager_audit_checks": eager.audit_checks,
        "amortized_audit_checks": lazy.audit_checks,
        "speedup": round(lazy.steps_per_second / eager.steps_per_second, 3),
        "eager_violations": eager.audit_violations,
        "amortized_violations": lazy.audit_violations,
    }


def run_experiment(
    sessions: int = SESSIONS,
    steps: int = MEAN_STEPS,
    fraud_sessions: int = 12,
    control_sessions: int = 12,
) -> dict:
    names = matrix_scenarios()
    matrix = [
        measure_overhead_cell(name, sessions, steps) for name in names
    ]
    control = measure_digest_control(control_sessions, min(steps, 5))
    detection = measure_divergence_detection(
        control_sessions, min(steps, 5)
    )
    amortization = measure_check_every(fraud_sessions, min(steps, 5))
    headline = next(c for c in matrix if c["scenario"] == "commerce")
    return {
        "experiment": "e24_shadow",
        "workload": {
            "sessions": sessions,
            "mean_steps_per_session": steps,
            "arrival": "open-loop Poisson, exponential think times",
            "seed": SEED,
        },
        "scenarios": names,
        "shadow_matrix": matrix,
        "steps_per_second": headline["shadowed_steps_per_second"],
        "headline": {"scenario": "commerce", "shadowed": True},
        "shadow_overhead_ratio": headline["overhead_ratio"],
        "identical_candidate_divergences": sum(
            c["divergences"] for c in matrix
        ),
        "digest_control": control,
        "divergence_detection": detection,
        "check_every": amortization,
        "check_every_amortization_speedup": amortization["speedup"],
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "note": (
            "shadow_matrix runs each scenario's seeded open-loop traffic "
            "plain and mirrored to an identical candidate (strict policy, "
            "fail-open, logs off): overhead_ratio prices the mirror, and "
            "zero divergences everywhere is the no-false-positive "
            "control; divergence_detection shadows the same traffic with "
            "the adversarial buggy store and reports steps/seconds to "
            "the first replayable DivergenceReport; check_every amortizes "
            "fraud-detection's per-step BSR audit to every 4th step"
        ),
    }


# -- pytest entry points ------------------------------------------------------


def test_e24_overhead_cell_roundtrip():
    """One small cell: complete, zero-divergence, computable ratio."""
    cell = measure_overhead_cell("feed-delivery", 8, 4)
    assert cell["total_steps"] > 0
    assert cell["divergences"] == 0
    assert cell["overhead_ratio"] > 0
    assert cell["shadowed_steps_per_second"] > 0


def test_e24_digest_control_is_exact():
    control = measure_digest_control(6, 4)
    assert control["divergences"] == 0
    assert control["digests_equal"] is True


def test_e24_detection_catches_the_buggy_store():
    detection = measure_divergence_detection(6, 4)
    assert detection["divergences"] >= 1
    assert detection["first_divergence_step"] is not None
    probe = detection["probe"]
    assert probe["detected_at_step"] == 2
    assert probe["first_divergent_step"] == 2
    assert probe["trace_replays_on_incumbent"] is True
    assert probe["trace_fails_on_candidate"] is True


def test_e24_check_every_amortizes_the_audit():
    amortization = measure_check_every(6, 4)
    assert amortization["amortized_audit_checks"] \
        < amortization["eager_audit_checks"]
    assert amortization["speedup"] > 0
    # Amortization must not lose violations entirely (fraud-detection's
    # spec holds on this traffic, so both stay clean).
    assert amortization["eager_violations"] == \
        amortization["amortized_violations"]


def test_e24_smoke_benchmark(benchmark):
    """One tiny shadowed run as a pytest-benchmark measurement."""

    def once():
        return measure_overhead_cell("commerce", 8, 4)

    cell = benchmark.pedantic(once, iterations=1, rounds=2)
    assert cell["divergences"] == 0


# -- script entry point -------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small matrix for CI (20 sessions, 4 mean steps)",
    )
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument(
        "--out",
        type=Path,
        default=_REPO_ROOT / "BENCH_e24.json",
    )
    args = parser.parse_args()
    sessions = (
        args.sessions
        if args.sessions is not None
        else (20 if args.smoke else SESSIONS)
    )
    if sessions < 1:
        parser.error("--sessions must be >= 1")
    if args.smoke:
        record = run_experiment(
            sessions=sessions, steps=4, fraud_sessions=6, control_sessions=6
        )
    else:
        record = run_experiment(sessions=sessions)
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
