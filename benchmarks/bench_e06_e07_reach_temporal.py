"""E6 / E7: goal reachability (Thm 3.2) and temporal properties (Thm 3.3).

E6 reproduces the paper's claim: "for short one can verify that it is
possible to achieve the goal deliver(x) as long as ∃y price(x, y) holds
in the database."  E7 verifies the paper's temporal formula "no product
is delivered before it has been paid" on short and friendly, and shows
the buggy control model is caught with a counterexample.
"""

import pytest

from repro.commerce import CatalogGenerator
from repro.datalog.ast import Variable as V
from repro.logic.fol import Forall, Implies, Rel, conjoin
from repro.verify import Goal, holds_on_all_runs, is_goal_reachable

x, y = V("x"), V("y")
NO_DELIVERY_BEFORE_PAY = Forall(
    (x, y),
    Implies(
        conjoin([Rel("deliver", (x,)), Rel("price", (x, y))]),
        Rel("past-pay", (x, y)),
    ),
)


def test_e06_deliver_reachable_iff_priced(benchmark, short, catalog_db):
    def decide_both():
        priced = is_goal_reachable(
            short, catalog_db, Goal.atoms(deliver=("time",))
        ).reachable
        unpriced = is_goal_reachable(
            short, catalog_db, Goal.atoms(deliver=("vogue",))
        ).reachable
        return priced, unpriced

    priced, unpriced = benchmark(decide_both)
    assert priced and not unpriced
    print(f"\ndeliver(time) reachable: {priced}; deliver(vogue): {unpriced}")


def test_e06_progress_after_prefix(benchmark, short, catalog_db):
    prefix = [{"order": {("time",)}}]
    result = benchmark(
        is_goal_reachable,
        short,
        catalog_db,
        Goal.atoms(deliver=("time",)),
        prefix,
    )
    assert result.reachable


@pytest.mark.parametrize("products", [2, 4, 8, 16])
def test_e06_scaling_catalog(benchmark, short, products):
    catalog = CatalogGenerator(seed=5).generate(products)
    product = catalog.products[0]
    result = benchmark(
        is_goal_reachable,
        short,
        catalog.as_database(),
        Goal.atoms(deliver=(product,)),
    )
    assert result.reachable
    print(f"\nproducts={products}: domain={result.stats.domain_size} "
          f"clauses={result.stats.cnf_clauses}")


def test_e07_short_satisfies(benchmark, short, catalog_db):
    verdict = benchmark(
        holds_on_all_runs, short, NO_DELIVERY_BEFORE_PAY, catalog_db
    )
    assert verdict.holds


def test_e07_friendly_satisfies(benchmark, friendly, catalog_db):
    verdict = benchmark(
        holds_on_all_runs, friendly, NO_DELIVERY_BEFORE_PAY, catalog_db
    )
    assert verdict.holds


def test_e07_buggy_caught_with_counterexample(benchmark, buggy, catalog_db):
    verdict = benchmark(
        holds_on_all_runs, buggy, NO_DELIVERY_BEFORE_PAY, catalog_db
    )
    assert not verdict.holds
    assert verdict.counterexample_inputs is not None
    print("\ncounterexample run (2 steps):",
          [str(i) for i in verdict.counterexample_inputs])


def test_e07_schema_level_needs_functional_price(benchmark, short):
    # Over all databases the formula fails (price need not be a
    # function); this is a genuine subtlety the decision procedure
    # surfaces, documented in EXPERIMENTS.md.
    verdict = benchmark(holds_on_all_runs, short, NO_DELIVERY_BEFORE_PAY, None)
    assert not verdict.holds
