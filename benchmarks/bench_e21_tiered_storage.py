"""E21: tiered session storage -- bounded residency vs all-resident.

Drives the store-traffic shape (many independent customer sessions over
one shared catalog) through a :class:`~repro.pods.service.PodService`
whose hot-session cache is bounded by ``max_resident_sessions=``: idle
sessions are evicted to the session store (JSONL directory or the
single-file SQLite backend) and transparently rehydrated on their next
request.  The record answers two questions:

* what does bounding residency cost in steps/s?  The headline run
  creates 100k sessions while keeping at most 1k resident and must stay
  within 0.8x of the all-resident baseline -- eviction is free by
  construction (every step is written through before its result
  returns, so evicting is just dropping the in-memory object) and only
  the rare rehydration pays a store read;
* what does it buy in memory?  Every configuration runs in its own
  subprocess so ``ru_maxrss`` is a clean per-configuration peak, and
  the record stores it next to the throughput number.

Run as a script to emit the ``BENCH_e21.json`` perf record::

    python benchmarks/bench_e21_tiered_storage.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.commerce.catalog import Catalog, CatalogGenerator
from repro.commerce.models import build_friendly
from repro.pods import JsonlDirectoryStore, PodService, SqliteStore, StepRequest

SEED = 11
PRODUCTS = 200
STEPS_PER_SESSION = 2
FULL_SESSIONS = 100_000
RESIDENT_LIMIT = 1_000
REVISITS = 1_000
SWEEP_SESSIONS = (2_000, 10_000)
SWEEP_RESIDENTS = (0, 1_000, 100)
BACKENDS = ("jsonl", "sqlite")

_REPO_ROOT = Path(__file__).resolve().parent.parent


def session_script(catalog: Catalog, index: int, steps: int) -> list[dict]:
    """A deterministic shopping script: order product k, pay it, repeat.

    Cheap to generate for 100k sessions (no per-session RNG) while still
    exercising the order/pay/deliver join pipeline every step.
    """
    script: list[dict] = []
    for k in range(steps):
        product = catalog.products[(index + k // 2) % len(catalog.products)]
        if k % 2 == 0:
            script.append({"order": {(product,)}})
        else:
            script.append({"pay": {(product, catalog.priced(product))}})
    return script


def make_store(backend: str, scratch: Path, durability: str = "batched"):
    if backend == "jsonl":
        return JsonlDirectoryStore(scratch / "pods")
    if backend == "sqlite":
        return SqliteStore(scratch / "pods.sqlite", durability=durability)
    raise ValueError(f"unknown backend {backend!r}")


def measure_tier(
    backend: str,
    sessions: int,
    products: int,
    steps: int,
    max_resident: int,
    revisits: int,
    scratch: Path,
) -> dict:
    """Create+step ``sessions`` pods sequentially, then revisit a spread.

    ``max_resident=0`` means explicitly unlimited (the all-resident
    baseline, immune to ``REPRO_MAX_RESIDENT`` in the environment).
    The sequential shape is the tiered store's sweet spot -- each
    session is hot while it is being stepped -- and the revisit phase
    then forces real rehydrations of long-evicted sessions.
    """
    transducer = build_friendly()
    catalog = CatalogGenerator(seed=1).generate(products)
    service = PodService(
        transducer,
        catalog.as_database(),
        store=make_store(backend, scratch),
        max_resident_sessions=max_resident,
        keep_logs=False,
    )
    revisits = min(revisits, sessions)
    stride = max(sessions // revisits, 1) if revisits else 1
    started = time.perf_counter()
    for n in range(sessions):
        handle = service.create_session(f"customer-{n:06d}")
        for inputs in session_script(catalog, n, steps):
            service.submit(StepRequest(handle, inputs))
    for r in range(revisits):
        n = (r * stride) % sessions
        product = catalog.products[(n + steps) % len(catalog.products)]
        service.submit(
            StepRequest(f"customer-{n:06d}", {"order": {(product,)}})
        )
    elapsed = time.perf_counter() - started
    service.flush()
    counters = service.metrics.snapshot()
    stats = service.store.stats()
    total_steps = sessions * steps + revisits
    return {
        "backend": backend,
        "sessions": sessions,
        "steps_per_session": steps,
        "revisits": revisits,
        "max_resident": max_resident,
        "total_steps": total_steps,
        "elapsed_seconds": round(elapsed, 6),
        "steps_per_second": round(total_steps / elapsed, 3),
        "resident_sessions": len(service.resident_session_ids()),
        "evictions": counters["sessions_evicted"],
        "rehydrations": counters["sessions_rehydrated"],
        "store_sessions": stats.sessions,
        "store_events": stats.events,
        "store_bytes_on_disk": stats.bytes_on_disk,
        "ru_maxrss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
    }


def measure_in_subprocess(config: dict) -> dict:
    """Run one configuration in a fresh interpreter.

    ``ru_maxrss`` is a process-lifetime high-water mark, so sharing one
    interpreter would let the largest configuration mask every other's
    peak; a subprocess per configuration keeps the RSS numbers honest.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(_REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    env.pop("REPRO_MAX_RESIDENT", None)
    completed = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--worker", json.dumps(config)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(completed.stdout.splitlines()[-1])


def run_worker(config: dict) -> None:
    """``--worker`` entry point: measure one configuration, print JSON."""
    with tempfile.TemporaryDirectory() as scratch:
        record = measure_tier(
            backend=config["backend"],
            sessions=config["sessions"],
            products=config.get("products", PRODUCTS),
            steps=config.get("steps", STEPS_PER_SESSION),
            max_resident=config["max_resident"],
            revisits=config.get("revisits", REVISITS),
            scratch=Path(scratch),
        )
    print(json.dumps(record, sort_keys=True))


def run_experiment(
    sessions: int = FULL_SESSIONS,
    resident_limit: int = RESIDENT_LIMIT,
    sweep_sessions: tuple[int, ...] = SWEEP_SESSIONS,
    sweep_residents: tuple[int, ...] = SWEEP_RESIDENTS,
    compare_sessions: int = 2_000,
) -> dict:
    """The headline bounded-vs-all-resident pair, the residency sweep,
    and the jsonl-vs-sqlite backend comparison (one subprocess each)."""
    revisits = min(REVISITS, sessions)
    headline = {
        name: measure_in_subprocess(
            {
                "backend": "sqlite",
                "sessions": sessions,
                "max_resident": limit,
                "revisits": revisits,
            }
        )
        for name, limit in (
            ("all_resident", 0),
            ("bounded", resident_limit),
        )
    }
    ratio = (
        headline["bounded"]["steps_per_second"]
        / headline["all_resident"]["steps_per_second"]
    )
    sweep = [
        measure_in_subprocess(
            {
                "backend": "sqlite",
                "sessions": total,
                "max_resident": min(resident, total),
                "revisits": min(REVISITS, total),
            }
        )
        for total in sweep_sessions
        for resident in sweep_residents
    ]
    backends = {
        backend: measure_in_subprocess(
            {
                "backend": backend,
                "sessions": compare_sessions,
                "max_resident": min(resident_limit, compare_sessions // 2),
                "revisits": min(REVISITS, compare_sessions),
            }
        )
        for backend in BACKENDS
    }
    gil_probe = getattr(sys, "_is_gil_enabled", None)
    return {
        "experiment": "e21_tiered_storage",
        "workload": {
            "transducer": "friendly",
            "catalog_products": PRODUCTS,
            "sessions": sessions,
            "steps_per_session": STEPS_PER_SESSION,
            "revisits": revisits,
            "store": "sqlite (durability=batched)",
            "seed": SEED,
        },
        "headline": headline,
        "steps_per_second": headline["bounded"]["steps_per_second"],
        "bounded_vs_all_resident_ratio": round(ratio, 3),
        "rss_saved_mb": round(
            headline["all_resident"]["ru_maxrss_mb"]
            - headline["bounded"]["ru_maxrss_mb"],
            1,
        ),
        "resident_sweep": sweep,
        "backends": backends,
        "python": platform.python_version(),
        "gil_enabled": bool(gil_probe()) if gil_probe else True,
        "cpu_count": os.cpu_count(),
        "note": (
            "every configuration runs in its own subprocess so ru_maxrss "
            "is a per-configuration peak; logs and snapshots are "
            "byte-identical at every residency bound (write-through per "
            "step), so the ratio measures wall-clock only"
        ),
    }


# -- pytest entry points ------------------------------------------------------


def test_e21_eviction_preserves_stored_bytes(tmp_path):
    """Acceptance: a max_resident=2 run leaves byte-identical JSONL
    session files to an all-resident run of the same scripts."""
    transducer = build_friendly()
    catalog = CatalogGenerator(seed=1).generate(50)

    def run(limit: int, root: Path) -> PodService:
        service = PodService(
            transducer,
            catalog.as_database(),
            store=JsonlDirectoryStore(root),
            max_resident_sessions=limit,
        )
        for n in range(8):
            handle = service.create_session(f"customer-{n:06d}")
            for inputs in session_script(catalog, n, 4):
                service.submit(StepRequest(handle, inputs))
        return service

    bounded = run(2, tmp_path / "bounded")
    unlimited = run(0, tmp_path / "unlimited")
    assert bounded.metrics.sessions_evicted > 0
    assert unlimited.metrics.sessions_evicted == 0
    for n in range(8):
        session_id = f"customer-{n:06d}"
        assert (
            bounded.store.path_of(session_id).read_bytes()
            == unlimited.store.path_of(session_id).read_bytes()
        )


def test_e21_worker_subprocess_roundtrip():
    """The subprocess worker path must produce a complete measurement."""
    record = measure_in_subprocess(
        {"backend": "sqlite", "sessions": 12, "max_resident": 3,
         "revisits": 6, "products": 40}
    )
    assert record["total_steps"] == 12 * STEPS_PER_SESSION + 6
    assert record["steps_per_second"] > 0
    assert record["resident_sessions"] == 3
    assert record["evictions"] > 0
    assert record["rehydrations"] > 0
    assert record["store_sessions"] == 12
    assert record["ru_maxrss_mb"] > 0
    assert record["store_bytes_on_disk"] > 0


def test_e21_bounded_residency_throughput_smoke(benchmark, tmp_path):
    """Small bounded-residency throughput measurement (CI smoke size)."""
    runs = iter(range(100))

    def once():
        scratch = tmp_path / f"run-{next(runs)}"
        scratch.mkdir()
        return measure_tier(
            "sqlite", sessions=60, products=50, steps=2,
            max_resident=10, revisits=20, scratch=scratch,
        )

    record = benchmark.pedantic(once, iterations=1, rounds=3)
    assert record["steps_per_second"] > 0
    assert record["evictions"] > 0
    assert record["rehydrations"] > 0


def test_e21_bounded_residency_keeps_throughput():
    """The bound must not collapse throughput on the sequential shape.

    Eviction is a dict pop (state already written through); only the
    ``revisits`` rehydrations pay a store read.  The guard rejects an
    accidentally quadratic or rehydrate-per-step cache, not noise.
    """
    with tempfile.TemporaryDirectory() as a, tempfile.TemporaryDirectory() as b:
        base = measure_tier(
            "sqlite", 300, 100, 2, max_resident=0, revisits=100,
            scratch=Path(a),
        )
        bounded = measure_tier(
            "sqlite", 300, 100, 2, max_resident=30, revisits=100,
            scratch=Path(b),
        )
    ratio = bounded["steps_per_second"] / base["steps_per_second"]
    print(
        f"\nE21: all-resident {base['steps_per_second']:.0f} steps/s, "
        f"bounded(30) {bounded['steps_per_second']:.0f} steps/s, "
        f"ratio {ratio:.2f}"
    )
    assert bounded["rehydrations"] >= 100
    assert ratio >= 0.5


# -- script entry point -------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload for CI (2k sessions, 50 resident)",
    )
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--resident", type=int, default=None)
    parser.add_argument(
        "--worker",
        type=str,
        default=None,
        help="internal: measure one JSON-encoded configuration and exit",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=_REPO_ROOT / "BENCH_e21.json",
    )
    args = parser.parse_args()
    if args.worker is not None:
        run_worker(json.loads(args.worker))
        return
    sessions = (
        args.sessions
        if args.sessions is not None
        else (2_000 if args.smoke else FULL_SESSIONS)
    )
    resident = (
        args.resident
        if args.resident is not None
        else (50 if args.smoke else RESIDENT_LIMIT)
    )
    if sessions < 1:
        parser.error("--sessions must be >= 1")
    if not 0 < resident <= sessions:
        parser.error("--resident must be in [1, --sessions]")
    if args.smoke:
        record = run_experiment(
            sessions=sessions,
            resident_limit=resident,
            sweep_sessions=(400,),
            sweep_residents=(0, 50),
            compare_sessions=300,
        )
    else:
        record = run_experiment(sessions=sessions, resident_limit=resident)
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
