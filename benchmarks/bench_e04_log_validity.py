"""E4: log validation (Theorem 3.1).

Valid logs of real sessions must validate (with witness replay);
forged logs (unpaid delivery injected) must be rejected.  The scaling
series varies log length and catalog size; the paper's claim is
decidability with NEXPTIME worst-case cost, so the interesting shape is
the growth of grounding size with the instance, reported via stats.
"""

import pytest

from repro.commerce import CatalogGenerator, random_log
from repro.commerce.workloads import tamper_log
from repro.verify import is_valid_log


def test_e04_valid_session_log(benchmark, short):
    catalog = CatalogGenerator(seed=7).generate(3)
    _run, logs = random_log(short, catalog, 4, seed=1)
    result = benchmark(is_valid_log, short, catalog.as_database(), logs)
    assert result.valid


def test_e04_forged_log_rejected(benchmark, short):
    catalog = CatalogGenerator(seed=7).generate(3)
    _run, logs = random_log(short, catalog, 4, seed=1)
    forged = tamper_log(logs, catalog, seed=2)
    result = benchmark(is_valid_log, short, catalog.as_database(), forged)
    assert not result.valid


@pytest.mark.parametrize("length", [1, 2, 4, 6])
def test_e04_scaling_log_length(benchmark, short, length):
    catalog = CatalogGenerator(seed=7).generate(2)
    _run, logs = random_log(short, catalog, length, seed=3)
    result = benchmark(is_valid_log, short, catalog.as_database(), logs)
    assert result.valid
    print(
        f"\nlength={length}: domain={result.stats.domain_size} "
        f"clauses={result.stats.cnf_clauses} vars={result.stats.cnf_variables}"
    )


@pytest.mark.parametrize("products", [2, 4, 8])
def test_e04_scaling_catalog(benchmark, short, products):
    catalog = CatalogGenerator(seed=7).generate(products)
    _run, logs = random_log(short, catalog, 3, seed=4)
    result = benchmark(is_valid_log, short, catalog.as_database(), logs)
    assert result.valid
    print(
        f"\nproducts={products}: domain={result.stats.domain_size} "
        f"clauses={result.stats.cnf_clauses}"
    )


def test_e04_unknown_database(benchmark, short):
    entries = [
        {"sendbill": {("widget", 7)}, "pay": set(), "deliver": set()},
        {"sendbill": set(), "pay": {("widget", 7)}, "deliver": {("widget",)}},
    ]
    result = benchmark(is_valid_log, short, None, entries)
    assert result.valid
    assert result.witness_database is not None
