"""E16: multi-session runtime throughput and indexed-evaluation speedup.

Drives store-wide traffic -- many independent customer sessions over one
shared catalog -- through the :mod:`repro.pods` service, and compares
the indexed evaluator against the original scan-based nested-loop join
(:func:`repro.datalog.evaluate.naive_evaluation`) on the same workload.

Run as a script to emit the ``BENCH_e16.json`` perf record::

    python benchmarks/bench_e16_runtime_throughput.py [--smoke] [--out PATH]

The naive baseline is measured on a subsample of the sessions (its
per-step cost is rate-constant across sessions, and full-size naive runs
take minutes); all reported numbers are steady-state rates.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import platform
from pathlib import Path

from repro.commerce.catalog import CatalogGenerator
from repro.commerce.models import build_friendly
from repro.commerce.workloads import simulate_concurrent_customers
from repro.datalog.evaluate import naive_evaluation
from repro.pods import PodService

SEED = 7
PRODUCTS = 1000
STEPS_PER_SESSION = 8
FULL_SESSIONS = 1000
NAIVE_SESSIONS = 60


def _measure(sessions: int, products: int, steps: int, naive: bool = False):
    transducer = build_friendly()
    catalog = CatalogGenerator(seed=1).generate(products)
    context = naive_evaluation() if naive else contextlib.nullcontext()
    with context:
        report = simulate_concurrent_customers(
            transducer,
            catalog,
            sessions=sessions,
            steps_per_session=steps,
            seed=SEED,
        )
    assert report.total_steps == sessions * steps
    return report


def run_experiment(
    sessions: int = FULL_SESSIONS,
    products: int = PRODUCTS,
    steps: int = STEPS_PER_SESSION,
    naive_sessions: int = NAIVE_SESSIONS,
) -> dict:
    """Measure both evaluator paths; return the JSON perf record."""
    indexed = _measure(sessions, products, steps)
    naive = _measure(naive_sessions, products, steps, naive=True)
    speedup = (
        indexed.metrics["steps_per_second"]
        / naive.metrics["steps_per_second"]
    )
    return {
        "experiment": "e16_runtime_throughput",
        "workload": {
            "transducer": "friendly",
            "catalog_products": products,
            "sessions": sessions,
            "steps_per_session": steps,
            "naive_baseline_sessions": naive_sessions,
            "seed": SEED,
        },
        "indexed": indexed.metrics,
        "naive": naive.metrics,
        "sessions_per_second": indexed.metrics["sessions_per_second"],
        "steps_per_second": indexed.metrics["steps_per_second"],
        "index_vs_naive_speedup": round(speedup, 2),
        "python": platform.python_version(),
    }


# -- pytest entry points ------------------------------------------------------


def test_e16_session_isolation():
    """Interleaved sessions produce the same logs as standalone runs."""
    transducer = build_friendly()
    catalog = CatalogGenerator(seed=1).generate(50)
    service = PodService(transducer, catalog.as_database())
    from repro.commerce.workloads import SessionGenerator

    scripts = {
        service.create_session(): SessionGenerator(
            catalog, seed=s, supports_pending_bills=True
        ).session(6)
        for s in range(5)
    }
    service.drive(scripts, round_robin=True)
    for handle, script in scripts.items():
        run = transducer.run(catalog.as_database(), script)
        assert (
            list(service.session(handle).log().entries) == list(run.logs)
        )


def test_e16_throughput_smoke(benchmark):
    """Small steady-state throughput measurement (CI smoke size)."""
    report = benchmark.pedantic(
        _measure,
        args=(40, 300, 6),
        iterations=1,
        rounds=3,
    )
    assert report.metrics["steps_per_second"] > 0


def test_e16_indexed_speedup_at_scale():
    """Acceptance: >= 5x over the seed nested-loop path, 1k sessions."""
    record = run_experiment()
    print(
        f"\nE16: indexed {record['steps_per_second']:.0f} steps/s, "
        f"naive {record['naive']['steps_per_second']:.0f} steps/s, "
        f"speedup {record['index_vs_naive_speedup']:.1f}x"
    )
    assert record["index_vs_naive_speedup"] >= 5.0


# -- script entry point -------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload for CI (100 sessions, 300 products)",
    )
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--products", type=int, default=None)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_e16.json",
    )
    args = parser.parse_args()
    sessions = (
        args.sessions
        if args.sessions is not None
        else (100 if args.smoke else FULL_SESSIONS)
    )
    if sessions < 1:
        parser.error("--sessions must be >= 1")
    products = (
        args.products
        if args.products is not None
        else (300 if args.smoke else PRODUCTS)
    )
    if products < 1:
        parser.error("--products must be >= 1")
    naive_sessions = min(NAIVE_SESSIONS, sessions)
    record = run_experiment(
        sessions=sessions, products=products, naive_sessions=naive_sessions
    )
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
