"""E22: process-level pod server -- HTTP front-end vs in-process runtime.

Drives the store-traffic shape (many independent customer sessions over
one shared catalog) through a :class:`~repro.server.frontend.PodServer`
-- one worker *process* per shard behind a threaded HTTP front-end --
via :class:`~repro.server.client.PodClient`, and compares against the
in-process :class:`~repro.pods.service.PodService` running the exact
same request stream.  The record answers two questions:

* what does the process boundary cost?  Every request now pays JSON
  encode/decode twice plus a localhost HTTP round-trip plus a
  multiprocessing queue hop, so the ``http_vs_in_process_ratio`` is the
  honest price of crash isolation and per-shard address spaces;
* how does the grid of ``workers x worker_concurrency`` scale?  On a
  multi-core box extra worker processes buy real parallelism (separate
  interpreters, no shared GIL); on a single-core box the grid should
  stay flat, and the record stores ``cpu_count`` next to the numbers so
  a reader can tell which regime produced them.

Run as a script to emit the ``BENCH_e22.json`` perf record::

    python benchmarks/bench_e22_pod_server.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.commerce.catalog import Catalog, CatalogGenerator
from repro.commerce.models import build_friendly
from repro.pods import PodService, StepRequest
from repro.server import PodClient, PodServer

SEED = 11
PRODUCTS = 100
SESSIONS = 400
STEPS_PER_SESSION = 6
BATCH_SIZE = 64
QUEUE_DEPTH = 128
WORKERS_GRID = (1, 2, 4)
CONCURRENCY_GRID = (1, 4)

_REPO_ROOT = Path(__file__).resolve().parent.parent


def session_script(catalog: Catalog, index: int, steps: int) -> list[dict]:
    """Deterministic shopping script: order product k, pay it, repeat."""
    script: list[dict] = []
    for k in range(steps):
        product = catalog.products[(index + k // 2) % len(catalog.products)]
        if k % 2 == 0:
            script.append({"order": {(product,)}})
        else:
            script.append({"pay": {(product, catalog.priced(product))}})
    return script


def interleaved_requests(
    catalog: Catalog, sessions: int, steps: int
) -> list[StepRequest]:
    """The round-robin request stream both runtimes execute.

    Round-robin across sessions is the store-traffic shape: no session
    issues two consecutive requests, so per-shard batches stay mixed.
    """
    scripts = [session_script(catalog, n, steps) for n in range(sessions)]
    return [
        StepRequest(f"customer-{n:06d}", scripts[n][k])
        for k in range(steps)
        for n in range(sessions)
    ]


def chunked(items: list, size: int) -> list[list]:
    return [items[i : i + size] for i in range(0, len(items), size)]


def measure_server(
    workers: int,
    worker_concurrency: int,
    sessions: int,
    steps: int,
    catalog: Catalog,
    batch_size: int = BATCH_SIZE,
) -> dict:
    """One grid point: drive the stream through a live pod server.

    The stream travels as ``batch_size``-request batches so the
    measurement includes repeated HTTP round-trips (one giant batch
    would amortise the front-end away and measure only the workers).
    """
    requests = interleaved_requests(catalog, sessions, steps)
    batches = chunked(requests, batch_size)
    with PodServer(
        build_friendly,
        catalog.as_database(),
        workers=workers,
        worker_concurrency=worker_concurrency,
        queue_depth=QUEUE_DEPTH,
        keep_logs=False,
    ) as server:
        client = PodClient(server.url, build_friendly())
        for n in range(sessions):
            client.create_session(f"customer-{n:06d}")
        started = time.perf_counter()
        for batch in batches:
            client.submit_batch(batch)
        elapsed = time.perf_counter() - started
        payload = client.metrics_payload()
    total_steps = sessions * steps
    assert payload["pods"]["steps_executed"] == total_steps
    return {
        "workers": workers,
        "worker_concurrency": worker_concurrency,
        "sessions": sessions,
        "steps_per_session": steps,
        "total_steps": total_steps,
        "http_batches": len(batches),
        "batch_size": batch_size,
        "elapsed_seconds": round(elapsed, 6),
        "steps_per_second": round(total_steps / elapsed, 3),
        "worker_restarts": payload["server"]["restarts"],
    }


def measure_in_process(
    sessions: int,
    steps: int,
    catalog: Catalog,
    batch_size: int = BATCH_SIZE,
) -> dict:
    """The no-HTTP baseline: same stream, same batch shape, one engine."""
    requests = interleaved_requests(catalog, sessions, steps)
    batches = chunked(requests, batch_size)
    service = PodService(
        build_friendly(), catalog.as_database(), keep_logs=False
    )
    for n in range(sessions):
        service.create_session(f"customer-{n:06d}")
    started = time.perf_counter()
    for batch in batches:
        service.submit_batch(batch)
    elapsed = time.perf_counter() - started
    total_steps = sessions * steps
    assert service.metrics.steps_executed == total_steps
    return {
        "sessions": sessions,
        "steps_per_session": steps,
        "total_steps": total_steps,
        "batch_size": batch_size,
        "elapsed_seconds": round(elapsed, 6),
        "steps_per_second": round(total_steps / elapsed, 3),
    }


def run_experiment(
    sessions: int = SESSIONS,
    steps: int = STEPS_PER_SESSION,
    workers_grid: tuple[int, ...] = WORKERS_GRID,
    concurrency_grid: tuple[int, ...] = CONCURRENCY_GRID,
    batch_size: int = BATCH_SIZE,
) -> dict:
    """The in-process baseline plus the workers x concurrency grid."""
    catalog = CatalogGenerator(seed=SEED).generate(PRODUCTS)
    in_process = measure_in_process(sessions, steps, catalog, batch_size)
    grid = [
        measure_server(w, c, sessions, steps, catalog, batch_size)
        for w in workers_grid
        for c in concurrency_grid
    ]
    headline = max(grid, key=lambda point: point["steps_per_second"])
    ratio = headline["steps_per_second"] / in_process["steps_per_second"]
    gil_probe = getattr(sys, "_is_gil_enabled", None)
    return {
        "experiment": "e22_pod_server",
        "workload": {
            "transducer": "friendly",
            "catalog_products": PRODUCTS,
            "sessions": sessions,
            "steps_per_session": steps,
            "batch_size": batch_size,
            "order": "round-robin across sessions",
            "seed": SEED,
        },
        "in_process": in_process,
        "grid": grid,
        "headline": {
            "workers": headline["workers"],
            "worker_concurrency": headline["worker_concurrency"],
        },
        "steps_per_second": headline["steps_per_second"],
        "http_vs_in_process_ratio": round(ratio, 3),
        "python": platform.python_version(),
        "gil_enabled": bool(gil_probe()) if gil_probe else True,
        "cpu_count": os.cpu_count(),
        "note": (
            "each grid point starts a fresh server (spawn workers, "
            "temp store) and drives the identical round-robin stream "
            "in fixed-size batches; the ratio prices JSON + HTTP + "
            "queue hops against a direct in-process call, and on a "
            "single-core box the grid is expected to be flat"
        ),
    }


# -- pytest entry points ------------------------------------------------------


def test_e22_server_matches_in_process():
    """Acceptance: the server run is observationally identical to the
    in-process run -- same handles, step counts, states, and logs."""
    catalog = CatalogGenerator(seed=SEED).generate(40)
    sessions, steps = 8, 4
    requests = interleaved_requests(catalog, sessions, steps)
    serial = PodService(build_friendly(), catalog.as_database())
    for n in range(sessions):
        serial.create_session(f"customer-{n:06d}")
    serial_results = serial.submit_batch(requests)
    with PodServer(
        build_friendly, catalog.as_database(), workers=2
    ) as server:
        client = PodClient(server.url, build_friendly())
        for n in range(sessions):
            client.create_session(f"customer-{n:06d}")
        server_results = client.submit_batch(requests)
        assert [r.output for r in server_results] == [
            r.output for r in serial_results
        ]
        assert [r.step for r in server_results] == [
            r.step for r in serial_results
        ]
        for n in range(sessions):
            ours = client.session(f"customer-{n:06d}")
            theirs = serial.session(f"customer-{n:06d}")
            assert ours.steps == theirs.steps
            assert ours.state == theirs.state
            assert ours.log().entries == theirs.log().entries


def test_e22_measurement_roundtrip():
    """One tiny grid point must produce a complete measurement."""
    catalog = CatalogGenerator(seed=SEED).generate(30)
    point = measure_server(2, 2, sessions=10, steps=2, catalog=catalog,
                           batch_size=8)
    assert point["total_steps"] == 20
    assert point["steps_per_second"] > 0
    assert point["http_batches"] == 3
    assert point["worker_restarts"] == 0


def test_e22_server_throughput_smoke(benchmark):
    """Small server throughput measurement (CI smoke size)."""
    catalog = CatalogGenerator(seed=SEED).generate(30)

    def once():
        return measure_server(1, 1, sessions=12, steps=2, catalog=catalog,
                              batch_size=8)

    point = benchmark.pedantic(once, iterations=1, rounds=2)
    assert point["steps_per_second"] > 0


def test_e22_http_overhead_is_bounded():
    """The process boundary must not collapse throughput.

    HTTP + JSON + queue hops are real overhead, so the guard is loose:
    it rejects an accidentally serial-per-request or reconnect-per-step
    front-end, not the honest cost of the wire.
    """
    catalog = CatalogGenerator(seed=SEED).generate(50)
    base = measure_in_process(60, 4, catalog, batch_size=32)
    served = measure_server(2, 2, sessions=60, steps=4, catalog=catalog,
                            batch_size=32)
    ratio = served["steps_per_second"] / base["steps_per_second"]
    print(
        f"\nE22: in-process {base['steps_per_second']:.0f} steps/s, "
        f"server(2x2) {served['steps_per_second']:.0f} steps/s, "
        f"ratio {ratio:.3f}"
    )
    assert served["worker_restarts"] == 0
    assert ratio >= 0.02


# -- script entry point -------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload for CI (80 sessions, 2x2 grid)",
    )
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument(
        "--out",
        type=Path,
        default=_REPO_ROOT / "BENCH_e22.json",
    )
    args = parser.parse_args()
    sessions = (
        args.sessions
        if args.sessions is not None
        else (80 if args.smoke else SESSIONS)
    )
    if sessions < 1:
        parser.error("--sessions must be >= 1")
    if args.smoke:
        record = run_experiment(
            sessions=sessions,
            steps=4,
            workers_grid=(1, 2),
            concurrency_grid=(1, 2),
            batch_size=32,
        )
    else:
        record = run_experiment(sessions=sessions)
    args.out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(json.dumps(record, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
