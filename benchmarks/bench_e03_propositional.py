"""E3: the Section 3.1 propositional example and characterization.

Reproduces: Gen(abstar-transducer) = prefix-closure(ab*c); the
prefix closure of (ab)* is *not* generable; the converse construction
round-trips a generable language back through a transducer.
"""

from repro.automata import is_generable_language, prefix_closure
from repro.automata.propositional import (
    build_abc_example,
    gen_automaton,
    gen_words,
    transducer_for_automaton,
)
from repro.automata.regular import concat, literal, star


def _abstar_c():
    return prefix_closure(
        concat(literal("a"), star(literal("b")), literal("c")).to_dfa()
    )


def test_e03_gen_matches_prefix_closure(benchmark):
    abc = build_abc_example()
    generated = benchmark(gen_words, abc, 6)
    assert generated == _abstar_c().words_up_to(6)
    print()
    print("Gen(T) up to length 4:",
          sorted("".join(w) or "ε" for w in gen_words(abc, 4)))


def test_e03_characterization(benchmark):
    good = _abstar_c()
    bad = prefix_closure(star(concat(literal("a"), literal("b"))).to_dfa())

    def check():
        return is_generable_language(good), is_generable_language(bad)

    good_ok, bad_ok = benchmark(check)
    assert good_ok and not bad_ok
    print()
    print(f"prefix(ab*c) generable: {good_ok}; prefix((ab)*) generable: {bad_ok}")


def test_e03_converse_roundtrip(benchmark):
    language = _abstar_c()
    transducer = benchmark(transducer_for_automaton, language)
    assert gen_words(transducer, 5) == language.words_up_to(5)


def test_e03_gen_automaton_structure(benchmark):
    abc = build_abc_example()
    nfa = benchmark(gen_automaton, abc)
    from repro.automata import has_only_self_loop_cycles, is_prefix_closed

    dfa = nfa.to_dfa()
    assert is_prefix_closed(dfa)
    assert has_only_self_loop_cycles(dfa)
